file(REMOVE_RECURSE
  "CMakeFiles/table2_attack_runtime.dir/table2_attack_runtime.cpp.o"
  "CMakeFiles/table2_attack_runtime.dir/table2_attack_runtime.cpp.o.d"
  "table2_attack_runtime"
  "table2_attack_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_attack_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
