# Empty compiler generated dependencies file for table2_attack_runtime.
# This may be replaced when dependencies are built.
