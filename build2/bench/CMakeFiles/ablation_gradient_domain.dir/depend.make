# Empty dependencies file for ablation_gradient_domain.
# This may be replaced when dependencies are built.
