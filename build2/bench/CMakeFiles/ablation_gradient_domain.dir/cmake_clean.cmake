file(REMOVE_RECURSE
  "CMakeFiles/ablation_gradient_domain.dir/ablation_gradient_domain.cpp.o"
  "CMakeFiles/ablation_gradient_domain.dir/ablation_gradient_domain.cpp.o.d"
  "ablation_gradient_domain"
  "ablation_gradient_domain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gradient_domain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
