# Empty compiler generated dependencies file for fig5a_privacy_personalization.
# This may be replaced when dependencies are built.
