file(REMOVE_RECURSE
  "CMakeFiles/fig5a_privacy_personalization.dir/fig5a_privacy_personalization.cpp.o"
  "CMakeFiles/fig5a_privacy_personalization.dir/fig5a_privacy_personalization.cpp.o.d"
  "fig5a_privacy_personalization"
  "fig5a_privacy_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_privacy_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
