file(REMOVE_RECURSE
  "CMakeFiles/fig3c_predictability.dir/fig3c_predictability.cpp.o"
  "CMakeFiles/fig3c_predictability.dir/fig3c_predictability.cpp.o.d"
  "fig3c_predictability"
  "fig3c_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
