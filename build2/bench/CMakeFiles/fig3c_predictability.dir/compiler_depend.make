# Empty compiler generated dependencies file for fig3c_predictability.
# This may be replaced when dependencies are built.
