file(REMOVE_RECURSE
  "CMakeFiles/overhead_personalization.dir/overhead_personalization.cpp.o"
  "CMakeFiles/overhead_personalization.dir/overhead_personalization.cpp.o.d"
  "overhead_personalization"
  "overhead_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
