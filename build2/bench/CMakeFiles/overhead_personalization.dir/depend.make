# Empty dependencies file for overhead_personalization.
# This may be replaced when dependencies are built.
