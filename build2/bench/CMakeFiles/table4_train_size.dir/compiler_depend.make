# Empty compiler generated dependencies file for table4_train_size.
# This may be replaced when dependencies are built.
