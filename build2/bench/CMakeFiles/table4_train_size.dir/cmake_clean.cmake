file(REMOVE_RECURSE
  "CMakeFiles/table4_train_size.dir/table4_train_size.cpp.o"
  "CMakeFiles/table4_train_size.dir/table4_train_size.cpp.o.d"
  "table4_train_size"
  "table4_train_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_train_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
