file(REMOVE_RECURSE
  "CMakeFiles/ablation_loi_threshold.dir/ablation_loi_threshold.cpp.o"
  "CMakeFiles/ablation_loi_threshold.dir/ablation_loi_threshold.cpp.o.d"
  "ablation_loi_threshold"
  "ablation_loi_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loi_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
