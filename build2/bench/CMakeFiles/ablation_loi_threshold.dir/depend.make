# Empty dependencies file for ablation_loi_threshold.
# This may be replaced when dependencies are built.
