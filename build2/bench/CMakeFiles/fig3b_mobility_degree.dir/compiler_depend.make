# Empty compiler generated dependencies file for fig3b_mobility_degree.
# This may be replaced when dependencies are built.
