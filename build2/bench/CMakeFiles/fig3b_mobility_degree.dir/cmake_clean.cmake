file(REMOVE_RECURSE
  "CMakeFiles/fig3b_mobility_degree.dir/fig3b_mobility_degree.cpp.o"
  "CMakeFiles/fig3b_mobility_degree.dir/fig3b_mobility_degree.cpp.o.d"
  "fig3b_mobility_degree"
  "fig3b_mobility_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_mobility_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
