file(REMOVE_RECURSE
  "CMakeFiles/fig2b_adversaries.dir/fig2b_adversaries.cpp.o"
  "CMakeFiles/fig2b_adversaries.dir/fig2b_adversaries.cpp.o.d"
  "fig2b_adversaries"
  "fig2b_adversaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_adversaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
