# Empty compiler generated dependencies file for fig2b_adversaries.
# This may be replaced when dependencies are built.
