# Empty dependencies file for fig5c_privacy_spatial.
# This may be replaced when dependencies are built.
