file(REMOVE_RECURSE
  "CMakeFiles/fig5c_privacy_spatial.dir/fig5c_privacy_spatial.cpp.o"
  "CMakeFiles/fig5c_privacy_spatial.dir/fig5c_privacy_spatial.cpp.o.d"
  "fig5c_privacy_spatial"
  "fig5c_privacy_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_privacy_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
