file(REMOVE_RECURSE
  "CMakeFiles/fig2c_priors.dir/fig2c_priors.cpp.o"
  "CMakeFiles/fig2c_priors.dir/fig2c_priors.cpp.o.d"
  "fig2c_priors"
  "fig2c_priors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_priors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
