# Empty dependencies file for fig2c_priors.
# This may be replaced when dependencies are built.
