# Empty dependencies file for fig5b_temperature.
# This may be replaced when dependencies are built.
