file(REMOVE_RECURSE
  "CMakeFiles/fig5b_temperature.dir/fig5b_temperature.cpp.o"
  "CMakeFiles/fig5b_temperature.dir/fig5b_temperature.cpp.o.d"
  "fig5b_temperature"
  "fig5b_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
