file(REMOVE_RECURSE
  "libpelican_bench_harness.a"
)
