# Empty compiler generated dependencies file for pelican_bench_harness.
# This may be replaced when dependencies are built.
