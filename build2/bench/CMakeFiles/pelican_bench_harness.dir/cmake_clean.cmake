file(REMOVE_RECURSE
  "CMakeFiles/pelican_bench_harness.dir/harness/pipeline.cpp.o"
  "CMakeFiles/pelican_bench_harness.dir/harness/pipeline.cpp.o.d"
  "libpelican_bench_harness.a"
  "libpelican_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
