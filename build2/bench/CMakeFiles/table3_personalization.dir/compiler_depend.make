# Empty compiler generated dependencies file for table3_personalization.
# This may be replaced when dependencies are built.
