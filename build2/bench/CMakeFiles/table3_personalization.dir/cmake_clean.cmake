file(REMOVE_RECURSE
  "CMakeFiles/table3_personalization.dir/table3_personalization.cpp.o"
  "CMakeFiles/table3_personalization.dir/table3_personalization.cpp.o.d"
  "table3_personalization"
  "table3_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
