file(REMOVE_RECURSE
  "CMakeFiles/fig3a_spatial.dir/fig3a_spatial.cpp.o"
  "CMakeFiles/fig3a_spatial.dir/fig3a_spatial.cpp.o.d"
  "fig3a_spatial"
  "fig3a_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
