# Empty compiler generated dependencies file for fig3a_spatial.
# This may be replaced when dependencies are built.
