# Empty dependencies file for nn_micro.
# This may be replaced when dependencies are built.
