file(REMOVE_RECURSE
  "CMakeFiles/nn_micro.dir/nn_micro.cpp.o"
  "CMakeFiles/nn_micro.dir/nn_micro.cpp.o.d"
  "nn_micro"
  "nn_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
