file(REMOVE_RECURSE
  "CMakeFiles/ablation_markov_baseline.dir/ablation_markov_baseline.cpp.o"
  "CMakeFiles/ablation_markov_baseline.dir/ablation_markov_baseline.cpp.o.d"
  "ablation_markov_baseline"
  "ablation_markov_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_markov_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
