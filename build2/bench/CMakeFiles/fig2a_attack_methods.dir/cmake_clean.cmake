file(REMOVE_RECURSE
  "CMakeFiles/fig2a_attack_methods.dir/fig2a_attack_methods.cpp.o"
  "CMakeFiles/fig2a_attack_methods.dir/fig2a_attack_methods.cpp.o.d"
  "fig2a_attack_methods"
  "fig2a_attack_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_attack_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
