# Empty dependencies file for fig2a_attack_methods.
# This may be replaced when dependencies are built.
