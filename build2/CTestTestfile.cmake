# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/common")
subdirs("src/nn")
subdirs("src/mobility")
subdirs("src/models")
subdirs("src/store")
subdirs("src/attack")
subdirs("src/core")
subdirs("src/serve")
subdirs("bench")
subdirs("examples")
subdirs("_deps/googletest-build")
subdirs("tests")
