file(REMOVE_RECURSE
  "libpelican_models.a"
)
