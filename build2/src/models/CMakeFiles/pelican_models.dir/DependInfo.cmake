
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/general.cpp" "src/models/CMakeFiles/pelican_models.dir/general.cpp.o" "gcc" "src/models/CMakeFiles/pelican_models.dir/general.cpp.o.d"
  "/root/repo/src/models/markov.cpp" "src/models/CMakeFiles/pelican_models.dir/markov.cpp.o" "gcc" "src/models/CMakeFiles/pelican_models.dir/markov.cpp.o.d"
  "/root/repo/src/models/personalize.cpp" "src/models/CMakeFiles/pelican_models.dir/personalize.cpp.o" "gcc" "src/models/CMakeFiles/pelican_models.dir/personalize.cpp.o.d"
  "/root/repo/src/models/window_dataset.cpp" "src/models/CMakeFiles/pelican_models.dir/window_dataset.cpp.o" "gcc" "src/models/CMakeFiles/pelican_models.dir/window_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/nn/CMakeFiles/pelican_nn.dir/DependInfo.cmake"
  "/root/repo/build2/src/mobility/CMakeFiles/pelican_mobility.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/pelican_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
