# Empty compiler generated dependencies file for pelican_models.
# This may be replaced when dependencies are built.
