file(REMOVE_RECURSE
  "CMakeFiles/pelican_models.dir/general.cpp.o"
  "CMakeFiles/pelican_models.dir/general.cpp.o.d"
  "CMakeFiles/pelican_models.dir/markov.cpp.o"
  "CMakeFiles/pelican_models.dir/markov.cpp.o.d"
  "CMakeFiles/pelican_models.dir/personalize.cpp.o"
  "CMakeFiles/pelican_models.dir/personalize.cpp.o.d"
  "CMakeFiles/pelican_models.dir/window_dataset.cpp.o"
  "CMakeFiles/pelican_models.dir/window_dataset.cpp.o.d"
  "libpelican_models.a"
  "libpelican_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
