
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/campus.cpp" "src/mobility/CMakeFiles/pelican_mobility.dir/campus.cpp.o" "gcc" "src/mobility/CMakeFiles/pelican_mobility.dir/campus.cpp.o.d"
  "/root/repo/src/mobility/dataset.cpp" "src/mobility/CMakeFiles/pelican_mobility.dir/dataset.cpp.o" "gcc" "src/mobility/CMakeFiles/pelican_mobility.dir/dataset.cpp.o.d"
  "/root/repo/src/mobility/events.cpp" "src/mobility/CMakeFiles/pelican_mobility.dir/events.cpp.o" "gcc" "src/mobility/CMakeFiles/pelican_mobility.dir/events.cpp.o.d"
  "/root/repo/src/mobility/persona.cpp" "src/mobility/CMakeFiles/pelican_mobility.dir/persona.cpp.o" "gcc" "src/mobility/CMakeFiles/pelican_mobility.dir/persona.cpp.o.d"
  "/root/repo/src/mobility/simulator.cpp" "src/mobility/CMakeFiles/pelican_mobility.dir/simulator.cpp.o" "gcc" "src/mobility/CMakeFiles/pelican_mobility.dir/simulator.cpp.o.d"
  "/root/repo/src/mobility/trace_io.cpp" "src/mobility/CMakeFiles/pelican_mobility.dir/trace_io.cpp.o" "gcc" "src/mobility/CMakeFiles/pelican_mobility.dir/trace_io.cpp.o.d"
  "/root/repo/src/mobility/trace_stats.cpp" "src/mobility/CMakeFiles/pelican_mobility.dir/trace_stats.cpp.o" "gcc" "src/mobility/CMakeFiles/pelican_mobility.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/pelican_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
