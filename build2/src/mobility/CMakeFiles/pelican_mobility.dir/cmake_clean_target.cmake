file(REMOVE_RECURSE
  "libpelican_mobility.a"
)
