# Empty dependencies file for pelican_mobility.
# This may be replaced when dependencies are built.
