file(REMOVE_RECURSE
  "CMakeFiles/pelican_mobility.dir/campus.cpp.o"
  "CMakeFiles/pelican_mobility.dir/campus.cpp.o.d"
  "CMakeFiles/pelican_mobility.dir/dataset.cpp.o"
  "CMakeFiles/pelican_mobility.dir/dataset.cpp.o.d"
  "CMakeFiles/pelican_mobility.dir/events.cpp.o"
  "CMakeFiles/pelican_mobility.dir/events.cpp.o.d"
  "CMakeFiles/pelican_mobility.dir/persona.cpp.o"
  "CMakeFiles/pelican_mobility.dir/persona.cpp.o.d"
  "CMakeFiles/pelican_mobility.dir/simulator.cpp.o"
  "CMakeFiles/pelican_mobility.dir/simulator.cpp.o.d"
  "CMakeFiles/pelican_mobility.dir/trace_io.cpp.o"
  "CMakeFiles/pelican_mobility.dir/trace_io.cpp.o.d"
  "CMakeFiles/pelican_mobility.dir/trace_stats.cpp.o"
  "CMakeFiles/pelican_mobility.dir/trace_stats.cpp.o.d"
  "libpelican_mobility.a"
  "libpelican_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
