
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/cv.cpp" "src/nn/CMakeFiles/pelican_nn.dir/cv.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/cv.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/nn/CMakeFiles/pelican_nn.dir/dropout.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/dropout.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/pelican_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/pelican_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/pelican_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/matrix.cpp" "src/nn/CMakeFiles/pelican_nn.dir/matrix.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/matrix.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/pelican_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/pelican_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/pelican_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/pelican_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/pelican_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/common/CMakeFiles/pelican_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
