file(REMOVE_RECURSE
  "CMakeFiles/pelican_nn.dir/cv.cpp.o"
  "CMakeFiles/pelican_nn.dir/cv.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/dropout.cpp.o"
  "CMakeFiles/pelican_nn.dir/dropout.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/linear.cpp.o"
  "CMakeFiles/pelican_nn.dir/linear.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/loss.cpp.o"
  "CMakeFiles/pelican_nn.dir/loss.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/lstm.cpp.o"
  "CMakeFiles/pelican_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/matrix.cpp.o"
  "CMakeFiles/pelican_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/metrics.cpp.o"
  "CMakeFiles/pelican_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/model.cpp.o"
  "CMakeFiles/pelican_nn.dir/model.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/optimizer.cpp.o"
  "CMakeFiles/pelican_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/pelican_nn.dir/trainer.cpp.o"
  "CMakeFiles/pelican_nn.dir/trainer.cpp.o.d"
  "libpelican_nn.a"
  "libpelican_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
