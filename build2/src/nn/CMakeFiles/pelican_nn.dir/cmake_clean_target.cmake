file(REMOVE_RECURSE
  "libpelican_nn.a"
)
