# Empty compiler generated dependencies file for pelican_nn.
# This may be replaced when dependencies are built.
