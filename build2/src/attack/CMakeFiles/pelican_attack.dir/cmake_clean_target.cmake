file(REMOVE_RECURSE
  "libpelican_attack.a"
)
