# Empty compiler generated dependencies file for pelican_attack.
# This may be replaced when dependencies are built.
