file(REMOVE_RECURSE
  "CMakeFiles/pelican_attack.dir/enumeration.cpp.o"
  "CMakeFiles/pelican_attack.dir/enumeration.cpp.o.d"
  "CMakeFiles/pelican_attack.dir/gradient_attack.cpp.o"
  "CMakeFiles/pelican_attack.dir/gradient_attack.cpp.o.d"
  "CMakeFiles/pelican_attack.dir/inversion.cpp.o"
  "CMakeFiles/pelican_attack.dir/inversion.cpp.o.d"
  "CMakeFiles/pelican_attack.dir/prior.cpp.o"
  "CMakeFiles/pelican_attack.dir/prior.cpp.o.d"
  "libpelican_attack.a"
  "libpelican_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
