file(REMOVE_RECURSE
  "libpelican_store.a"
)
