file(REMOVE_RECURSE
  "CMakeFiles/pelican_store.dir/model_store.cpp.o"
  "CMakeFiles/pelican_store.dir/model_store.cpp.o.d"
  "libpelican_store.a"
  "libpelican_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
