# Empty dependencies file for pelican_store.
# This may be replaced when dependencies are built.
