file(REMOVE_RECURSE
  "CMakeFiles/pelican_core.dir/cloud.cpp.o"
  "CMakeFiles/pelican_core.dir/cloud.cpp.o.d"
  "CMakeFiles/pelican_core.dir/device.cpp.o"
  "CMakeFiles/pelican_core.dir/device.cpp.o.d"
  "CMakeFiles/pelican_core.dir/pelican.cpp.o"
  "CMakeFiles/pelican_core.dir/pelican.cpp.o.d"
  "CMakeFiles/pelican_core.dir/privacy_layer.cpp.o"
  "CMakeFiles/pelican_core.dir/privacy_layer.cpp.o.d"
  "CMakeFiles/pelican_core.dir/service.cpp.o"
  "CMakeFiles/pelican_core.dir/service.cpp.o.d"
  "libpelican_core.a"
  "libpelican_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
