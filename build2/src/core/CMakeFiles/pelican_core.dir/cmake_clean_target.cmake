file(REMOVE_RECURSE
  "libpelican_core.a"
)
