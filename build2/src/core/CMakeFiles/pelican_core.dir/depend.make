# Empty dependencies file for pelican_core.
# This may be replaced when dependencies are built.
