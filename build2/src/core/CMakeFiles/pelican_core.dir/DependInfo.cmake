
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cloud.cpp" "src/core/CMakeFiles/pelican_core.dir/cloud.cpp.o" "gcc" "src/core/CMakeFiles/pelican_core.dir/cloud.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/core/CMakeFiles/pelican_core.dir/device.cpp.o" "gcc" "src/core/CMakeFiles/pelican_core.dir/device.cpp.o.d"
  "/root/repo/src/core/pelican.cpp" "src/core/CMakeFiles/pelican_core.dir/pelican.cpp.o" "gcc" "src/core/CMakeFiles/pelican_core.dir/pelican.cpp.o.d"
  "/root/repo/src/core/privacy_layer.cpp" "src/core/CMakeFiles/pelican_core.dir/privacy_layer.cpp.o" "gcc" "src/core/CMakeFiles/pelican_core.dir/privacy_layer.cpp.o.d"
  "/root/repo/src/core/service.cpp" "src/core/CMakeFiles/pelican_core.dir/service.cpp.o" "gcc" "src/core/CMakeFiles/pelican_core.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/attack/CMakeFiles/pelican_attack.dir/DependInfo.cmake"
  "/root/repo/build2/src/store/CMakeFiles/pelican_store.dir/DependInfo.cmake"
  "/root/repo/build2/src/models/CMakeFiles/pelican_models.dir/DependInfo.cmake"
  "/root/repo/build2/src/nn/CMakeFiles/pelican_nn.dir/DependInfo.cmake"
  "/root/repo/build2/src/mobility/CMakeFiles/pelican_mobility.dir/DependInfo.cmake"
  "/root/repo/build2/src/common/CMakeFiles/pelican_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
