file(REMOVE_RECURSE
  "libpelican_common.a"
)
