# Empty dependencies file for pelican_common.
# This may be replaced when dependencies are built.
