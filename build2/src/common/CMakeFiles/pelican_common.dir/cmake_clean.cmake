file(REMOVE_RECURSE
  "CMakeFiles/pelican_common.dir/serialize.cpp.o"
  "CMakeFiles/pelican_common.dir/serialize.cpp.o.d"
  "CMakeFiles/pelican_common.dir/stats.cpp.o"
  "CMakeFiles/pelican_common.dir/stats.cpp.o.d"
  "CMakeFiles/pelican_common.dir/table.cpp.o"
  "CMakeFiles/pelican_common.dir/table.cpp.o.d"
  "CMakeFiles/pelican_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pelican_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/pelican_common.dir/timer.cpp.o"
  "CMakeFiles/pelican_common.dir/timer.cpp.o.d"
  "libpelican_common.a"
  "libpelican_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
