file(REMOVE_RECURSE
  "CMakeFiles/pelican_serve.dir/registry.cpp.o"
  "CMakeFiles/pelican_serve.dir/registry.cpp.o.d"
  "CMakeFiles/pelican_serve.dir/scheduler.cpp.o"
  "CMakeFiles/pelican_serve.dir/scheduler.cpp.o.d"
  "CMakeFiles/pelican_serve.dir/stats.cpp.o"
  "CMakeFiles/pelican_serve.dir/stats.cpp.o.d"
  "libpelican_serve.a"
  "libpelican_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pelican_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
