file(REMOVE_RECURSE
  "libpelican_serve.a"
)
