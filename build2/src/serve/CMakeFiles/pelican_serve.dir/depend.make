# Empty dependencies file for pelican_serve.
# This may be replaced when dependencies are built.
