file(REMOVE_RECURSE
  "CMakeFiles/federated_campus.dir/federated_campus.cpp.o"
  "CMakeFiles/federated_campus.dir/federated_campus.cpp.o.d"
  "federated_campus"
  "federated_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
