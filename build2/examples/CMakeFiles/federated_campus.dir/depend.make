# Empty dependencies file for federated_campus.
# This may be replaced when dependencies are built.
