# Empty dependencies file for serving_cluster.
# This may be replaced when dependencies are built.
