file(REMOVE_RECURSE
  "CMakeFiles/serving_cluster.dir/serving_cluster.cpp.o"
  "CMakeFiles/serving_cluster.dir/serving_cluster.cpp.o.d"
  "serving_cluster"
  "serving_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
