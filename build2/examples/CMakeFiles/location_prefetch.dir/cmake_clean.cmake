file(REMOVE_RECURSE
  "CMakeFiles/location_prefetch.dir/location_prefetch.cpp.o"
  "CMakeFiles/location_prefetch.dir/location_prefetch.cpp.o.d"
  "location_prefetch"
  "location_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
