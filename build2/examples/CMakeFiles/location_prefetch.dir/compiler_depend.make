# Empty compiler generated dependencies file for location_prefetch.
# This may be replaced when dependencies are built.
