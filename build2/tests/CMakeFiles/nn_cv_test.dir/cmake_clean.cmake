file(REMOVE_RECURSE
  "CMakeFiles/nn_cv_test.dir/nn/cv_test.cpp.o"
  "CMakeFiles/nn_cv_test.dir/nn/cv_test.cpp.o.d"
  "nn_cv_test"
  "nn_cv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
