# Empty compiler generated dependencies file for mobility_simulator_param_test.
# This may be replaced when dependencies are built.
