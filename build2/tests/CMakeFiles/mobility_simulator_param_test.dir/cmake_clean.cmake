file(REMOVE_RECURSE
  "CMakeFiles/mobility_simulator_param_test.dir/mobility/simulator_param_test.cpp.o"
  "CMakeFiles/mobility_simulator_param_test.dir/mobility/simulator_param_test.cpp.o.d"
  "mobility_simulator_param_test"
  "mobility_simulator_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_simulator_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
