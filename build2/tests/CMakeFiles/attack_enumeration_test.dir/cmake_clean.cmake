file(REMOVE_RECURSE
  "CMakeFiles/attack_enumeration_test.dir/attack/enumeration_test.cpp.o"
  "CMakeFiles/attack_enumeration_test.dir/attack/enumeration_test.cpp.o.d"
  "attack_enumeration_test"
  "attack_enumeration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_enumeration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
