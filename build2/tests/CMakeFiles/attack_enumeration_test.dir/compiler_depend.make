# Empty compiler generated dependencies file for attack_enumeration_test.
# This may be replaced when dependencies are built.
