# Empty compiler generated dependencies file for core_privacy_layer_test.
# This may be replaced when dependencies are built.
