file(REMOVE_RECURSE
  "CMakeFiles/core_privacy_layer_test.dir/core/privacy_layer_test.cpp.o"
  "CMakeFiles/core_privacy_layer_test.dir/core/privacy_layer_test.cpp.o.d"
  "core_privacy_layer_test"
  "core_privacy_layer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_privacy_layer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
