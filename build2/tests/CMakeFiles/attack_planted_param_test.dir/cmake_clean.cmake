file(REMOVE_RECURSE
  "CMakeFiles/attack_planted_param_test.dir/attack/planted_param_test.cpp.o"
  "CMakeFiles/attack_planted_param_test.dir/attack/planted_param_test.cpp.o.d"
  "attack_planted_param_test"
  "attack_planted_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_planted_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
