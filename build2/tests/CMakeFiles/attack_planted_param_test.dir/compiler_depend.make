# Empty compiler generated dependencies file for attack_planted_param_test.
# This may be replaced when dependencies are built.
