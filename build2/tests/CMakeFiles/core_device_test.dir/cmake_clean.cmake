file(REMOVE_RECURSE
  "CMakeFiles/core_device_test.dir/core/device_test.cpp.o"
  "CMakeFiles/core_device_test.dir/core/device_test.cpp.o.d"
  "core_device_test"
  "core_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
