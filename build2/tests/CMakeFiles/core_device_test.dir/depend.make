# Empty dependencies file for core_device_test.
# This may be replaced when dependencies are built.
