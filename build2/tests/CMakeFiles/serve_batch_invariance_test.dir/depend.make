# Empty dependencies file for serve_batch_invariance_test.
# This may be replaced when dependencies are built.
