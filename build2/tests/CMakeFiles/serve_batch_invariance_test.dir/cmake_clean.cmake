file(REMOVE_RECURSE
  "CMakeFiles/serve_batch_invariance_test.dir/serve/batch_invariance_test.cpp.o"
  "CMakeFiles/serve_batch_invariance_test.dir/serve/batch_invariance_test.cpp.o.d"
  "serve_batch_invariance_test"
  "serve_batch_invariance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_batch_invariance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
