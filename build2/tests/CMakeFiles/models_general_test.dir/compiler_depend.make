# Empty compiler generated dependencies file for models_general_test.
# This may be replaced when dependencies are built.
