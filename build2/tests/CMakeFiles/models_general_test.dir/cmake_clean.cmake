file(REMOVE_RECURSE
  "CMakeFiles/models_general_test.dir/models/general_test.cpp.o"
  "CMakeFiles/models_general_test.dir/models/general_test.cpp.o.d"
  "models_general_test"
  "models_general_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_general_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
