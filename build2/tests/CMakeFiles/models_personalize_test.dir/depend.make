# Empty dependencies file for models_personalize_test.
# This may be replaced when dependencies are built.
