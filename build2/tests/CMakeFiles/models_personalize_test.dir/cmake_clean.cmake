file(REMOVE_RECURSE
  "CMakeFiles/models_personalize_test.dir/models/personalize_test.cpp.o"
  "CMakeFiles/models_personalize_test.dir/models/personalize_test.cpp.o.d"
  "models_personalize_test"
  "models_personalize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_personalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
