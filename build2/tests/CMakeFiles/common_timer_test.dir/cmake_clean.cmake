file(REMOVE_RECURSE
  "CMakeFiles/common_timer_test.dir/common/timer_test.cpp.o"
  "CMakeFiles/common_timer_test.dir/common/timer_test.cpp.o.d"
  "common_timer_test"
  "common_timer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_timer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
