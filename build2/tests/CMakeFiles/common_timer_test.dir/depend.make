# Empty dependencies file for common_timer_test.
# This may be replaced when dependencies are built.
