file(REMOVE_RECURSE
  "CMakeFiles/attack_gradient_attack_test.dir/attack/gradient_attack_test.cpp.o"
  "CMakeFiles/attack_gradient_attack_test.dir/attack/gradient_attack_test.cpp.o.d"
  "attack_gradient_attack_test"
  "attack_gradient_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_gradient_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
