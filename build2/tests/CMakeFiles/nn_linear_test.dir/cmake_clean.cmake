file(REMOVE_RECURSE
  "CMakeFiles/nn_linear_test.dir/nn/linear_test.cpp.o"
  "CMakeFiles/nn_linear_test.dir/nn/linear_test.cpp.o.d"
  "nn_linear_test"
  "nn_linear_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
