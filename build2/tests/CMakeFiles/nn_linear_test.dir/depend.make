# Empty dependencies file for nn_linear_test.
# This may be replaced when dependencies are built.
