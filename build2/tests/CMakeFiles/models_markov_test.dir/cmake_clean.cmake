file(REMOVE_RECURSE
  "CMakeFiles/models_markov_test.dir/models/markov_test.cpp.o"
  "CMakeFiles/models_markov_test.dir/models/markov_test.cpp.o.d"
  "models_markov_test"
  "models_markov_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
