# Empty dependencies file for models_markov_test.
# This may be replaced when dependencies are built.
