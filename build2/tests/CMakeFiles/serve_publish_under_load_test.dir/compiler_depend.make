# Empty compiler generated dependencies file for serve_publish_under_load_test.
# This may be replaced when dependencies are built.
