file(REMOVE_RECURSE
  "CMakeFiles/serve_publish_under_load_test.dir/serve/publish_under_load_test.cpp.o"
  "CMakeFiles/serve_publish_under_load_test.dir/serve/publish_under_load_test.cpp.o.d"
  "serve_publish_under_load_test"
  "serve_publish_under_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_publish_under_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
