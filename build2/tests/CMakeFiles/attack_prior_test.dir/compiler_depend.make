# Empty compiler generated dependencies file for attack_prior_test.
# This may be replaced when dependencies are built.
