file(REMOVE_RECURSE
  "CMakeFiles/attack_prior_test.dir/attack/prior_test.cpp.o"
  "CMakeFiles/attack_prior_test.dir/attack/prior_test.cpp.o.d"
  "attack_prior_test"
  "attack_prior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_prior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
