# Empty compiler generated dependencies file for mobility_persona_test.
# This may be replaced when dependencies are built.
