file(REMOVE_RECURSE
  "CMakeFiles/mobility_persona_test.dir/mobility/persona_test.cpp.o"
  "CMakeFiles/mobility_persona_test.dir/mobility/persona_test.cpp.o.d"
  "mobility_persona_test"
  "mobility_persona_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_persona_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
