file(REMOVE_RECURSE
  "CMakeFiles/attack_inversion_test.dir/attack/inversion_test.cpp.o"
  "CMakeFiles/attack_inversion_test.dir/attack/inversion_test.cpp.o.d"
  "attack_inversion_test"
  "attack_inversion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_inversion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
