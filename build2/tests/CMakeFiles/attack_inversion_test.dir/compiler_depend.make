# Empty compiler generated dependencies file for attack_inversion_test.
# This may be replaced when dependencies are built.
