file(REMOVE_RECURSE
  "CMakeFiles/core_service_test.dir/core/service_test.cpp.o"
  "CMakeFiles/core_service_test.dir/core/service_test.cpp.o.d"
  "core_service_test"
  "core_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
