# Empty dependencies file for core_service_test.
# This may be replaced when dependencies are built.
