file(REMOVE_RECURSE
  "CMakeFiles/core_cloud_test.dir/core/cloud_test.cpp.o"
  "CMakeFiles/core_cloud_test.dir/core/cloud_test.cpp.o.d"
  "core_cloud_test"
  "core_cloud_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cloud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
