# Empty dependencies file for core_cloud_test.
# This may be replaced when dependencies are built.
