file(REMOVE_RECURSE
  "CMakeFiles/mobility_trace_stats_test.dir/mobility/trace_stats_test.cpp.o"
  "CMakeFiles/mobility_trace_stats_test.dir/mobility/trace_stats_test.cpp.o.d"
  "mobility_trace_stats_test"
  "mobility_trace_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_trace_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
