# Empty dependencies file for mobility_trace_stats_test.
# This may be replaced when dependencies are built.
