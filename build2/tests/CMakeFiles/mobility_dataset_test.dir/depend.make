# Empty dependencies file for mobility_dataset_test.
# This may be replaced when dependencies are built.
