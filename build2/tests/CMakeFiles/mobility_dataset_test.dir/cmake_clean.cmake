file(REMOVE_RECURSE
  "CMakeFiles/mobility_dataset_test.dir/mobility/dataset_test.cpp.o"
  "CMakeFiles/mobility_dataset_test.dir/mobility/dataset_test.cpp.o.d"
  "mobility_dataset_test"
  "mobility_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
