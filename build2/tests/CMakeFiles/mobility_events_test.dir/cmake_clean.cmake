file(REMOVE_RECURSE
  "CMakeFiles/mobility_events_test.dir/mobility/events_test.cpp.o"
  "CMakeFiles/mobility_events_test.dir/mobility/events_test.cpp.o.d"
  "mobility_events_test"
  "mobility_events_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
