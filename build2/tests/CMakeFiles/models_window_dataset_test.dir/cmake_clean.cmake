file(REMOVE_RECURSE
  "CMakeFiles/models_window_dataset_test.dir/models/window_dataset_test.cpp.o"
  "CMakeFiles/models_window_dataset_test.dir/models/window_dataset_test.cpp.o.d"
  "models_window_dataset_test"
  "models_window_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_window_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
