# Empty dependencies file for models_window_dataset_test.
# This may be replaced when dependencies are built.
