# Empty compiler generated dependencies file for mobility_simulator_test.
# This may be replaced when dependencies are built.
