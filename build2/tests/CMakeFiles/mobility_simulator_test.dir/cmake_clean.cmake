file(REMOVE_RECURSE
  "CMakeFiles/mobility_simulator_test.dir/mobility/simulator_test.cpp.o"
  "CMakeFiles/mobility_simulator_test.dir/mobility/simulator_test.cpp.o.d"
  "mobility_simulator_test"
  "mobility_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
