# Empty compiler generated dependencies file for nn_matrix_param_test.
# This may be replaced when dependencies are built.
