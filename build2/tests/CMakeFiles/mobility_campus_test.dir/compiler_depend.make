# Empty compiler generated dependencies file for mobility_campus_test.
# This may be replaced when dependencies are built.
