file(REMOVE_RECURSE
  "CMakeFiles/mobility_campus_test.dir/mobility/campus_test.cpp.o"
  "CMakeFiles/mobility_campus_test.dir/mobility/campus_test.cpp.o.d"
  "mobility_campus_test"
  "mobility_campus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_campus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
