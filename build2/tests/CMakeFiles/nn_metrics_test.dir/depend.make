# Empty dependencies file for nn_metrics_test.
# This may be replaced when dependencies are built.
