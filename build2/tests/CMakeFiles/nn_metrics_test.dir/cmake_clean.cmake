file(REMOVE_RECURSE
  "CMakeFiles/nn_metrics_test.dir/nn/metrics_test.cpp.o"
  "CMakeFiles/nn_metrics_test.dir/nn/metrics_test.cpp.o.d"
  "nn_metrics_test"
  "nn_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
