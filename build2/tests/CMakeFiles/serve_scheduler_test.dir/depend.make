# Empty dependencies file for serve_scheduler_test.
# This may be replaced when dependencies are built.
