file(REMOVE_RECURSE
  "CMakeFiles/serve_scheduler_test.dir/serve/scheduler_test.cpp.o"
  "CMakeFiles/serve_scheduler_test.dir/serve/scheduler_test.cpp.o.d"
  "serve_scheduler_test"
  "serve_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
