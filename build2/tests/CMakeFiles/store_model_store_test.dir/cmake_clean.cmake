file(REMOVE_RECURSE
  "CMakeFiles/store_model_store_test.dir/store/model_store_test.cpp.o"
  "CMakeFiles/store_model_store_test.dir/store/model_store_test.cpp.o.d"
  "store_model_store_test"
  "store_model_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_model_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
