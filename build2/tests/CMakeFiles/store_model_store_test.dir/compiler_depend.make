# Empty compiler generated dependencies file for store_model_store_test.
# This may be replaced when dependencies are built.
