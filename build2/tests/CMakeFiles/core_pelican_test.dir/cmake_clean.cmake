file(REMOVE_RECURSE
  "CMakeFiles/core_pelican_test.dir/core/pelican_test.cpp.o"
  "CMakeFiles/core_pelican_test.dir/core/pelican_test.cpp.o.d"
  "core_pelican_test"
  "core_pelican_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pelican_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
