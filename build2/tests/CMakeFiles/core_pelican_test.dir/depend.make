# Empty dependencies file for core_pelican_test.
# This may be replaced when dependencies are built.
