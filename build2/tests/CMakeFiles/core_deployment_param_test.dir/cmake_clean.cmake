file(REMOVE_RECURSE
  "CMakeFiles/core_deployment_param_test.dir/core/deployment_param_test.cpp.o"
  "CMakeFiles/core_deployment_param_test.dir/core/deployment_param_test.cpp.o.d"
  "core_deployment_param_test"
  "core_deployment_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_deployment_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
