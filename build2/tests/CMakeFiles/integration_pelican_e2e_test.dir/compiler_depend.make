# Empty compiler generated dependencies file for integration_pelican_e2e_test.
# This may be replaced when dependencies are built.
