file(REMOVE_RECURSE
  "CMakeFiles/integration_pelican_e2e_test.dir/integration/pelican_e2e_test.cpp.o"
  "CMakeFiles/integration_pelican_e2e_test.dir/integration/pelican_e2e_test.cpp.o.d"
  "integration_pelican_e2e_test"
  "integration_pelican_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_pelican_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
