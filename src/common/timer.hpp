// Wall-clock timing and estimated CPU-cycle accounting.
//
// The paper reports personalization overhead both in seconds and in CPU
// cycles (Section V-C2: ~43,000 billion cycles for cloud training vs ~15
// billion for on-device personalization). We estimate cycles as
// thread CPU time x a nominal clock rate, which preserves the ratio the
// paper cares about without requiring perf counters.
#pragma once

#include <chrono>
#include <cstdint>

namespace pelican {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Process CPU time in seconds (sums across threads).
[[nodiscard]] double process_cpu_seconds();

/// Estimated CPU cycles consumed by the process so far, assuming a nominal
/// clock rate. Differences of this value bracket a phase's cycle cost.
[[nodiscard]] std::uint64_t estimated_cpu_cycles(
    double nominal_ghz = 2.2);  // the paper's device is a 2.20 GHz Intel CPU

/// Measures one phase: wall seconds plus estimated cycles.
struct PhaseCost {
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  std::uint64_t est_cycles = 0;
};

class PhaseTimer {
 public:
  PhaseTimer();
  [[nodiscard]] PhaseCost stop() const;

 private:
  Stopwatch wall_;
  double cpu_start_ = 0.0;
};

}  // namespace pelican
