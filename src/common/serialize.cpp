#include "common/serialize.hpp"

#include <bit>
#include <cstring>

namespace pelican {

namespace {

constexpr std::uint32_t kMagic = 0x50454C43;  // "PELC"

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

}  // namespace

BinaryWriter::BinaryWriter(const std::filesystem::path& path,
                           std::uint32_t version)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw SerializeError("cannot open for writing: " + path.string());
  }
  write_u32(kMagic);
  write_u32(version);
}

void BinaryWriter::write_raw(const void* data, std::size_t bytes) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) throw SerializeError("write failed");
}

void BinaryWriter::write_u8(std::uint8_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_raw(s.data(), s.size());
}

void BinaryWriter::write_f32_span(std::span<const float> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BinaryWriter::write_u32_span(std::span<const std::uint32_t> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BinaryWriter::finish() {
  if (finished_) return;
  finished_ = true;
  out_.flush();
  if (!out_) throw SerializeError("flush failed");
  out_.close();
}

BinaryWriter::~BinaryWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; explicit finish() reports errors.
  }
}

BinaryReader::BinaryReader(const std::filesystem::path& path,
                           std::uint32_t expected_version)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw SerializeError("cannot open for reading: " + path.string());
  }
  if (read_u32() != kMagic) {
    throw SerializeError("bad magic in " + path.string());
  }
  const std::uint32_t version = read_u32();
  if (version != expected_version) {
    throw SerializeError("version mismatch in " + path.string() +
                         ": found " + std::to_string(version) + ", expected " +
                         std::to_string(expected_version));
  }
}

void BinaryReader::read_raw(void* data, std::size_t bytes) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in_.gcount()) != bytes) {
    throw SerializeError("truncated stream");
  }
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  read_raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  read_raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v;
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  read_raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<float> xs(n);
  read_raw(xs.data(), n * sizeof(float));
  return xs;
}

std::vector<std::uint32_t> BinaryReader::read_u32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<std::uint32_t> xs(n);
  read_raw(xs.data(), n * sizeof(std::uint32_t));
  return xs;
}

}  // namespace pelican
