#include "common/serialize.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace pelican {

namespace {

// "PELD" — bumped from "PELC" when the header gained the checksum field,
// so pre-checksum checkpoints are rejected cleanly at the magic check
// instead of misreading their first payload word as a CRC.
constexpr std::uint32_t kMagic = 0x50454C44;
/// Byte offset of the header checksum field: magic + format version.
constexpr std::streamoff kChecksumOffset = 8;

static_assert(std::endian::native == std::endian::little,
              "serialization assumes a little-endian host");

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::uint32_t crc, const void* data,
                    std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    crc = kCrcTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

BinaryWriter::BinaryWriter(const std::filesystem::path& path,
                           std::uint32_t version)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw SerializeError("cannot open for writing: " + path.string());
  }
  write_u32(kMagic);
  write_u32(version);
  write_u32(0);  // checksum placeholder, patched by finish()
  header_done_ = true;
}

void BinaryWriter::write_raw(const void* data, std::size_t bytes) {
  if (bytes == 0) return;  // empty vectors hand us data() == nullptr
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out_) throw SerializeError("write failed");
  if (header_done_) crc_ = crc32(crc_, data, bytes);
}

void BinaryWriter::write_u8(std::uint8_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f32(float v) { write_raw(&v, sizeof v); }
void BinaryWriter::write_f64(double v) { write_raw(&v, sizeof v); }

void BinaryWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_raw(s.data(), s.size());
}

void BinaryWriter::write_f32_span(std::span<const float> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BinaryWriter::write_u32_span(std::span<const std::uint32_t> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BinaryWriter::write_i8_span(std::span<const std::int8_t> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BinaryWriter::finish() {
  if (finished_) return;
  finished_ = true;
  // Patch the payload checksum into the header slot. Written directly (not
  // through write_raw) so the patch itself never feeds the CRC.
  out_.seekp(kChecksumOffset);
  out_.write(reinterpret_cast<const char*>(&crc_), sizeof crc_);
  out_.flush();
  if (!out_) throw SerializeError("flush failed");
  out_.close();
}

BinaryWriter::~BinaryWriter() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; explicit finish() reports errors.
  }
}

BinaryReader::BinaryReader(const std::filesystem::path& path,
                           std::uint32_t expected_version)
    : in_(path, std::ios::binary) {
  if (!in_) {
    throw SerializeError("cannot open for reading: " + path.string());
  }
  if (read_u32() != kMagic) {
    throw SerializeError("bad magic in " + path.string() +
                         " (not a checkpoint, or written before the "
                         "checksummed header format)");
  }
  const std::uint32_t version = read_u32();
  if (version != expected_version) {
    throw SerializeError("version mismatch in " + path.string() +
                         ": found " + std::to_string(version) + ", expected " +
                         std::to_string(expected_version));
  }
  verify_checksum(path, read_u32());
}

void BinaryReader::verify_checksum(const std::filesystem::path& path,
                                   std::uint32_t expected_crc) {
  // One sequential pass over the payload before any typed read: corruption
  // is reported at open, never as garbage weights mid-deserialization.
  const std::istream::pos_type payload_start = in_.tellg();
  std::uint32_t crc = 0;
  char chunk[64 * 1024];
  while (in_) {
    in_.read(chunk, sizeof chunk);
    crc = crc32(crc, chunk, static_cast<std::size_t>(in_.gcount()));
  }
  if (!in_.eof()) {
    throw SerializeError("read failed while checksumming " + path.string());
  }
  if (crc != expected_crc) {
    throw SerializeError("checksum mismatch in " + path.string() +
                         ": payload does not match its header CRC "
                         "(truncated or corrupted artifact)");
  }
  in_.clear();
  in_.seekg(payload_start);
}

void BinaryReader::read_raw(void* data, std::size_t bytes) {
  if (bytes == 0) return;  // empty vectors hand us data() == nullptr
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in_.gcount()) != bytes) {
    throw SerializeError("truncated stream");
  }
}

std::uint8_t BinaryReader::read_u8() {
  std::uint8_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint32_t BinaryReader::read_u32() {
  std::uint32_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::read_u64() {
  std::uint64_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::read_i64() {
  std::int64_t v;
  read_raw(&v, sizeof v);
  return v;
}
float BinaryReader::read_f32() {
  float v;
  read_raw(&v, sizeof v);
  return v;
}
double BinaryReader::read_f64() {
  double v;
  read_raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::read_string() {
  const std::uint64_t n = read_u64();
  std::string s(n, '\0');
  read_raw(s.data(), n);
  return s;
}

std::vector<std::int8_t> BinaryReader::read_i8_vector() {
  const std::uint64_t n = read_u64();
  std::vector<std::int8_t> xs(n);
  read_raw(xs.data(), n);
  return xs;
}

std::vector<float> BinaryReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<float> xs(n);
  read_raw(xs.data(), n * sizeof(float));
  return xs;
}

std::vector<std::uint32_t> BinaryReader::read_u32_vector() {
  const std::uint64_t n = read_u64();
  std::vector<std::uint32_t> xs(n);
  read_raw(xs.data(), n * sizeof(std::uint32_t));
  return xs;
}

// ---------------------------------------------------------------- buffers --

void BufferWriter::write_raw(const void* data, std::size_t bytes) {
  if (bytes == 0) return;  // empty vectors hand us data() == nullptr
  const auto* p = static_cast<const std::uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + bytes);
}

void BufferWriter::write_u8(std::uint8_t v) { write_raw(&v, sizeof v); }
void BufferWriter::write_u16(std::uint16_t v) { write_raw(&v, sizeof v); }
void BufferWriter::write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
void BufferWriter::write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
void BufferWriter::write_i64(std::int64_t v) { write_raw(&v, sizeof v); }
void BufferWriter::write_f64(double v) { write_raw(&v, sizeof v); }

void BufferWriter::write_string(const std::string& s) {
  write_u64(s.size());
  write_raw(s.data(), s.size());
}

void BufferWriter::write_u16_span(std::span<const std::uint16_t> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BufferWriter::write_u64_span(std::span<const std::uint64_t> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BufferWriter::write_f64_span(std::span<const double> xs) {
  write_u64(xs.size());
  write_raw(xs.data(), xs.size_bytes());
}

void BufferReader::read_raw(void* data, std::size_t bytes) {
  if (bytes > remaining()) {
    throw SerializeError("truncated frame: wanted " + std::to_string(bytes) +
                         " bytes, have " + std::to_string(remaining()));
  }
  if (bytes == 0) return;  // empty vectors hand us data() == nullptr
  std::memcpy(data, data_.data() + offset_, bytes);
  offset_ += bytes;
}

std::uint8_t BufferReader::read_u8() {
  std::uint8_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint16_t BufferReader::read_u16() {
  std::uint16_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint32_t BufferReader::read_u32() {
  std::uint32_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::uint64_t BufferReader::read_u64() {
  std::uint64_t v;
  read_raw(&v, sizeof v);
  return v;
}
std::int64_t BufferReader::read_i64() {
  std::int64_t v;
  read_raw(&v, sizeof v);
  return v;
}
double BufferReader::read_f64() {
  double v;
  read_raw(&v, sizeof v);
  return v;
}

/// Validates a length prefix BEFORE allocating: a malformed frame must
/// throw SerializeError, not drive a multi-gigabyte allocation.
std::size_t BufferReader::checked_count(std::uint64_t n,
                                        std::size_t element_size) {
  if (n > remaining() / element_size) {
    throw SerializeError("truncated frame: length prefix " +
                         std::to_string(n) + " exceeds remaining bytes");
  }
  return static_cast<std::size_t>(n);
}

std::string BufferReader::read_string() {
  const std::size_t n = checked_count(read_u64(), 1);
  std::string s(n, '\0');
  read_raw(s.data(), n);
  return s;
}

std::vector<std::uint16_t> BufferReader::read_u16_vector() {
  const std::size_t n = checked_count(read_u64(), sizeof(std::uint16_t));
  std::vector<std::uint16_t> xs(n);
  read_raw(xs.data(), xs.size() * sizeof(std::uint16_t));
  return xs;
}

std::vector<std::uint64_t> BufferReader::read_u64_vector() {
  const std::size_t n = checked_count(read_u64(), sizeof(std::uint64_t));
  std::vector<std::uint64_t> xs(n);
  read_raw(xs.data(), xs.size() * sizeof(std::uint64_t));
  return xs;
}

std::vector<double> BufferReader::read_f64_vector() {
  const std::size_t n = checked_count(read_u64(), sizeof(double));
  std::vector<double> xs(n);
  read_raw(xs.data(), xs.size() * sizeof(double));
  return xs;
}

}  // namespace pelican
