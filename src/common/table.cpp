#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pelican {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table: row has more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };

  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

namespace {

/// True when the whole cell matches the JSON number grammar
/// (-?int frac? exp?). Deliberately stricter than strtod, which also
/// accepts hex floats, leading '+', bare '.5', and inf/nan — none of which
/// are valid unquoted JSON tokens.
bool is_json_number(const std::string& cell) {
  const char* p = cell.c_str();
  if (*p == '-') ++p;
  if (*p == '0') {
    ++p;  // a leading zero must stand alone ("007" is not JSON)
  } else if (std::isdigit(static_cast<unsigned char>(*p))) {
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  } else {
    return false;
  }
  if (*p == '.') {
    ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
    while (std::isdigit(static_cast<unsigned char>(*p))) ++p;
  }
  return *p == '\0';
}

void emit_json_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void emit_json_cell(std::ostringstream& os, const std::string& cell) {
  if (is_json_number(cell)) {
    os << cell;
  } else {
    emit_json_string(os, cell);
  }
}

}  // namespace

std::string Table::to_json() const {
  std::ostringstream os;
  os << "{\n  \"headers\": [";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ", ";
    emit_json_string(os, headers_[c]);
  }
  os << "],\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "    [";
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      if (c > 0) os << ", ";
      emit_json_cell(os, rows_[r][c]);
    }
    os << ']';
  }
  os << (rows_.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace pelican
