#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pelican {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table: row has more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << " |\n";
  };

  emit_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace pelican
