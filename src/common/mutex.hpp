// Annotated mutex + RAII lock types for Clang thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability annotations, so locking
// through it is invisible to `-Wthread-safety`. pelican::Mutex is a
// zero-overhead wrapper that IS a capability, and MutexLock is the one RAII
// guard used across the tree (it subsumes both std::lock_guard and
// std::unique_lock: manual lock()/unlock() and condition-variable waits go
// through it too, so every acquire/release stays visible to the analysis).
//
// Two rules keep the analysis sound:
//   1. Never lock through native() — it exists only so MutexLock can hand
//      std::condition_variable the std::unique_lock it requires.
//   2. Write condition waits as explicit while loops over MutexLock::wait
//      (predicate lambdas are analyzed as separate functions and would warn
//      on every guarded member they read).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"

namespace pelican {

/// std::mutex as a Clang thread-safety capability. Same size, same cost.
class PELICAN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The bodies delegate to the unannotated std::mutex, which the analysis
  // cannot see, so they are excluded from body checking (the standard
  // locking-primitive idiom) — callers are still checked via the
  // acquire/release attributes.
  void lock() PELICAN_ACQUIRE() PELICAN_NO_THREAD_SAFETY_ANALYSIS {
    impl_.lock();
  }
  void unlock() PELICAN_RELEASE() PELICAN_NO_THREAD_SAFETY_ANALYSIS {
    impl_.unlock();
  }
  [[nodiscard]] bool try_lock()
      PELICAN_TRY_ACQUIRE(true) PELICAN_NO_THREAD_SAFETY_ANALYSIS {
    return impl_.try_lock();
  }

  /// The wrapped std::mutex, for MutexLock only (see the header comment).
  [[nodiscard]] std::mutex& native() noexcept { return impl_; }

 private:
  std::mutex impl_;
};

/// RAII guard over a Mutex; the only way code in this tree takes a lock.
/// Holds a std::unique_lock underneath so std::condition_variable waits and
/// mid-scope unlock()/lock() work — each annotated, so the analysis tracks
/// the capability through every transition.
class PELICAN_SCOPED_CAPABILITY MutexLock {
 public:
  // Like Mutex above, the bodies work through the unannotated
  // std::unique_lock, so they are excluded from body checking; the scoped-
  // capability attributes are what callers are checked against.
  explicit MutexLock(Mutex& mutex)
      PELICAN_ACQUIRE(mutex) PELICAN_NO_THREAD_SAFETY_ANALYSIS
      : lock_(mutex.native()) {}
  ~MutexLock() PELICAN_RELEASE() PELICAN_NO_THREAD_SAFETY_ANALYSIS {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Mid-scope release (e.g. to run a callback off-lock before returning).
  void unlock() PELICAN_RELEASE() PELICAN_NO_THREAD_SAFETY_ANALYSIS {
    lock_.unlock();
  }
  /// Re-acquire after unlock().
  void lock() PELICAN_ACQUIRE() PELICAN_NO_THREAD_SAFETY_ANALYSIS {
    lock_.lock();
  }

  /// Blocks on `cv` until notified; the mutex is released while parked and
  /// re-held on return (condition_variable's contract). Call in a while
  /// loop re-checking the guarded predicate — see the header comment.
  void wait(std::condition_variable& cv) { cv.wait(lock_); }

  /// wait() with a deadline; returns false on timeout.
  template <typename Clock, typename Duration>
  bool wait_until(std::condition_variable& cv,
                  const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv.wait_until(lock_, deadline) == std::cv_status::no_timeout;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace pelican
