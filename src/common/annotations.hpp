// Clang thread-safety annotations behind portable PELICAN_* macros.
//
// The serving stack's locking discipline (shard locks, per-deployment serve
// locks, the scheduler's queue lock, connection pools) is documented in each
// header — these macros make those contracts COMPILER-CHECKED: under Clang,
// `-Wthread-safety -Werror` (the CI `clang-tsa` lane, and the `clang-tsa`
// CMake preset locally) rejects any access to a PELICAN_GUARDED_BY member
// without its mutex held, any call to a PELICAN_REQUIRES function without
// the stated capability, and any lock-order violation expressible through
// PELICAN_EXCLUDES. Under GCC (the default toolchain) every macro expands
// to nothing, so the annotations cost nothing off-Clang.
//
// Usage pattern (see common/mutex.hpp for the annotated lock types):
//
//   class Cache {
//     pelican::Mutex mutex_;
//     std::map<Key, Value> entries_ PELICAN_GUARDED_BY(mutex_);
//
//     void insert(Key k, Value v) {
//       const MutexLock lock(mutex_);   // PELICAN_ACQUIRE in its ctor
//       entries_[k] = std::move(v);     // OK: mutex_ held
//     }
//     void prune_locked() PELICAN_REQUIRES(mutex_);  // caller must hold it
//   };
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PELICAN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PELICAN_THREAD_ANNOTATION
#define PELICAN_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define PELICAN_CAPABILITY(x) PELICAN_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define PELICAN_SCOPED_CAPABILITY PELICAN_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read/written with `x` held.
#define PELICAN_GUARDED_BY(x) PELICAN_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose POINTEE may only be accessed with `x` held.
#define PELICAN_PT_GUARDED_BY(x) PELICAN_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (and does not release it).
#define PELICAN_ACQUIRE(...) \
  PELICAN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define PELICAN_RELEASE(...) \
  PELICAN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define PELICAN_TRY_ACQUIRE(...) \
  PELICAN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must already hold the capability (it is neither acquired nor
/// released by the function).
#define PELICAN_REQUIRES(...) \
  PELICAN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself, or
/// acquiring it here would invert an established lock order).
#define PELICAN_EXCLUDES(...) PELICAN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Asserts at analysis level that the capability is held (for flows the
/// analysis cannot follow, e.g. a lock taken by a caller through a pointer).
#define PELICAN_ASSERT_CAPABILITY(x) \
  PELICAN_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define PELICAN_RETURN_CAPABILITY(x) PELICAN_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct but inexpressible (keep
/// rare; every use needs a comment saying why the analysis cannot see it).
#define PELICAN_NO_THREAD_SAFETY_ANALYSIS \
  PELICAN_THREAD_ANNOTATION(no_thread_safety_analysis)
