// Minimal binary (de)serialization with explicit little-endian layout.
//
// Used for model checkpoints (the Pelican "download the general model from
// the cloud to the device" step) and for the benchmark pipeline cache.
// The format is: a 4-byte magic, a format version, then length-prefixed
// primitive writes. Readers validate magic/version and throw on truncation.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pelican {

/// Thrown when a stream is truncated, has a bad magic, or a version mismatch.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws on I/O failure.
  BinaryWriter(const std::filesystem::path& path, std::uint32_t version);

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_span(std::span<const float> xs);
  void write_u32_span(std::span<const std::uint32_t> xs);

  /// Flushes and closes; throws if the final flush fails. Called by the
  /// destructor as well (errors are swallowed there), so call explicitly
  /// when failure must be observable.
  void finish();

  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  void write_raw(const void* data, std::size_t bytes);

  std::ofstream out_;
  bool finished_ = false;
};

class BinaryReader {
 public:
  /// Opens `path` and validates the header against `expected_version`.
  BinaryReader(const std::filesystem::path& path,
               std::uint32_t expected_version);

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] float read_f32();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<float> read_f32_vector();
  [[nodiscard]] std::vector<std::uint32_t> read_u32_vector();

 private:
  void read_raw(void* data, std::size_t bytes);

  std::ifstream in_;
};

}  // namespace pelican
