// Minimal binary (de)serialization with explicit little-endian layout.
//
// Used for model checkpoints (the Pelican "download the general model from
// the cloud to the device" step), for the benchmark pipeline cache, and —
// through BufferWriter/BufferReader — for the router tier's wire protocol.
//
// Checkpoint files (BinaryWriter/BinaryReader) carry a header of
//   [magic | format version | payload CRC-32]
// followed by length-prefixed primitive writes. The checksum covers every
// payload byte after the header; the writer patches it in at finish() and
// the reader verifies it BEFORE handing out the first payload byte, so a
// truncated or bit-flipped artifact (e.g. a torn model-store checkpoint)
// fails loudly at open instead of deserializing garbage weights. Readers
// also validate magic/version and throw on truncation.
//
// BufferWriter/BufferReader speak the same primitive layout into/out of an
// in-memory byte buffer with no header — framing and integrity are the
// transport's job there (router/wire length-prefixed frames over
// SOCK_STREAM sockets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pelican {

/// Thrown when a stream is truncated, has a bad magic, a version mismatch,
/// or a payload that does not match its header checksum.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Incremental CRC-32 (IEEE 802.3 polynomial, the zlib convention: start
/// from 0, feed bytes in any chunking). Exposed so tests and tools can
/// compute expected checkpoint checksums.
[[nodiscard]] std::uint32_t crc32(std::uint32_t crc, const void* data,
                                  std::size_t bytes) noexcept;

class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header (with a zero checksum
  /// placeholder that finish() patches). Throws on I/O failure.
  BinaryWriter(const std::filesystem::path& path, std::uint32_t version);

  void write_u8(std::uint8_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f32(float v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_f32_span(std::span<const float> xs);
  void write_u32_span(std::span<const std::uint32_t> xs);
  void write_i8_span(std::span<const std::int8_t> xs);

  /// Patches the header checksum, flushes and closes; throws if the final
  /// flush fails. Called by the destructor as well (errors are swallowed
  /// there), so call explicitly when failure must be observable.
  void finish();

  ~BinaryWriter();
  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

 private:
  void write_raw(const void* data, std::size_t bytes);

  std::ofstream out_;
  std::uint32_t crc_ = 0;      ///< running CRC-32 of the payload bytes
  bool header_done_ = false;   ///< header bytes are excluded from the CRC
  bool finished_ = false;
};

class BinaryReader {
 public:
  /// Opens `path`, validates the header against `expected_version`, and
  /// verifies the payload checksum (one extra sequential pass over the
  /// file) before any typed read. Throws SerializeError on bad magic,
  /// version mismatch, truncation, or checksum mismatch.
  BinaryReader(const std::filesystem::path& path,
               std::uint32_t expected_version);

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] float read_f32();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<float> read_f32_vector();
  [[nodiscard]] std::vector<std::uint32_t> read_u32_vector();
  [[nodiscard]] std::vector<std::int8_t> read_i8_vector();

 private:
  void read_raw(void* data, std::size_t bytes);
  void verify_checksum(const std::filesystem::path& path,
                       std::uint32_t expected_crc);

  std::ifstream in_;
};

/// Primitive writes into a growable in-memory buffer — the same layout as
/// BinaryWriter, minus the file header. Used to build wire-protocol frames
/// (router/wire.hpp); the transport adds the length prefix.
class BufferWriter {
 public:
  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v);
  void write_f64(double v);
  void write_string(const std::string& s);
  void write_u16_span(std::span<const std::uint16_t> xs);
  void write_u64_span(std::span<const std::uint64_t> xs);
  void write_f64_span(std::span<const double> xs);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buffer_);
  }

 private:
  void write_raw(const void* data, std::size_t bytes);

  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked reads over a received byte buffer. Throws SerializeError
/// on overrun (a malformed or truncated frame), never reads past the span.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<std::uint16_t> read_u16_vector();
  [[nodiscard]] std::vector<std::uint64_t> read_u64_vector();
  [[nodiscard]] std::vector<double> read_f64_vector();

  /// Bytes not yet consumed; a fully decoded frame ends at exactly 0.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }

 private:
  void read_raw(void* data, std::size_t bytes);
  [[nodiscard]] std::size_t checked_count(std::uint64_t n,
                                          std::size_t element_size);

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace pelican
