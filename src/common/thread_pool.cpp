#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace pelican {

namespace {
thread_local bool inside_pool_worker = false;
}  // namespace

/// One parallel_for invocation: a shared work counter plus completion state.
struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  void run_share() {
    constexpr std::size_t kChunk = 1;
    for (;;) {
      const std::size_t i = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*fn)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every batch, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  inside_pool_worker = true;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || batch_ != nullptr; });
      if (stop_) return;
      batch = batch_;
      batch->active.fetch_add(1, std::memory_order_relaxed);
    }
    batch->run_share();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (batch->active.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
          batch_ == batch) {
        // Last worker out clears nothing; the submitting thread owns cleanup.
      }
    }
    done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || inside_pool_worker) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  Batch batch;
  batch.count = count;
  batch.fn = &fn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch_ = &batch;
  }
  wake_.notify_all();

  // The caller participates, and while it does it counts as a pool worker:
  // a nested parallel_for from inside its share must serialize (exactly as
  // it does for the spawned workers) instead of re-locking submit_mutex_ —
  // which this thread already holds — and deadlocking. Restore on exit so
  // sequential parallel_for calls from this thread still parallelize.
  const bool was_inside = inside_pool_worker;
  inside_pool_worker = true;
  batch.run_share();
  inside_pool_worker = was_inside;

  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_ = nullptr;  // stop new workers from joining this batch
    done_.wait(lock, [&batch] {
      return batch.active.load(std::memory_order_acquire) == 0;
    });
  }
  if (batch.error) std::rethrow_exception(batch.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(count, fn);
}

}  // namespace pelican
