#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <exception>

namespace pelican {

namespace {
thread_local bool inside_pool_worker = false;

/// Set (before the pool's members are torn down) when the global pool's
/// static destructor runs. Trivially destructible, so it is safe to read
/// from any later static destructor.
std::atomic<bool> global_pool_destroyed{false};
}  // namespace

/// One parallel_for invocation: a shared work counter plus completion state.
struct ThreadPool::Batch {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};
  Mutex error_mutex;
  std::exception_ptr error PELICAN_GUARDED_BY(error_mutex);

  void run_share() {
    constexpr std::size_t kChunk = 1;
    for (;;) {
      const std::size_t i = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*fn)(i);
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  }

  [[nodiscard]] std::exception_ptr take_error() {
    const MutexLock lock(error_mutex);
    return error;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread participates in every batch, so spawn one fewer.
  const std::size_t workers = threads > 1 ? threads - 1 : 0;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    // No parallel_for may outlive the pool: a batch still installed here
    // means a submitting thread is about to touch freed pool state.
    assert(batch_ == nullptr && "ThreadPool destroyed with a batch in flight");
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  inside_pool_worker = true;
  for (;;) {
    Batch* batch = nullptr;
    {
      MutexLock lock(mutex_);
      while (!stop_ && batch_ == nullptr) lock.wait(wake_);
      if (stop_) return;
      batch = batch_;
      batch->active.fetch_add(1, std::memory_order_relaxed);
    }
    batch->run_share();
    {
      const MutexLock lock(mutex_);
      batch->active.fetch_sub(1, std::memory_order_acq_rel);
    }
    done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || inside_pool_worker) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  const MutexLock submit_lock(submit_mutex_);
  Batch batch;
  batch.count = count;
  batch.fn = &fn;
  {
    const MutexLock lock(mutex_);
    batch_ = &batch;
  }
  wake_.notify_all();

  // The caller participates, and while it does it counts as a pool worker:
  // a nested parallel_for from inside its share must serialize (exactly as
  // it does for the spawned workers) instead of re-locking submit_mutex_ —
  // which this thread already holds — and deadlocking. Restore on exit so
  // sequential parallel_for calls from this thread still parallelize.
  const bool was_inside = inside_pool_worker;
  inside_pool_worker = true;
  batch.run_share();
  inside_pool_worker = was_inside;

  {
    MutexLock lock(mutex_);
    batch_ = nullptr;  // stop new workers from joining this batch
    while (batch.active.load(std::memory_order_acquire) != 0) {
      lock.wait(done_);
    }
  }
  if (auto error = batch.take_error()) std::rethrow_exception(error);
}

namespace {
/// Holder whose destructor flips the tombstone BEFORE the pool itself is
/// destroyed (destructor bodies run before member destruction), so any
/// static destructor sequenced after this one observes global_alive() ==
/// false and takes the serial path instead of touching a dead pool.
struct GlobalPool {
  ThreadPool pool;
  ~GlobalPool() { global_pool_destroyed.store(true, std::memory_order_release); }
};
}  // namespace

ThreadPool& ThreadPool::global() {
  static GlobalPool holder;
  return holder.pool;
}

bool ThreadPool::global_alive() noexcept {
  return !global_pool_destroyed.load(std::memory_order_acquire);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  if (!ThreadPool::global_alive()) {
    // Exit-time caller (a static destructor outliving the pool): run the
    // loop serially rather than resurrecting or racing pool teardown.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool::global().parallel_for(count, fn);
}

}  // namespace pelican
