// Deterministic random-number utilities.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// that traces, trained models and attack results are reproducible run-to-run.
// `Rng` wraps a SplitMix64-seeded xoshiro256** generator; `fork` derives an
// independent child stream (e.g. one per simulated user) without the parent
// and child streams overlapping.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace pelican {

/// Counter-based seed derivation (SplitMix64). Used both to seed the main
/// generator state and to derive per-entity sub-seeds deterministically.
[[nodiscard]] constexpr std::uint64_t split_mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Small, fast, deterministic PRNG (xoshiro256**).
/// Satisfies UniformRandomBitGenerator so it composes with <random>
/// distributions, but the library's own helpers below are preferred because
/// their output is identical across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d8fd3a1e6b7c521ULL) noexcept {
    // Expand the seed into four non-zero words.
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = split_mix64(s);
      word = s;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Multiply-shift bounded rejection-free mapping; bias is < 2^-64 * n,
    // negligible for the n used here (location counts, bin counts).
    const auto x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (deterministic across platforms).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = 0.0;
    do {
      u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    spare_ = radius * std::sin(kTwoPi * u2);
    have_spare_ = true;
    return radius * std::cos(kTwoPi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derives an independent child generator. Children forked with different
  /// tags from the same parent produce decorrelated streams.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept {
    return Rng(split_mix64(state_[0] ^ split_mix64(tag ^ 0xa02bdbf7bb3c0a7ULL)));
  }

  /// Samples an index from non-negative weights (categorical distribution).
  /// Precondition: at least one weight > 0.
  template <typename Container>
  std::size_t categorical(const Container& weights) noexcept {
    double total = 0.0;
    for (const double w : weights) total += w;
    double target = uniform() * total;
    std::size_t last = 0;
    std::size_t i = 0;
    for (const double w : weights) {
      if (w > 0.0) {
        last = i;
        if (target < w) return i;
        target -= w;
      }
      ++i;
    }
    return last;  // numerical fallback: return last positive-weight index
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace pelican
