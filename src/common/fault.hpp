// Deterministic, seeded fault injection for chaos testing.
//
// A process-wide Injector holds an ordered list of Rules. Instrumented code
// ("hook sites" — today: router/socket frame I/O, Router::exchange, and
// EngineWorker::handle_frame) asks `decide(site, peer)` what, if anything,
// should go wrong right here, and applies the verdict itself: sleep for a
// delay/stall, drop the connection, or truncate the frame mid-write. The
// injector only ever *decides*; the hook owns the mechanics, so this layer-0
// component knows nothing about sockets or wire frames.
//
// Rules match by substring on the site name ("socket.send",
// "engine.handle.predict_batch", ...) and on a peer label (a wire address —
// empty matches everything), and fire deterministically: each rule carries
// its own SplitMix64-derived RNG stream (seeded from the injector seed and
// the rule's position), a probability, a number of matches to skip first
// (`after`), and a maximum number of firings (`count`). The same spec + the
// same sequence of decide() calls ⇒ the same faults, which is what makes
// chaos tests reproducible and their failures bisectable.
//
// Configuration is either programmatic (tests) or via the PELICAN_FAULT
// environment variable, read once on first use:
//
//   PELICAN_FAULT='seed=42;rule=site:engine.handle,action:stall,ms:30000;
//                  rule=site:socket.send,peer:e1,action:drop,p:0.1,count:2'
//
// Rules are separated by ';' or '|' (the latter for contexts where ';' is a
// list separator, e.g. ctest ENVIRONMENT properties); keys within a rule by
// ','. Unknown keys or actions throw std::invalid_argument so a typo'd spec
// fails the run instead of silently injecting nothing.
//
// Stalls are interruptible: clear()/configure() bump an epoch and every
// in-flight sleep re-checks it every few milliseconds, so a test can stall
// an engine "forever", observe the quarantine, then lift the fault and
// watch recovery — without waiting out the stall.
//
// When no rules are loaded, the hot-path cost is one relaxed atomic load
// (`active()` is false and hooks return immediately).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"

namespace pelican::fault {

enum class Action : std::uint8_t {
  kNone = 0,
  kDelay,     ///< sleep `delay_ms`, then proceed normally
  kStall,     ///< like kDelay but semantically "hung": default 60 s
  kDrop,      ///< the hook severs the connection (typed transport error)
  kTruncate,  ///< the hook writes a partial frame, then severs
};

[[nodiscard]] constexpr const char* to_string(Action action) noexcept {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kDelay: return "delay";
    case Action::kStall: return "stall";
    case Action::kDrop: return "drop";
    case Action::kTruncate: return "truncate";
  }
  return "?";
}

struct Rule {
  /// Substring match against the hook site name; empty matches every site.
  std::string site;
  /// Substring match against the hook's peer label (a wire address, or an
  /// engine's own listen address for engine-side hooks); empty matches all.
  std::string peer;
  Action action = Action::kNone;
  /// Sleep duration for kDelay/kStall (kStall defaults to 60000 when the
  /// spec gives no ms).
  double delay_ms = 0.0;
  /// Firing probability per matching call, decided by the rule's own
  /// deterministic stream. 1.0 = always.
  double probability = 1.0;
  /// Skip the first `after` matching calls before firing is considered.
  std::uint64_t after = 0;
  /// Stop firing after this many firings; 0 = unlimited.
  std::uint64_t max_count = 0;
};

/// What a hook should do right now. delay_ms is set for kDelay/kStall.
struct Decision {
  Action action = Action::kNone;
  double delay_ms = 0.0;
};

class Injector {
 public:
  /// The process-wide injector. First use reads $PELICAN_FAULT (when set)
  /// so fork+exec'd engine daemons configure themselves with zero plumbing.
  [[nodiscard]] static Injector& global();

  /// True iff any rule is loaded — the hooks' zero-cost fast-path gate.
  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Replaces all rules from a spec string (grammar in the header comment).
  /// Throws std::invalid_argument on malformed specs.
  void configure(const std::string& spec);
  /// Programmatic configuration (tests). Per-rule streams derive from
  /// `seed` and the rule index.
  void configure(std::vector<Rule> rules, std::uint64_t seed);
  /// Drops every rule and releases any in-flight stall.
  void clear();

  /// First matching rule that fires wins. kNone when nothing fires.
  [[nodiscard]] Decision decide(std::string_view site, std::string_view peer);

  /// Sleeps out a kDelay/kStall decision in small slices, returning early
  /// if the configuration epoch changes (clear()/configure() lift stalls).
  void sleep_for(const Decision& decision);

  /// Total firings of rule `index` so far (test observability).
  [[nodiscard]] std::uint64_t fired(std::size_t index) const;

 private:
  struct RuleState {
    Rule rule;
    Rng rng;
    std::uint64_t matches = 0;
    std::uint64_t firings = 0;
    explicit RuleState(Rule r, std::uint64_t stream_seed)
        : rule(std::move(r)), rng(stream_seed) {}
  };

  mutable Mutex mutex_;
  std::vector<RuleState> rules_ PELICAN_GUARDED_BY(mutex_);
  std::atomic<bool> active_{false};
  /// Bumped by configure()/clear(); in-flight sleeps watch it.
  std::atomic<std::uint64_t> epoch_{0};
};

/// Parses a PELICAN_FAULT spec into rules + seed (exposed for unit tests).
struct ParsedSpec {
  std::vector<Rule> rules;
  std::uint64_t seed = 0;
};
[[nodiscard]] ParsedSpec parse_fault_spec(const std::string& spec);

}  // namespace pelican::fault
