#include "common/timer.hpp"

#include <ctime>

namespace pelican {

double process_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::uint64_t estimated_cpu_cycles(double nominal_ghz) {
  return static_cast<std::uint64_t>(process_cpu_seconds() * nominal_ghz * 1e9);
}

PhaseTimer::PhaseTimer() : cpu_start_(process_cpu_seconds()) {}

PhaseCost PhaseTimer::stop() const {
  PhaseCost cost;
  cost.wall_seconds = wall_.seconds();
  cost.cpu_seconds = process_cpu_seconds() - cpu_start_;
  cost.est_cycles = static_cast<std::uint64_t>(cost.cpu_seconds * 2.2e9);
  return cost;
}

}  // namespace pelican
