#include "common/fault.hpp"

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <utility>

namespace pelican::fault {

namespace {

[[noreturn]] void bad_spec(const std::string& what, const std::string& text) {
  throw std::invalid_argument("fault spec: " + what + " in '" + text + "'");
}

double parse_number(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty()) {
    bad_spec("bad number", text);
  }
  return value;
}

std::uint64_t parse_u64(const std::string& text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    bad_spec("bad integer", text);
  }
  return value;
}

Action parse_action(const std::string& text) {
  if (text == "delay") return Action::kDelay;
  if (text == "stall") return Action::kStall;
  if (text == "drop") return Action::kDrop;
  if (text == "truncate") return Action::kTruncate;
  bad_spec("unknown action", text);
}

Rule parse_rule(const std::string& body) {
  Rule rule;
  bool have_ms = false;
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t comma = body.find(',', start);
    if (comma == std::string::npos) comma = body.size();
    const std::string pair = body.substr(start, comma - start);
    start = comma + 1;
    if (pair.empty()) continue;
    const std::size_t colon = pair.find(':');
    if (colon == std::string::npos) bad_spec("rule key needs key:value", pair);
    const std::string key = pair.substr(0, colon);
    const std::string value = pair.substr(colon + 1);
    if (key == "site") {
      rule.site = value;
    } else if (key == "peer") {
      rule.peer = value;
    } else if (key == "action") {
      rule.action = parse_action(value);
    } else if (key == "ms") {
      rule.delay_ms = parse_number(value);
      have_ms = true;
    } else if (key == "p") {
      rule.probability = parse_number(value);
    } else if (key == "after") {
      rule.after = parse_u64(value);
    } else if (key == "count") {
      rule.max_count = parse_u64(value);
    } else {
      bad_spec("unknown rule key '" + key + "'", body);
    }
  }
  if (rule.action == Action::kNone) bad_spec("rule has no action", body);
  // A stall with no explicit duration means "hung for all practical
  // purposes": long enough that only a deadline or a clear() ends it.
  if (rule.action == Action::kStall && !have_ms) rule.delay_ms = 60000.0;
  return rule;
}

}  // namespace

ParsedSpec parse_fault_spec(const std::string& spec) {
  ParsedSpec parsed;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t cut = spec.find_first_of(";|", start);
    if (cut == std::string::npos) cut = spec.size();
    std::string entry = spec.substr(start, cut - start);
    start = cut + 1;
    // Tolerate whitespace around entries so multi-line env specs read well.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\n' ||
                              entry.front() == '\t')) {
      entry.erase(entry.begin());
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\n' ||
                              entry.back() == '\t')) {
      entry.pop_back();
    }
    if (entry.empty()) continue;
    if (entry.starts_with("seed=")) {
      parsed.seed = parse_u64(entry.substr(5));
    } else if (entry.starts_with("rule=")) {
      parsed.rules.push_back(parse_rule(entry.substr(5)));
    } else {
      bad_spec("entry must be seed=N or rule=...", entry);
    }
  }
  return parsed;
}

Injector& Injector::global() {
  static Injector* instance = [] {
    auto* injector = new Injector();
    if (const char* env = std::getenv("PELICAN_FAULT")) {
      injector->configure(env);
    }
    return injector;
  }();
  return *instance;
}

void Injector::configure(const std::string& spec) {
  const ParsedSpec parsed = parse_fault_spec(spec);
  configure(parsed.rules, parsed.seed);
}

void Injector::configure(std::vector<Rule> rules, std::uint64_t seed) {
  const MutexLock lock(mutex_);
  rules_.clear();
  rules_.reserve(rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    // One independent deterministic stream per rule, derived from the seed
    // and the rule's position, so reordering unrelated decide() calls for
    // one rule never perturbs another rule's firings.
    rules_.emplace_back(std::move(rules[i]), split_mix64(seed + i + 1));
  }
  active_.store(!rules_.empty(), std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

void Injector::clear() {
  {
    const MutexLock lock(mutex_);
    rules_.clear();
    active_.store(false, std::memory_order_relaxed);
  }
  epoch_.fetch_add(1, std::memory_order_relaxed);  // release in-flight stalls
}

Decision Injector::decide(std::string_view site, std::string_view peer) {
  if (!active()) return {};
  const MutexLock lock(mutex_);
  for (RuleState& state : rules_) {
    const Rule& rule = state.rule;
    if (!rule.site.empty() && site.find(rule.site) == std::string_view::npos) {
      continue;
    }
    if (!rule.peer.empty() && peer.find(rule.peer) == std::string_view::npos) {
      continue;
    }
    const std::uint64_t match = state.matches++;
    if (match < rule.after) continue;
    if (rule.max_count != 0 && state.firings >= rule.max_count) continue;
    if (rule.probability < 1.0 && !state.rng.chance(rule.probability)) {
      continue;
    }
    ++state.firings;
    return {rule.action, rule.delay_ms};
  }
  return {};
}

void Injector::sleep_for(const Decision& decision) {
  if (decision.action != Action::kDelay && decision.action != Action::kStall) {
    return;
  }
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(decision.delay_ms));
  while (std::chrono::steady_clock::now() < deadline) {
    if (epoch_.load(std::memory_order_relaxed) != epoch) return;  // lifted
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

std::uint64_t Injector::fired(std::size_t index) const {
  const MutexLock lock(mutex_);
  if (index >= rules_.size()) return 0;
  return rules_[index].firings;
}

}  // namespace pelican::fault
