#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pelican::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (const double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double total = 0.0;
  for (const double x : xs) total += (x - m) * (x - m);
  return total / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid),
                   copy.end());
  if (copy.size() % 2 == 1) return copy[mid];
  const double hi = copy[mid];
  const double lo = *std::max_element(
      copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::vector<double> copy(xs.begin(), xs.end());
  std::sort(copy.begin(), copy.end());
  const double rank = q / 100.0 * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= copy.size()) return copy.back();
  const double frac = rank - static_cast<double>(lo);
  return copy[lo] + frac * (copy[lo + 1] - copy[lo]);
}

namespace {

/// Continued-fraction evaluation for the incomplete beta function
/// (Lentz's algorithm, per Numerical Recipes betacf).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kTiny = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_two_sided_p(double t, double dof) {
  if (dof <= 0.0) return 1.0;
  if (!std::isfinite(t)) return 0.0;
  const double x = dof / (dof + t * t);
  return incomplete_beta(0.5 * dof, 0.5, x);
}

Correlation pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  Correlation out;
  out.n = xs.size();
  if (out.n < 3) return out;

  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return out;

  out.r = sxy / std::sqrt(sxx * syy);
  out.r = std::clamp(out.r, -1.0, 1.0);
  out.slope = sxy / sxx;
  out.intercept = my - out.slope * mx;

  const double dof = static_cast<double>(out.n - 2);
  const double denom = 1.0 - out.r * out.r;
  if (denom <= 0.0) {
    out.p_value = 0.0;
  } else {
    const double t = out.r * std::sqrt(dof / denom);
    out.p_value = student_t_two_sided_p(t, dof);
  }
  return out;
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("histogram: need bins > 0 and hi > lo");
  }
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double x : xs) {
    auto idx = static_cast<std::ptrdiff_t>((x - lo) / width);
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     static_cast<std::ptrdiff_t>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

}  // namespace pelican::stats
