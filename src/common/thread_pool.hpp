// A small fixed-size thread pool with a parallel-for primitive.
//
// The library runs on modest hardware (the paper's "device" tier); the pool
// is used to split large matrix products and embarrassingly-parallel
// per-user loops across cores. Nested parallel_for calls from inside a
// worker execute serially, so callers never deadlock by composing parallel
// code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pelican {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count), blocking until all complete. Work is
  /// divided into contiguous chunks, one per worker plus the calling thread.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized to the hardware. Lazily constructed.
  static ThreadPool& global();

 private:
  struct Batch;

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  // serializes concurrent parallel_for submissions
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Batch* batch_ = nullptr;  // current batch, guarded by mutex_
  bool stop_ = false;
};

/// Convenience wrapper over the global pool. Falls back to a serial loop when
/// called from inside a pool worker (no nested parallelism).
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace pelican
