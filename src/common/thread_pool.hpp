// A small fixed-size thread pool with a parallel-for primitive.
//
// The library runs on modest hardware (the paper's "device" tier); the pool
// is used to split large matrix products and embarrassingly-parallel
// per-user loops across cores. Nested parallel_for calls from inside a
// worker execute serially, so callers never deadlock by composing parallel
// code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace pelican {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers. Requires that no parallel_for is in flight — a
  /// still-running batch at destruction is a use-after-free in the making,
  /// and is asserted against (RelAssert keeps assertions on).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(i) for i in [0, count), blocking until all complete. Work is
  /// divided into contiguous chunks, one per worker plus the calling thread.
  /// Exceptions thrown by fn propagate to the caller (first one wins).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Process-wide pool, sized to the hardware. Lazily constructed on first
  /// use; destroyed during static teardown in reverse construction order.
  /// OWNERSHIP AND SHUTDOWN ORDER: anything that may run tasks during exit
  /// (static destructors, atexit hooks) must either have been constructed
  /// AFTER the pool's first use — C++ guarantees it is then destroyed
  /// before the pool — or go through pelican::parallel_for, which degrades
  /// to a serial loop once the pool is gone (see global_alive). TSan's
  /// exit-time checker sees a clean join either way.
  static ThreadPool& global();

  /// False once the global pool has been destroyed at process exit. The
  /// free parallel_for below checks this so late static destructors never
  /// touch a dead pool.
  [[nodiscard]] static bool global_alive() noexcept;

 private:
  struct Batch;

  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex submit_mutex_;  ///< serializes concurrent parallel_for submissions
  Mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Batch* batch_ PELICAN_GUARDED_BY(mutex_) = nullptr;  ///< current batch
  bool stop_ PELICAN_GUARDED_BY(mutex_) = false;
};

/// Convenience wrapper over the global pool. Falls back to a serial loop
/// when called from inside a pool worker (no nested parallelism) or after
/// the global pool has been torn down at exit.
void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace pelican
