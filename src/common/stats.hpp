// Descriptive statistics and the regression analysis used in the paper's
// evaluation (Section IV-B.5/6 reports Pearson correlation coefficients with
// p-values between mobility characteristics and privacy leakage).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pelican::stats {

/// Arithmetic mean. Returns 0 for an empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Returns 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Sample median (copies and partially sorts). Returns 0 for an empty span.
[[nodiscard]] double median(std::span<const double> xs);

/// Percentile with linear interpolation between closest ranks (the
/// "inclusive" definition: q = 0 is the minimum, q = 100 the maximum).
/// `q` is clamped into [0, 100]. Returns 0 for an empty span. Used by the
/// serving engine's latency reporting (p50/p99).
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Result of a correlation / simple-regression analysis.
struct Correlation {
  double r = 0.0;        ///< Pearson correlation coefficient in [-1, 1].
  double p_value = 1.0;  ///< Two-sided p-value of the t-test for r != 0.
  double slope = 0.0;    ///< OLS slope of y on x.
  double intercept = 0.0;
  std::size_t n = 0;     ///< Number of paired observations.
};

/// Pearson correlation with a two-sided t-test p-value, plus the OLS fit.
/// Degenerate inputs (n < 3 or zero variance) return r = 0, p = 1.
[[nodiscard]] Correlation pearson(std::span<const double> xs,
                                  std::span<const double> ys);

/// Regularized incomplete beta function I_x(a, b) via continued fractions.
/// Used for Student-t tail probabilities; exposed for testing.
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// Two-sided p-value for a Student-t statistic with `dof` degrees of freedom.
[[nodiscard]] double student_t_two_sided_p(double t, double dof);

/// Histogram with fixed-width bins over [lo, hi); values outside are clamped
/// into the edge bins. Used by trace-statistics reporting.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs,
                                                 double lo, double hi,
                                                 std::size_t bins);

}  // namespace pelican::stats
