// ASCII table rendering for benchmark output.
//
// Every experiment binary prints the rows/series the paper reports next to
// the measured values; this helper keeps that output aligned and consistent.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pelican {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; it may have fewer cells than there are headers (the rest
  /// render empty) but not more.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with fixed precision, trimming to a compact cell.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  /// Renders the table with a header rule, e.g. for std::cout << table.str().
  [[nodiscard]] std::string str() const;

  /// Machine-readable emitter for the CI-tracked bench trajectory:
  /// {"headers": [...], "rows": [[...], ...]}. Cells that match the JSON
  /// number grammar are emitted as JSON numbers, everything else as escaped
  /// strings.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& table);

/// Prints a "== title ==" banner used by every bench binary.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace pelican
