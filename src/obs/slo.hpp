// Declarative SLOs evaluated as multi-window burn rates over the
// time-series store.
//
// An SloSpec names a series (typically one the FleetSampler derives, e.g.
// `stage_router_fanout_ms_p99` or `requests_shed_total_rate`), a target
// (a sample is GOOD iff value <= target), and an error budget (the
// fraction of samples allowed to be bad). The burn rate of a window is
//
//   burn = (bad samples / samples in window) / budget_fraction
//
// i.e. how many times faster than "allowed" the budget is being consumed:
// 1.0 = exactly on budget, 10.0 = a 1% budget burning at 10%/window.
//
// Multi-window semantics are the standard SRE refinement: a breach is
// declared only when EVERY configured window burns at or above the
// threshold — the short window confirms the problem is happening NOW (and
// clears quickly once it stops, giving fast recovery detection), the long
// window confirms enough budget was spent to matter (one blip cannot
// page). Transitions — not levels — are surfaced: each breach/recovery
// edge bumps `slo_breaches_total`/`slo_recoveries_total` and lands a
// kSloBreach/kSloRecovered event in the journal, so the flight recorder
// tells the story ("breached at T, recovered at T+12s") rather than a
// thousand identical "still bad" lines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace pelican::obs {

/// One declarative objective over a stored series.
struct SloSpec {
  std::string name;        ///< e.g. "predict-p99"
  std::string series;      ///< watched series, e.g. "stage_forward_ms_p99"
  double target = 0.0;     ///< sample is good iff value <= target
  double budget_fraction = 0.01;  ///< allowed bad-sample fraction, (0, 1]
  std::vector<double> windows_s = {10.0, 60.0};  ///< evaluation windows
  double burn_threshold = 1.0;  ///< breach iff every window burns >= this
};

/// Burn rate of one window at the latest evaluation.
struct SloWindowBurn {
  double window_s = 0.0;
  double burn = 0.0;
  std::size_t samples = 0;  ///< 0 = window empty; cannot contribute a breach
};

/// Evaluated status of one SLO.
struct SloStatus {
  std::string name;
  std::string series;
  double target = 0.0;
  bool breached = false;
  double worst_burn = 0.0;  ///< max over windows with samples
  std::vector<SloWindowBurn> windows;
};

/// Evaluates a set of SloSpecs against a TimeSeriesStore and tracks
/// breach/recovery transitions. evaluate() is typically wired as the
/// FleetSampler's on_sample hook so every tick re-judges the objectives;
/// status() serves the /slo exposition. Thread-safe.
class SloTracker {
 public:
  /// `metrics` (optional) receives slo_breaches_total /
  /// slo_recoveries_total; `events` (optional) receives transition events.
  /// Both must outlive the tracker.
  explicit SloTracker(const TimeSeriesStore& store,
                      Registry* metrics = nullptr,
                      EventJournal* events = nullptr);

  void add(SloSpec spec);
  [[nodiscard]] std::size_t size() const;

  /// Re-judge every objective against the store now; record transitions.
  /// Returns the fresh statuses (also retained for status()).
  std::vector<SloStatus> evaluate();
  /// Statuses from the last evaluate() (empty if never evaluated).
  [[nodiscard]] std::vector<SloStatus> status() const;

 private:
  const TimeSeriesStore& store_;
  Counter* breaches_ = nullptr;    ///< registry-owned, stable for its life
  Counter* recoveries_ = nullptr;
  EventJournal* events_ = nullptr;

  struct Tracked {
    SloSpec spec;
    bool breached = false;
  };
  mutable Mutex mutex_;
  std::vector<Tracked> slos_ PELICAN_GUARDED_BY(mutex_);
  std::vector<SloStatus> last_ PELICAN_GUARDED_BY(mutex_);
};

}  // namespace pelican::obs
