#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pelican::obs {
namespace {

// Shortest round-trippable rendering of a double that is still valid JSON
// (no bare "inf"/"nan"; those become 0, which cannot occur for our sums).
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to %g-style readability when exact: prefer the shorter form if it
  // parses back identically.
  char shorter[32];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  if (std::strtod(shorter, nullptr) == v) return shorter;
  return buf;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

void append_metric_line(std::string& out, const std::string& name,
                        const std::string& labels, const std::string& value) {
  out += "pelican_";
  out += name;
  if (!labels.empty()) {
    out += '{';
    out += labels;
    out += '}';
  }
  out += ' ';
  out += value;
  out += '\n';
}

std::string join_labels(const std::string& base, const std::string& extra) {
  if (base.empty()) return extra;
  if (extra.empty()) return base;
  return base + "," + extra;
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string prometheus_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_text(const RegistryState& state,
                            const std::string& labels) {
  std::string out;
  for (const auto& [name, value] : state.counters) {
    append_metric_line(out, name, labels, num(value));
  }
  std::uint64_t invalid_total = 0;
  for (const auto& [name, hist] : state.histograms) {
    invalid_total += hist.invalid;
    append_metric_line(out, name + "_count", labels, num(hist.count));
    append_metric_line(out, name + "_sum", labels, num(hist.sum));
    append_metric_line(out, name + "_max", labels, num(hist.max));
    append_metric_line(out, name, join_labels(labels, "quantile=\"0.5\""),
                       num(Histogram::percentile_of(hist, 50.0)));
    append_metric_line(out, name, join_labels(labels, "quantile=\"0.99\""),
                       num(Histogram::percentile_of(hist, 99.0)));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (hist.buckets[i] == 0) continue;
      cumulative += hist.buckets[i];
      const double upper = Histogram::bucket_upper(i);
      const std::string le =
          std::isinf(upper) ? std::string("+Inf") : num(upper);
      append_metric_line(out, name + "_bucket",
                         join_labels(labels, "le=\"" + le + "\""),
                         num(cumulative));
    }
  }
  if (!state.histograms.empty()) {
    append_metric_line(out, "histogram_invalid_observations_total", labels,
                       num(invalid_total));
  }
  return out;
}

std::string registry_json(const RegistryState& state) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : state.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + num(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : state.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{";
    out += "\"count\":" + num(hist.count);
    out += ",\"invalid\":" + num(hist.invalid);
    out += ",\"sum\":" + num(hist.sum);
    out += ",\"max\":" + num(hist.max);
    out += ",\"p50\":" + num(Histogram::percentile_of(hist, 50.0));
    out += ",\"p99\":" + num(Histogram::percentile_of(hist, 99.0));
    out += '}';
  }
  out += "}}";
  return out;
}

std::string traces_json(std::span<const TraceRecord> traces) {
  std::string out = "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const TraceRecord& rec = traces[i];
    if (i != 0) out += ',';
    out += "{\"trace_id\":" + num(rec.trace_id);
    out += ",\"source\":\"" + json_escape(rec.source) + '"';
    out += ",\"total_ms\":" + num(rec.total_ms);
    out += ",\"spans\":[";
    for (std::size_t s = 0; s < rec.spans.size(); ++s) {
      if (s != 0) out += ',';
      out += "{\"stage\":\"";
      out += to_string(rec.spans[s].stage);
      out += "\",\"duration_ms\":" + num(rec.spans[s].duration_ms()) + '}';
    }
    out += "]}";
  }
  out += "]";
  return out;
}

std::string events_json(std::span<const Event> events) {
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    if (i != 0) out += ',';
    out += "{\"seq\":" + num(event.seq);
    out += ",\"unix_ms\":" + num(event.unix_ms);
    out += ",\"type\":\"";
    out += to_string(event.type);
    out += "\",\"trace_id\":" + num(event.trace_id);
    out += ",\"subject\":\"" + json_escape(event.subject) + '"';
    out += ",\"detail\":\"" + json_escape(event.detail) + '"';
    out += ",\"source\":\"" + json_escape(event.source) + "\"}";
  }
  out += "]";
  return out;
}

std::string timeseries_json(
    const std::vector<std::pair<std::string, std::vector<SeriesPoint>>>&
        series) {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, points] : series) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":[";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (i != 0) out += ',';
      out += "{\"t\":" + num(points[i].unix_ms);
      out += ",\"v\":" + num(points[i].value) + '}';
    }
    out += ']';
  }
  out += "}";
  return out;
}

std::string slos_json(std::span<const SloStatus> statuses) {
  std::string out = "[";
  for (std::size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& status = statuses[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + json_escape(status.name) + '"';
    out += ",\"series\":\"" + json_escape(status.series) + '"';
    out += ",\"target\":" + num(status.target);
    out += ",\"breached\":";
    out += status.breached ? "true" : "false";
    out += ",\"worst_burn\":" + num(status.worst_burn);
    out += ",\"windows\":[";
    for (std::size_t w = 0; w < status.windows.size(); ++w) {
      if (w != 0) out += ',';
      out += "{\"window_s\":" + num(status.windows[w].window_s);
      out += ",\"burn\":" + num(status.windows[w].burn);
      out += ",\"samples\":" +
             num(static_cast<std::uint64_t>(status.windows[w].samples)) + '}';
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace pelican::obs
