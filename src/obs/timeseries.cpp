#include "obs/timeseries.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace pelican::obs {
namespace {

std::uint64_t clamped_sub(std::uint64_t newer, std::uint64_t older) noexcept {
  return newer >= older ? newer - older : 0;
}

/// Bucket-wise `newer - older`. A reset (any count going backwards) makes
/// the subtraction meaningless, so the newer snapshot passes through whole
/// — same "first sighting" semantics as an unknown name.
HistogramState delta_histogram(const HistogramState& newer,
                               const HistogramState& older) {
  if (older.count == 0 || newer.count < older.count ||
      newer.buckets.size() != older.buckets.size()) {
    return newer;
  }
  HistogramState out;
  out.count = newer.count - older.count;
  if (out.count == 0) return out;
  out.sum = newer.sum - older.sum;
  out.max = newer.max;  // lifetime max: documented upper bound (header)
  out.invalid = clamped_sub(newer.invalid, older.invalid);
  out.buckets.resize(newer.buckets.size());
  for (std::size_t i = 0; i < newer.buckets.size(); ++i) {
    out.buckets[i] = clamped_sub(newer.buckets[i], older.buckets[i]);
  }
  return out;
}

}  // namespace

RegistryState delta_state(const RegistryState& newer,
                          const RegistryState& older) {
  RegistryState out;
  out.counters.reserve(newer.counters.size());
  for (const auto& [name, value] : newer.counters) {
    auto it = std::find_if(older.counters.begin(), older.counters.end(),
                           [&](const auto& c) { return c.first == name; });
    const std::uint64_t base = it == older.counters.end() ? 0 : it->second;
    out.counters.emplace_back(name, clamped_sub(value, base));
  }
  out.histograms.reserve(newer.histograms.size());
  for (const auto& [name, state] : newer.histograms) {
    auto it = std::find_if(older.histograms.begin(), older.histograms.end(),
                           [&](const auto& h) { return h.first == name; });
    out.histograms.emplace_back(
        name, it == older.histograms.end() ? state
                                           : delta_histogram(state, it->second));
  }
  return out;
}

void TimeSeriesStore::push(const std::string& name, std::uint64_t unix_ms,
                           double value) {
  if (capacity_ == 0) return;
  const MutexLock lock(mutex_);
  std::deque<SeriesPoint>& ring = series_[name];
  if (ring.size() >= capacity_) ring.pop_front();
  ring.push_back(SeriesPoint{unix_ms, value});
}

std::vector<SeriesPoint> TimeSeriesStore::series(
    const std::string& name) const {
  const MutexLock lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<SeriesPoint> TimeSeriesStore::series_since(
    const std::string& name, std::uint64_t since_unix_ms) const {
  const MutexLock lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  std::vector<SeriesPoint> out;
  for (const SeriesPoint& point : it->second) {
    if (point.unix_ms >= since_unix_ms) out.push_back(point);
  }
  return out;
}

std::vector<std::string> TimeSeriesStore::names() const {
  const MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) out.push_back(name);
  return out;  // std::map iteration order is already sorted
}

std::vector<std::pair<std::string, std::vector<SeriesPoint>>>
TimeSeriesStore::snapshot() const {
  const MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::vector<SeriesPoint>>> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    out.emplace_back(name,
                     std::vector<SeriesPoint>(ring.begin(), ring.end()));
  }
  return out;
}

void TimeSeriesStore::clear() {
  const MutexLock lock(mutex_);
  series_.clear();
}

FleetSampler::FleetSampler(Source source, FleetSamplerConfig config)
    : source_(std::move(source)),
      config_(std::move(config)),
      store_(config_.capacity) {}

FleetSampler::~FleetSampler() { stop(); }

void FleetSampler::set_on_sample(std::function<void()> hook) {
  on_sample_ = std::move(hook);
}

void FleetSampler::start() {
  {
    const MutexLock lock(lifecycle_mutex_);
    if (running_.load(std::memory_order_relaxed)) return;
    stopping_ = false;
    running_.store(true, std::memory_order_relaxed);
  }
  thread_ = std::thread([this] { run_loop(); });
}

void FleetSampler::stop() {
  {
    const MutexLock lock(lifecycle_mutex_);
    if (!running_.load(std::memory_order_relaxed)) return;
    stopping_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void FleetSampler::run_loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(config_.interval_ms));
  auto next = std::chrono::steady_clock::now() + interval;
  while (true) {
    {
      MutexLock lock(lifecycle_mutex_);
      while (!stopping_ && std::chrono::steady_clock::now() < next) {
        lock.wait_until(wake_cv_, next);
      }
      if (stopping_) return;
    }
    next += interval;
    // Never burst-catch-up after a slow poll: one tick per wakeup, and the
    // schedule re-anchors if the source itself outran the interval.
    const auto now = std::chrono::steady_clock::now();
    if (next < now) next = now + interval;
    sample_now();
  }
}

void FleetSampler::sample_now() {
  if (!tick()) return;
  if (on_sample_) on_sample_();
}

bool FleetSampler::tick() {
  RegistryState state;
  try {
    state = source_();
  } catch (...) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t stamp = unix_now_ms();
  const auto at = std::chrono::steady_clock::now();
  {
    const MutexLock lock(sample_mutex_);
    if (has_prev_) {
      const double dt_s =
          std::chrono::duration<double>(at - prev_at_).count();
      if (dt_s > 0.0) {
        const RegistryState delta = delta_state(state, prev_);
        for (const auto& [name, value] : delta.counters) {
          store_.push(name + "_rate", stamp,
                      static_cast<double>(value) / dt_s);
        }
        for (const auto& [name, hist] : delta.histograms) {
          if (hist.count == 0) continue;  // quiet interval: no point to plot
          store_.push(name + "_rate", stamp,
                      static_cast<double>(hist.count) / dt_s);
          for (const auto& [suffix, q] : config_.quantiles) {
            store_.push(name + suffix, stamp,
                        Histogram::percentile_of(hist, q));
          }
        }
      }
    }
    prev_ = std::move(state);
    prev_at_ = at;
    has_prev_ = true;
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace pelican::obs
