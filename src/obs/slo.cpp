#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "obs/trace.hpp"

namespace pelican::obs {
namespace {

SloWindowBurn window_burn(const std::vector<SeriesPoint>& points,
                          std::uint64_t now_ms, const SloSpec& spec,
                          double window_s) {
  SloWindowBurn out;
  out.window_s = window_s;
  const auto span_ms = static_cast<std::uint64_t>(window_s * 1000.0);
  const std::uint64_t since = now_ms > span_ms ? now_ms - span_ms : 0;
  std::size_t bad = 0;
  for (const SeriesPoint& point : points) {
    if (point.unix_ms < since) continue;
    ++out.samples;
    if (!(point.value <= spec.target)) ++bad;  // NaN counts as bad
  }
  if (out.samples == 0 || spec.budget_fraction <= 0.0) return out;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(out.samples);
  out.burn = bad_fraction / spec.budget_fraction;
  return out;
}

std::string burn_detail(const SloStatus& status) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "burn=%.2f series=%s target=%g",
                status.worst_burn, status.series.c_str(), status.target);
  return buf;
}

}  // namespace

SloTracker::SloTracker(const TimeSeriesStore& store, Registry* metrics,
                       EventJournal* events)
    : store_(store), events_(events) {
  if (metrics != nullptr) {
    // Eager registration: the counters exist (at 0) from the first scrape,
    // same discipline as the router's eager counter pointers.
    breaches_ = &metrics->counter("slo_breaches_total");
    recoveries_ = &metrics->counter("slo_recoveries_total");
  }
}

void SloTracker::add(SloSpec spec) {
  const MutexLock lock(mutex_);
  slos_.push_back(Tracked{std::move(spec), false});
}

std::size_t SloTracker::size() const {
  const MutexLock lock(mutex_);
  return slos_.size();
}

std::vector<SloStatus> SloTracker::evaluate() {
  const std::uint64_t now_ms = unix_now_ms();
  std::vector<SloStatus> statuses;
  struct Transition {
    SloStatus status;
    bool breached_now = false;
  };
  std::vector<Transition> transitions;
  {
    const MutexLock lock(mutex_);
    statuses.reserve(slos_.size());
    for (Tracked& tracked : slos_) {
      const SloSpec& spec = tracked.spec;
      SloStatus status;
      status.name = spec.name;
      status.series = spec.series;
      status.target = spec.target;
      const std::vector<SeriesPoint> points = store_.series(spec.series);
      bool all_burning = !spec.windows_s.empty();
      for (double window_s : spec.windows_s) {
        SloWindowBurn burn = window_burn(points, now_ms, spec, window_s);
        if (burn.samples == 0 || burn.burn < spec.burn_threshold) {
          all_burning = false;
        }
        if (burn.samples > 0) {
          status.worst_burn = std::max(status.worst_burn, burn.burn);
        }
        status.windows.push_back(std::move(burn));
      }
      status.breached = all_burning;
      if (status.breached != tracked.breached) {
        tracked.breached = status.breached;
        transitions.push_back(Transition{status, status.breached});
      }
      statuses.push_back(std::move(status));
    }
    last_ = statuses;
  }
  // Transitions are recorded off the tracker lock: the journal and the
  // counters have their own synchronization, and evaluate() may be called
  // from the sampler thread while a scrape holds other locks.
  for (const Transition& transition : transitions) {
    if (transition.breached_now) {
      if (breaches_ != nullptr) breaches_->add();
      if (events_ != nullptr) {
        events_->emit(EventType::kSloBreach, transition.status.name,
                      burn_detail(transition.status));
      }
    } else {
      if (recoveries_ != nullptr) recoveries_->add();
      if (events_ != nullptr) {
        events_->emit(EventType::kSloRecovered, transition.status.name,
                      burn_detail(transition.status));
      }
    }
  }
  return statuses;
}

std::vector<SloStatus> SloTracker::status() const {
  const MutexLock lock(mutex_);
  return last_;
}

}  // namespace pelican::obs
