#include "obs/events.hpp"

#include <algorithm>
#include <utility>

#include "obs/trace.hpp"

namespace pelican::obs {

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kQuarantine: return "quarantine";
    case EventType::kUnquarantine: return "unquarantine";
    case EventType::kHedgeWin: return "hedge_win";
    case EventType::kPublish: return "publish";
    case EventType::kFailover: return "failover";
    case EventType::kDeadlineShed: return "deadline_shed";
    case EventType::kSloBreach: return "slo_breach";
    case EventType::kSloRecovered: return "slo_recovered";
  }
  return "unknown";
}

void EventJournal::emit(EventType type, std::string subject,
                        std::string detail, std::uint64_t trace_id) {
  if (capacity_ == 0) return;
  Event event;
  event.unix_ms = unix_now_ms();
  event.type = type;
  event.trace_id = trace_id;
  event.subject = std::move(subject);
  event.detail = std::move(detail);
  const MutexLock lock(mutex_);
  event.seq = next_seq_++;
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(std::move(event));
}

std::vector<Event> EventJournal::snapshot() const {
  const MutexLock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::vector<Event> EventJournal::since(std::uint64_t after_seq) const {
  const MutexLock lock(mutex_);
  std::vector<Event> out;
  for (const Event& event : ring_) {
    if (event.seq > after_seq) out.push_back(event);
  }
  return out;
}

std::size_t EventJournal::size() const {
  const MutexLock lock(mutex_);
  return ring_.size();
}

std::uint64_t EventJournal::dropped() const {
  const MutexLock lock(mutex_);
  return dropped_;
}

void EventJournal::clear() {
  const MutexLock lock(mutex_);
  ring_.clear();
  dropped_ = 0;
}

void merge_events(std::vector<Event>& into, std::vector<Event> events,
                  const std::string& source) {
  for (Event& event : events) {
    if (event.source.empty()) event.source = source;
    into.push_back(std::move(event));
  }
}

void sort_events(std::vector<Event>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.unix_ms != b.unix_ms) return a.unix_ms < b.unix_ms;
                     return a.seq < b.seq;
                   });
}

}  // namespace pelican::obs
