// Minimal HTTP/1.1 request parsing and response rendering — the
// transport-FREE half of the exposition server.
//
// The layer lattice keeps obs below router (obs may not name sockets), so
// this module is pure string work: given the raw bytes of a request head,
// produce {method, target}; given a {status, content type, body}, produce
// the exact response bytes. The socket-bound accept loop that moves those
// bytes lives in `router/obs_http` on the existing router/socket
// transport. Splitting here also makes the parser trivially unit-testable
// without a live listener.
//
// Deliberately minimal: GET-style requests with no meaningful bodies
// (scrapes), `Connection: close` one-shot responses (every scrape is a
// fresh connection; Prometheus handles this fine and it keeps the server
// free of keep-alive state). Request heads are capped at
// kMaxHttpHeadBytes — anything longer is a client error, not a buffer.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace pelican::obs {

/// Longest request head (request line + headers + CRLFCRLF) accepted.
inline constexpr std::size_t kMaxHttpHeadBytes = 8192;

/// Parsed request line. Headers are intentionally not retained — no
/// endpoint needs them.
struct HttpRequest {
  std::string method;   ///< "GET"
  std::string target;   ///< "/metrics" (query string kept verbatim)
  std::string version;  ///< "HTTP/1.1"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// True once `buffer` holds a complete head (terminating CRLFCRLF; a bare
/// LFLF is tolerated for hand-typed clients).
[[nodiscard]] bool http_head_complete(std::string_view buffer) noexcept;

/// Parse the request line out of a complete head. nullopt on malformed
/// input (empty line, missing fields, embedded NUL).
[[nodiscard]] std::optional<HttpRequest> parse_http_request(
    std::string_view head);

/// Canonical reason phrase ("OK", "Not Found", ...); "Unknown" otherwise.
[[nodiscard]] const char* http_status_reason(int status) noexcept;

/// Serialize a response: status line, Content-Type/Length, Connection:
/// close, blank line, body.
[[nodiscard]] std::string render_http_response(const HttpResponse& response);

}  // namespace pelican::obs
