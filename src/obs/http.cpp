#include "obs/http.hpp"

namespace pelican::obs {

bool http_head_complete(std::string_view buffer) noexcept {
  return buffer.find("\r\n\r\n") != std::string_view::npos ||
         buffer.find("\n\n") != std::string_view::npos;
}

std::optional<HttpRequest> parse_http_request(std::string_view head) {
  const std::size_t eol = head.find_first_of("\r\n");
  std::string_view line = eol == std::string_view::npos ? head
                                                        : head.substr(0, eol);
  if (line.empty() || line.find('\0') != std::string_view::npos) {
    return std::nullopt;
  }
  const std::size_t method_end = line.find(' ');
  if (method_end == std::string_view::npos || method_end == 0) {
    return std::nullopt;
  }
  const std::size_t target_start = method_end + 1;
  const std::size_t target_end = line.find(' ', target_start);
  if (target_end == std::string_view::npos || target_end == target_start) {
    return std::nullopt;
  }
  HttpRequest request;
  request.method = std::string(line.substr(0, method_end));
  request.target =
      std::string(line.substr(target_start, target_end - target_start));
  request.version = std::string(line.substr(target_end + 1));
  if (request.version.rfind("HTTP/", 0) != 0) return std::nullopt;
  return request;
}

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
  }
  return "Unknown";
}

std::string render_http_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += http_status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace pelican::obs
