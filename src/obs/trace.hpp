// Per-request tracing over the monotonic clock.
//
// A trace is a 64-bit id (never 0 — 0 means "untraced") plus a flat list of
// stage spans. One trace covers one logical predict request END TO END:
// the Router stamps a fresh id on every request of a routed batch, the id
// rides the wire inside the predict frame, and the engine's scheduler
// records its stage spans (queue wait, batch assembly, encode, forward,
// rank/top-k) under the SAME id the router used for its own spans (wire
// serialize, fan-out, failover retry). `pelican_statsz` then reassembles
// the cross-process trace by grouping journal records by id.
//
// Overhead discipline: span timestamps are two `steady_clock` reads; spans
// are accumulated in a caller-owned stack buffer and committed to the
// collector in ONE batched `record()` call per request (one lock per
// request, not per span). The collector keeps only a bounded map of open
// traces and a worst-N journal, so tracing memory is O(max_open x
// max_spans), independent of traffic.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace pelican::obs {

/// Stages of the serving path, in causal order. Router-side stages come
/// after the engine stages in the enum but wrap them in time.
enum class Stage : std::uint8_t {
  kAdmission = 0,    ///< submit-side queue admission (block/reject/shed)
  kQueueWait,        ///< enqueue -> drain pickup
  kBatchAssembly,    ///< grouping requests into (user, k) chunks
  kEncode,           ///< window one-hot/sparse encoding
  kForward,          ///< LSTM + head forward pass
  kRankTopK,         ///< top-k ranking over the logits
  kWireSerialize,    ///< router-side frame encode + decode
  kRouterFanout,     ///< router fan-out: socket round trip to a backend
  kFailoverRetry,    ///< a retry round after a backend failure
  kHedge,            ///< a hedged duplicate read fired at a second backend
};
inline constexpr std::size_t kStageCount = 10;

/// Human name ("forward") and metric name ("stage_forward_ms") for a stage.
[[nodiscard]] const char* to_string(Stage stage) noexcept;
[[nodiscard]] const char* stage_metric_name(Stage stage) noexcept;

/// Monotonic nanoseconds (steady_clock); comparable within a process only.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Wall-clock milliseconds since the Unix epoch (system_clock); comparable
/// ACROSS processes — this is the timestamp events and time-series points
/// carry so a fleet-merged journal interleaves correctly.
[[nodiscard]] std::uint64_t unix_now_ms() noexcept;

/// Process-unique non-zero trace id: splitmix64 over a pid/time-seeded
/// counter, low bit forced so 0 never escapes.
[[nodiscard]] std::uint64_t new_trace_id() noexcept;

/// One timed stage. start_ns is process-local (see now_ns); duration is
/// what cross-process consumers aggregate.
struct Span {
  Stage stage{};
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;

  [[nodiscard]] double duration_ms() const noexcept {
    return static_cast<double>(duration_ns) / 1e6;
  }
};

/// A finished (or in-flight) trace as stored in the journal. `source` is
/// empty locally; mergers (Router::fleet_metrics, statsz) tag it with the
/// process the record came from.
struct TraceRecord {
  std::uint64_t trace_id = 0;
  double total_ms = 0.0;
  std::string source;
  std::vector<Span> spans;
};

struct TraceCollectorConfig {
  std::size_t max_open_traces = 256;  ///< FIFO-evicted working set
  std::size_t journal_capacity = 16;  ///< worst-N kept after finish()
  std::size_t max_spans_per_trace = 64;
};

/// Bounded sink for spans + the slow-request journal.
///
/// record() may be called several times for one trace (scheduler records
/// per-chunk, router per-round); finish() seals the trace with its
/// end-to-end latency and promotes it into the journal iff it is among the
/// N slowest seen. All methods are thread-safe; when disabled, record() and
/// finish() are a single relaxed atomic load.
class TraceCollector {
 public:
  explicit TraceCollector(TraceCollectorConfig config = {});

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Append `spans` to the open trace `trace_id` (creating it if new).
  /// trace_id 0 and empty spans are ignored.
  void record(std::uint64_t trace_id, std::span<const Span> spans);

  /// Seal `trace_id` with its end-to-end latency; keeps the record in the
  /// open map (later record() calls from the other side of a fan-out may
  /// still arrive) but snapshots it into the worst-N journal.
  void finish(std::uint64_t trace_id, double total_ms);

  /// Worst-N finished traces, slowest first.
  [[nodiscard]] std::vector<TraceRecord> journal() const;

  void clear();

 private:
  TraceRecord& open_slot(std::uint64_t trace_id) PELICAN_REQUIRES(mutex_);

  TraceCollectorConfig config_;
  std::atomic<bool> enabled_{true};
  mutable Mutex mutex_;
  std::unordered_map<std::uint64_t, TraceRecord> open_
      PELICAN_GUARDED_BY(mutex_);
  /// FIFO eviction order of open_.
  std::deque<std::uint64_t> open_order_ PELICAN_GUARDED_BY(mutex_);
  std::vector<TraceRecord> journal_ PELICAN_GUARDED_BY(mutex_);
};

}  // namespace pelican::obs
