#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

#include <unistd.h>

namespace pelican::obs {

const char* to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kAdmission: return "admission";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kBatchAssembly: return "batch_assembly";
    case Stage::kEncode: return "encode";
    case Stage::kForward: return "forward";
    case Stage::kRankTopK: return "rank_topk";
    case Stage::kWireSerialize: return "wire_serialize";
    case Stage::kRouterFanout: return "router_fanout";
    case Stage::kFailoverRetry: return "failover_retry";
    case Stage::kHedge: return "hedge";
  }
  return "unknown";
}

const char* stage_metric_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::kAdmission: return "stage_admission_ms";
    case Stage::kQueueWait: return "stage_queue_wait_ms";
    case Stage::kBatchAssembly: return "stage_batch_assembly_ms";
    case Stage::kEncode: return "stage_encode_ms";
    case Stage::kForward: return "stage_forward_ms";
    case Stage::kRankTopK: return "stage_rank_topk_ms";
    case Stage::kWireSerialize: return "stage_wire_serialize_ms";
    case Stage::kRouterFanout: return "stage_router_fanout_ms";
    case Stage::kFailoverRetry: return "stage_failover_retry_ms";
    case Stage::kHedge: return "stage_hedge_ms";
  }
  return "stage_unknown_ms";
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t unix_now_ms() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::uint64_t new_trace_id() noexcept {
  // splitmix64 over a seeded counter: well-mixed, trivially cheap, and
  // collision-safe across processes because the seed folds in the pid.
  static std::atomic<std::uint64_t> counter{
      (static_cast<std::uint64_t>(::getpid()) << 32) ^ now_ns()};
  std::uint64_t z = counter.fetch_add(0x9e3779b97f4a7c15ULL,
                                      std::memory_order_relaxed) +
                    0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return (z ^ (z >> 31)) | 1ULL;  // never 0
}

TraceCollector::TraceCollector(TraceCollectorConfig config)
    : config_(config) {}

TraceRecord& TraceCollector::open_slot(std::uint64_t trace_id) {
  auto [it, inserted] = open_.try_emplace(trace_id);
  if (inserted) {
    it->second.trace_id = trace_id;
    open_order_.push_back(trace_id);
    while (open_.size() > config_.max_open_traces && !open_order_.empty()) {
      open_.erase(open_order_.front());
      open_order_.pop_front();
    }
  }
  return open_.at(trace_id);
}

void TraceCollector::record(std::uint64_t trace_id,
                            std::span<const Span> spans) {
  if (!enabled() || trace_id == 0 || spans.empty()) return;
  const MutexLock lock(mutex_);
  TraceRecord& rec = open_slot(trace_id);
  const std::size_t room =
      config_.max_spans_per_trace -
      std::min(rec.spans.size(), config_.max_spans_per_trace);
  const std::size_t n = std::min(room, spans.size());
  rec.spans.insert(rec.spans.end(), spans.begin(), spans.begin() + n);
}

void TraceCollector::finish(std::uint64_t trace_id, double total_ms) {
  if (!enabled() || trace_id == 0) return;
  const MutexLock lock(mutex_);
  TraceRecord& rec = open_slot(trace_id);
  rec.total_ms = std::max(rec.total_ms, total_ms);

  auto it = std::find_if(journal_.begin(), journal_.end(),
                         [&](const TraceRecord& j) {
                           return j.trace_id == trace_id;
                         });
  if (it != journal_.end()) {
    *it = rec;  // refresh an already-journaled trace with the newer spans
    return;
  }
  if (journal_.size() < config_.journal_capacity) {
    journal_.push_back(rec);
    return;
  }
  auto slot = std::min_element(journal_.begin(), journal_.end(),
                               [](const TraceRecord& a, const TraceRecord& b) {
                                 return a.total_ms < b.total_ms;
                               });
  if (slot != journal_.end() && slot->total_ms < rec.total_ms) *slot = rec;
}

std::vector<TraceRecord> TraceCollector::journal() const {
  const MutexLock lock(mutex_);
  std::vector<TraceRecord> out = journal_;
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.total_ms > b.total_ms;
            });
  return out;
}

void TraceCollector::clear() {
  const MutexLock lock(mutex_);
  open_.clear();
  open_order_.clear();
  journal_.clear();
}

}  // namespace pelican::obs
