#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pelican::obs {
namespace {

// CAS loops because std::atomic<double>::fetch_add is C++20
// floating-point-atomics territory that not every libstdc++ ships lock-free;
// the contended case here is a handful of serving threads, so the loop
// converges immediately in practice.
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < value && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

constexpr double lowest_boundary() noexcept {
  return 1.0 / static_cast<double>(1 << -Histogram::kMinExp);
}

}  // namespace

std::size_t Histogram::bucket_index(double value) noexcept {
  const double lo = lowest_boundary();
  if (!(value >= lo)) return 0;  // underflow; also catches NaN and negatives
  // log2(value / lo) * kBucketsPerOctave, floored, is the offset past the
  // underflow bucket. Guard against float edge cases landing exactly on a
  // boundary from below by re-deriving against the actual boundary.
  const double octaves = std::log2(value / lo);
  auto idx = static_cast<std::ptrdiff_t>(octaves * kBucketsPerOctave);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   (kMaxExp - kMinExp) * kBucketsPerOctave);
  std::size_t bucket = static_cast<std::size_t>(idx) + 1;
  if (bucket < kNumBuckets - 1 && value >= bucket_upper(bucket)) ++bucket;
  if (bucket > 1 && value < bucket_lower(bucket)) --bucket;
  return bucket;
}

double Histogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  return lowest_boundary() *
         std::exp2(static_cast<double>(i - 1) / kBucketsPerOctave);
}

double Histogram::bucket_upper(std::size_t i) noexcept {
  if (i + 1 >= kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return lowest_boundary() *
         std::exp2(static_cast<double>(i) / kBucketsPerOctave);
}

void Histogram::observe(double value) noexcept {
  if (!std::isfinite(value) || value < 0.0) {
    // bucket_index would already route these to the underflow bucket, but
    // the sum/max updates below would not survive them (one NaN makes sum_
    // NaN forever). Clamp to an explicit 0.0 observation and tally it.
    invalid_.fetch_add(1, std::memory_order_relaxed);
    value = 0.0;
  }
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_max(max_, value);
}

double Histogram::percentile_of(const HistogramState& state, double q) {
  if (state.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  // Target the same rank convention as stats::percentile (inclusive linear
  // interpolation over sorted samples): rank in [0, count-1].
  const double rank = q / 100.0 * static_cast<double>(state.count - 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < state.buckets.size(); ++i) {
    const std::uint64_t in_bucket = state.buckets[i];
    if (in_bucket == 0) continue;
    if (rank < static_cast<double>(seen + in_bucket)) {
      // Interpolate within the bucket, treating its mass as uniform.
      const double frac =
          (rank - static_cast<double>(seen) + 0.5) /
          static_cast<double>(in_bucket);
      double lo = bucket_lower(i);
      double hi = bucket_upper(i);
      if (std::isinf(hi)) return state.max;  // overflow: exact tracked max
      double value = lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
      return std::min(value, state.max);
    }
    seen += in_bucket;
  }
  return state.max;
}

double Histogram::percentile(double q) const { return percentile_of(state(), q); }

HistogramState Histogram::state() const {
  HistogramState out;
  out.count = count_.load(std::memory_order_relaxed);
  if (out.count == 0) return out;
  out.sum = sum_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  out.invalid = invalid_.load(std::memory_order_relaxed);
  out.buckets.resize(kNumBuckets);
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void HistogramState::merge(const HistogramState& other) {
  if (other.count == 0) return;
  if (!other.buckets.empty() &&
      other.buckets.size() != Histogram::kNumBuckets) {
    throw std::invalid_argument("HistogramState::merge: bucket layout mismatch");
  }
  if (buckets.empty()) buckets.resize(Histogram::kNumBuckets);
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  invalid += other.invalid;
}

void Histogram::merge(const HistogramState& other) noexcept {
  if (other.count == 0) return;
  const std::size_t n = std::min(other.buckets.size(), kNumBuckets);
  for (std::size_t i = 0; i < n; ++i) {
    if (other.buckets[i] != 0) {
      buckets_[i].fetch_add(other.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  invalid_.fetch_add(other.invalid, std::memory_order_relaxed);
  atomic_add(sum_, other.sum);
  atomic_max(max_, other.max);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  invalid_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

void merge_state(RegistryState& into, const RegistryState& from) {
  for (const auto& [name, value] : from.counters) {
    auto it = std::find_if(into.counters.begin(), into.counters.end(),
                           [&](const auto& c) { return c.first == name; });
    if (it == into.counters.end()) {
      into.counters.emplace_back(name, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [name, state] : from.histograms) {
    auto it = std::find_if(into.histograms.begin(), into.histograms.end(),
                           [&](const auto& h) { return h.first == name; });
    if (it == into.histograms.end()) {
      into.histograms.emplace_back(name, state);
    } else {
      it->second.merge(state);
    }
  }
  std::sort(into.counters.begin(), into.counters.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(into.histograms.begin(), into.histograms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

Counter& Registry::counter(const std::string& name) {
  const MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistryState Registry::state() const {
  const MutexLock lock(mutex_);
  RegistryState out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->state());
  }
  return out;  // std::map iteration order is already name-sorted
}

void Registry::merge(const RegistryState& other) {
  for (const auto& [name, value] : other.counters) counter(name).merge(value);
  for (const auto& [name, state] : other.histograms) {
    histogram(name).merge(state);
  }
}

void Registry::reset() {
  const MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace pelican::obs
