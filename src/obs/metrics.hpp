// Low-overhead metrics primitives: named counters and fixed-boundary
// log-bucket histograms with lock-free hot paths and EXACT merge.
//
// Why not keep raw samples? ServerStats used to hold every per-request
// latency in a vector, which made fleet-merged percentiles exact but memory
// unbounded under open-ended traffic. A histogram over FIXED bucket
// boundaries is the standard fix: bounded memory (one u64 per bucket), a
// wait-free observe() (two relaxed atomic adds), and — because every
// instance shares the same boundaries — merging two histograms is an exact
// bucket-wise sum. Fleet aggregation therefore loses nothing: the merged
// histogram is byte-for-byte the histogram a single engine would have
// recorded had it seen all the traffic.
//
// What IS approximate is the percentile read out of a histogram. Buckets
// grow geometrically, kBucketsPerOctave per power of two, so a value in
// [2^-10, 2^18) ms lands in a bucket whose upper/lower ratio is
// 2^(1/kBucketsPerOctave) ~= 1.0905. percentile() interpolates inside the
// bucket, so the estimate is off from the true sample quantile by at most
// one bucket width: RELATIVE error <= 2^(1/8) - 1 ~= 9.05% for in-range
// values (values outside the range clamp into the underflow/overflow
// buckets; the overflow estimate clamps to the exact tracked max).
// tests/obs/metrics_test.cpp asserts this bound against the exact-sample
// baseline.
//
// Thread model: observe()/add() are safe from any thread and never take a
// lock. state() is a consistent-enough snapshot for monitoring (counts may
// trail sums by in-flight observes, never by more); merge() folds a
// snapshot in with the same guarantees.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace pelican::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void merge(std::uint64_t other) noexcept { add(other); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Transportable raw state of a Histogram. `buckets` is either empty
/// (nothing recorded) or exactly Histogram::kNumBuckets long; boundaries are
/// compile-time shared, which is what makes merge exact.
struct HistogramState {
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  /// Observations rejected as NaN/inf/negative and clamped to bucket 0
  /// (still counted in `count`); exposed as
  /// `histogram_invalid_observations_total` so poisoned instrumentation is
  /// visible instead of silently corrupting sums.
  std::uint64_t invalid = 0;

  /// Exact bucket-wise fold of `other` into this state.
  void merge(const HistogramState& other);
};

/// Fixed-boundary log-bucket histogram (header comment for the contract).
/// Units are whatever the caller records — the serving tier records
/// milliseconds — and the bucket range [2^kMinExp, 2^kMaxExp) is chosen to
/// cover ~1us to ~4.4 minutes in ms.
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 8;
  static constexpr int kMinExp = -10;  ///< lowest boundary: 2^-10 (~1e-3)
  static constexpr int kMaxExp = 18;   ///< highest boundary: 2^18 (~2.6e5)
  /// Index 0 is the underflow bucket (< 2^kMinExp, including zeros and
  /// negatives); the last index is the overflow bucket (>= 2^kMaxExp).
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>((kMaxExp - kMinExp) * kBucketsPerOctave) + 2;
  /// Documented worst-case relative quantile error for in-range values.
  static constexpr double kQuantileRelativeError = 0.0906;  // 2^(1/8) - 1

  /// Bucket index of `value` (total function; never throws).
  [[nodiscard]] static std::size_t bucket_index(double value) noexcept;
  /// Lower/upper boundary of bucket `i` (underflow lower is 0; overflow
  /// upper is +inf).
  [[nodiscard]] static double bucket_lower(std::size_t i) noexcept;
  [[nodiscard]] static double bucket_upper(std::size_t i) noexcept;

  /// Wait-free record of one observation. NaN, infinite, and negative
  /// values are invalid: they clamp to 0 (the underflow bucket) so counts
  /// stay consistent, never touch the tracked max, and are tallied in
  /// invalid() — one NaN must not poison the running sum forever.
  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t invalid() const noexcept {
    return invalid_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  /// Estimated q-th percentile (q in [0, 100]) — see the header comment for
  /// the error bound. Returns 0 when nothing has been recorded.
  [[nodiscard]] double percentile(double q) const;
  /// Same estimator over a transportable state (used on merged fleet
  /// states; shares the exact code path with the live read).
  [[nodiscard]] static double percentile_of(const HistogramState& state,
                                            double q);

  [[nodiscard]] HistogramState state() const;
  /// Exact bucket-wise fold of a snapshot into the live histogram.
  void merge(const HistogramState& other) noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Transportable snapshot of a Registry: everything named, sorted by name
/// so fleet merges and expositions are deterministic.
struct RegistryState {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramState>> histograms;
};

/// Exact fold of `from` into `into`: counters add, histograms add
/// bucket-wise, names union. The registry analogue of ServerStats::merge.
void merge_state(RegistryState& into, const RegistryState& from);

/// Named metrics, registration under a lock, recording lock-free.
///
/// counter()/histogram() return references that stay valid for the
/// registry's lifetime — hot paths resolve a name ONCE (at construction)
/// and hold the reference; per-record cost is then the atomic ops above.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] RegistryState state() const;
  /// Exact fold of a snapshot (e.g. another process's registry) into this
  /// one; metrics unknown here are created.
  void merge(const RegistryState& other);
  void reset();

 private:
  mutable Mutex mutex_;
  /// The maps are guarded; the Counter/Histogram objects they point at are
  /// NOT (their hot paths are lock-free atomics) — unique_ptr keeps the
  /// returned references stable across rehashes.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PELICAN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PELICAN_GUARDED_BY(mutex_);
};

}  // namespace pelican::obs
