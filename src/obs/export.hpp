// Rendering of registry snapshots and trace journals for pelican_statsz
// and debug dumps. Two formats:
//
//   - Prometheus-style text: counters as `pelican_<name>{...} <v>`,
//     histograms summary-style (`_count`, `_sum`, `_max`, and p50/p99
//     quantile gauges estimated from the buckets). Non-empty buckets are
//     emitted as cumulative `_bucket{le="..."}` samples so external systems
//     can re-derive any quantile with the same error bound.
//   - JSON: structured snapshot with precomputed p50/p99 per histogram and
//     full span breakdowns per trace; the shape tools/bench_diff.py reads.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace pelican::obs {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Prometheus label-VALUE escaping per the text exposition format:
/// backslash, double-quote, and newline become \\, \", \n. Every label
/// value interpolated into a rendered label body must pass through this
/// (addresses can hold backslashes on exotic filesystems; nothing stops a
/// store path from holding a quote).
[[nodiscard]] std::string prometheus_escape_label_value(
    const std::string& value);

/// Prometheus text for one registry snapshot. `labels` is the rendered
/// label body without braces (e.g. `engine="unix:/tmp/e0.sock"`), empty for
/// no labels.
[[nodiscard]] std::string prometheus_text(const RegistryState& state,
                                          const std::string& labels);

/// `{"counters":{...},"histograms":{name:{count,sum,max,p50,p99}}}`.
[[nodiscard]] std::string registry_json(const RegistryState& state);

/// `[{"trace_id":...,"source":...,"total_ms":...,"spans":[...]}, ...]`.
[[nodiscard]] std::string traces_json(std::span<const TraceRecord> traces);

/// `[{"seq":...,"unix_ms":...,"type":"quarantine","trace_id":...,
///    "subject":...,"detail":...,"source":...}, ...]`, oldest first.
[[nodiscard]] std::string events_json(std::span<const Event> events);

/// `{"name":[{"t":unix_ms,"v":value},...],...}` — the /timeseries payload.
[[nodiscard]] std::string timeseries_json(
    const std::vector<std::pair<std::string, std::vector<SeriesPoint>>>&
        series);

/// `[{"name":...,"series":...,"target":...,"breached":...,"worst_burn":...,
///    "windows":[{"window_s":...,"burn":...,"samples":...},...]}, ...]`.
[[nodiscard]] std::string slos_json(std::span<const SloStatus> statuses);

}  // namespace pelican::obs
