// Rendering of registry snapshots and trace journals for pelican_statsz
// and debug dumps. Two formats:
//
//   - Prometheus-style text: counters as `pelican_<name>{...} <v>`,
//     histograms summary-style (`_count`, `_sum`, `_max`, and p50/p99
//     quantile gauges estimated from the buckets). Non-empty buckets are
//     emitted as cumulative `_bucket{le="..."}` samples so external systems
//     can re-derive any quantile with the same error bound.
//   - JSON: structured snapshot with precomputed p50/p99 per histogram and
//     full span breakdowns per trace; the shape tools/bench_diff.py reads.
#pragma once

#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pelican::obs {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Prometheus text for one registry snapshot. `labels` is the rendered
/// label body without braces (e.g. `engine="unix:/tmp/e0.sock"`), empty for
/// no labels.
[[nodiscard]] std::string prometheus_text(const RegistryState& state,
                                          const std::string& labels);

/// `{"counters":{...},"histograms":{name:{count,sum,max,p50,p99}}}`.
[[nodiscard]] std::string registry_json(const RegistryState& state);

/// `[{"trace_id":...,"source":...,"total_ms":...,"spans":[...]}, ...]`.
[[nodiscard]] std::string traces_json(std::span<const TraceRecord> traces);

}  // namespace pelican::obs
