// Bounded structured event journal — the discrete half of the flight
// recorder (the continuous half is obs/timeseries).
//
// Counters answer "how many times has X happened"; the journal answers
// "WHEN did X happen, to WHOM, and which request saw it". Every event
// carries a wall-clock timestamp (obs::unix_now_ms, comparable across
// processes), an optional trace id linking it to the PR 7 span journal,
// a subject (the backend address, user id, or objective the event is
// about) and a free-text detail. Emission sites live next to the counters
// they narrate: the router emits quarantine/unquarantine, hedge-win,
// failover, publish, and deadline-shed-burst events at exactly the lines
// that already bump `router_*_total`; the engine scheduler does the same
// for its shed bursts.
//
// Bounded by design: the journal is a fixed-capacity ring — emit() is one
// short critical section, eviction is O(1), and memory is independent of
// uptime. Evictions are counted (`dropped()`) so a scrape can tell a quiet
// fleet from a wrapped journal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"

namespace pelican::obs {

/// Event taxonomy. Kept deliberately small: each value is a *fleet state
/// transition or tail-latency save*, not a log level. Values are
/// wire-stable (serialized as u8 in the kMetrics reply) — append only.
enum class EventType : std::uint8_t {
  kQuarantine = 0,   ///< backend stashed after timeout strikes / probe fail
  kUnquarantine,     ///< recovery prober folded a backend back in
  kHedgeWin,         ///< a hedged duplicate read beat the primary
  kPublish,          ///< a model version went live (stall-free swap)
  kFailover,         ///< backend dropped on transport failure (not stashed)
  kDeadlineShed,     ///< a burst of requests shed past their deadlines
  kSloBreach,        ///< an SLO's multi-window burn rate crossed threshold
  kSloRecovered,     ///< a breached SLO's burn rate dropped back under
};
inline constexpr std::uint8_t kEventTypeCount = 8;

/// Human name for an event type ("quarantine", "hedge_win", ...).
[[nodiscard]] const char* to_string(EventType type) noexcept;

/// One journal entry. `seq` is per-journal and strictly increasing, so a
/// poller can resume from the last seq it saw; `source` is empty locally
/// and tagged by mergers (Router::fleet_metrics, statsz) like TraceRecord.
struct Event {
  std::uint64_t seq = 0;
  std::uint64_t unix_ms = 0;
  EventType type = EventType::kQuarantine;
  std::uint64_t trace_id = 0;  ///< 0 = not tied to a specific request
  std::string subject;
  std::string detail;
  std::string source;
};

/// Fixed-capacity, thread-safe event ring. All methods are safe from any
/// thread; emit() is a short lock (event sites are control-plane or
/// burst-aggregated, never per-request hot path).
class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Record one event, stamped with unix_now_ms. Evicts the oldest entry
  /// when full.
  void emit(EventType type, std::string subject, std::string detail = "",
            std::uint64_t trace_id = 0);

  /// All retained events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const;
  /// Retained events with seq > `after_seq`, oldest first.
  [[nodiscard]] std::vector<Event> since(std::uint64_t after_seq) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::deque<Event> ring_ PELICAN_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ PELICAN_GUARDED_BY(mutex_) = 1;
  std::uint64_t dropped_ PELICAN_GUARDED_BY(mutex_) = 0;
};

/// Tag `events` with `source` (only where empty) and append to `into`.
/// Mergers sort the combined journal by (unix_ms, seq) afterwards via
/// sort_events so a fleet view interleaves correctly.
void merge_events(std::vector<Event>& into, std::vector<Event> events,
                  const std::string& source);

/// Order a merged journal by wall-clock time, then per-journal seq.
void sort_events(std::vector<Event>& events);

}  // namespace pelican::obs
