// The continuous half of the flight recorder: fixed-capacity ring-buffer
// time series fed by a background sampler.
//
// PR 7's `Router::fleet_metrics()` is a *snapshot* — exact, cheap, but
// memoryless. This module adds the time dimension: a `FleetSampler` polls
// any RegistryState source (the router's fleet merge, or a local Registry)
// on a fixed interval and stores DERIVED series, not raw states:
//
//   - per counter: `<name>_rate` — exact delta / elapsed seconds. Exact
//     because counters are monotonic u64s; the subtraction of two snapshots
//     is the true event count of the interval.
//   - per histogram: `<name>_rate`, `<name>_p50`, `<name>_p99` — computed
//     from the INTERVAL histogram obtained by bucket-wise subtraction of
//     consecutive snapshots (`delta_state`). This is exact for the same
//     reason fleet merges are exact (PR 7): every histogram shares
//     compile-time bucket boundaries, so subtraction is the precise
//     per-interval distribution, and the quantile estimate carries only
//     the usual <= 9.06% bucket-width error — over the interval's own
//     samples, not a lifetime average.
//
// Memory is bounded by construction: each series is a ring of
// `capacity` points; a 600-point ring at 1 Hz is ten minutes of history
// in ~10 KB per series. The sampler thread is the only writer; readers
// (HTTP exposition, SLO evaluation, tests) take snapshots under the same
// annotated mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "obs/metrics.hpp"

namespace pelican::obs {

/// One sample: wall-clock stamp (comparable across processes) + value.
struct SeriesPoint {
  std::uint64_t unix_ms = 0;
  double value = 0.0;
};

/// Exact interval state: `newer - older`, counter-wise and bucket-wise.
///
/// Counters/buckets that went backwards (a registry reset between samples)
/// clamp to 0 rather than underflowing. A histogram's interval `max` is
/// NOT recoverable from two cumulative snapshots — the lifetime max is
/// carried instead, a documented upper bound; interval quantiles come from
/// the subtracted buckets and are unaffected. Names present only in
/// `newer` pass through whole (first sighting = whole history is the
/// interval); names only in `older` are dropped.
[[nodiscard]] RegistryState delta_state(const RegistryState& newer,
                                        const RegistryState& older);

/// Named fixed-capacity rings of SeriesPoints. Thread-safe; every series
/// shares one capacity, set at construction.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity = 600)
      : capacity_(capacity) {}

  /// Append a point to `name`'s ring (creating the series), evicting the
  /// oldest point when full.
  void push(const std::string& name, std::uint64_t unix_ms, double value);

  /// All points of one series, oldest first (empty if unknown).
  [[nodiscard]] std::vector<SeriesPoint> series(const std::string& name) const;
  /// Points of one series with unix_ms >= since, oldest first.
  [[nodiscard]] std::vector<SeriesPoint> series_since(
      const std::string& name, std::uint64_t since_unix_ms) const;
  /// Sorted names of all series.
  [[nodiscard]] std::vector<std::string> names() const;
  /// Every series, name-sorted — the /timeseries exposition payload.
  [[nodiscard]] std::vector<std::pair<std::string, std::vector<SeriesPoint>>>
  snapshot() const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  void clear();

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  std::map<std::string, std::deque<SeriesPoint>> series_
      PELICAN_GUARDED_BY(mutex_);
};

struct FleetSamplerConfig {
  double interval_ms = 1000.0;    ///< background poll period
  std::size_t capacity = 600;     ///< ring capacity of every series
  /// Histogram quantiles materialized per interval, as (suffix, q) pairs.
  std::vector<std::pair<std::string, double>> quantiles = {{"_p50", 50.0},
                                                           {"_p99", 99.0}};
};

/// Background poller: snapshot -> delta -> rates/quantiles -> store.
///
/// The source is a std::function so obs stays below router in the layer
/// lattice — `router::FlightRecorder` binds `Router::fleet_metrics()` in,
/// tests and statsz bind a local Registry or a scrape loop. Source
/// exceptions are counted (`errors()`) and the tick skipped; the thread
/// never dies with the fleet.
class FleetSampler {
 public:
  using Source = std::function<RegistryState()>;

  explicit FleetSampler(Source source, FleetSamplerConfig config = {});
  ~FleetSampler();

  FleetSampler(const FleetSampler&) = delete;
  FleetSampler& operator=(const FleetSampler&) = delete;

  /// Hook run after every successful tick (SLO evaluation lives here).
  /// Set before start(); called on the sampler thread, off the store lock.
  void set_on_sample(std::function<void()> hook);

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

  /// One synchronous tick — poll, delta, store. Usable without start()
  /// (tests, `statsz --watch`) and safe alongside the background thread.
  void sample_now();

  [[nodiscard]] TimeSeriesStore& store() noexcept { return store_; }
  [[nodiscard]] const TimeSeriesStore& store() const noexcept {
    return store_;
  }

  /// Successful ticks / failed source polls.
  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t errors() const noexcept {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void run_loop();
  /// Returns false if the source threw (tick skipped).
  bool tick();

  const Source source_;
  const FleetSamplerConfig config_;
  TimeSeriesStore store_;
  std::function<void()> on_sample_;

  /// Serializes ticks (background thread vs sample_now callers) and guards
  /// the previous-snapshot state the delta is computed against.
  Mutex sample_mutex_;
  bool has_prev_ PELICAN_GUARDED_BY(sample_mutex_) = false;
  RegistryState prev_ PELICAN_GUARDED_BY(sample_mutex_);
  std::chrono::steady_clock::time_point prev_at_
      PELICAN_GUARDED_BY(sample_mutex_);

  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<std::uint64_t> errors_{0};

  Mutex lifecycle_mutex_;
  std::condition_variable wake_cv_;
  bool stopping_ PELICAN_GUARDED_BY(lifecycle_mutex_) = false;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace pelican::obs
