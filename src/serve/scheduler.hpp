// BatchScheduler: turns a stream of single-window prediction requests into
// batched, parallel forwards over the DeploymentRegistry.
//
// Requests enter a bounded queue (submit) or arrive as a ready-made span
// (serve). The scheduler coalesces requests that target the same deployment
// into one multi-row predict_top_k_batch call — one LSTM forward serves B
// queries — under a max-batch / max-delay policy: a drain fires as soon as a
// full batch is queued, or when the oldest request has waited max_delay,
// whichever comes first. Drains execute across ThreadPool::global() workers,
// one coalesced batch per task, so distinct users' batches run on distinct
// cores while per-deployment serve locks keep each model single-threaded.
//
// Responses are deterministic: batching never reorders or changes results
// (predict_top_k_batch is bit-identical per row to single queries), so
// service quality is independent of load, batch size, and shard count.
// Coalesced batches also ride the kernel fast paths for free:
// predict_top_k_batch encodes the batch as nn::SparseRows, so each drain's
// forward is nnz row gathers plus the packed GEMM recurrence (README
// "Performance architecture") — with the same bits as the dense path.
//
// Admission control. The submit queue is bounded (SchedulerConfig::
// max_queue); what happens at the bound is the QueuePolicy:
//
//   kBlock      — submit() blocks until the drain frees space. Applies
//       backpressure to the caller: nothing is ever dropped, total order is
//       preserved, but a slow engine propagates its slowness upstream and a
//       caller on a latency budget may miss it while parked. The right
//       default for closed-loop clients (benches, batch jobs) that would
//       only re-submit anyway.
//   kReject     — submit() answers the NEW request immediately with
//       ok = false / rejected = true. Bounds both queue memory and caller
//       wait time, and under sustained overload sheds exactly the overload
//       fraction — but fresh requests (most likely still wanted) pay, while
//       stale queued ones keep their seats. Right for open-loop traffic
//       where the caller has a fallback (e.g. serve the general model).
//   kShedOldest — the OLDEST queued request is answered rejected and the
//       new one takes its seat. Freshness-optimal: under overload the queue
//       holds the newest max_queue requests, matching mobile serving where
//       a stale prediction is worthless once the user has moved on — at the
//       cost of wasting the queue time already invested in the shed victim.
//
// Rejected-by-admission responses have ok = false and rejected = true
// (requests for unknown users keep rejected = false: they were admitted,
// there is just nothing to serve them with). ServerStats counts shed
// requests and tracks the peak queue depth so overload is observable.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "serve/registry.hpp"
#include "serve/stats.hpp"

namespace pelican::serve {

struct PredictRequest {
  std::uint32_t user_id = 0;
  mobility::Window window;
  std::size_t k = 3;  ///< how many next-location candidates to return
  /// Trace id this request's stage spans are recorded under. 0 (the
  /// default) means untraced — the scheduler may then assign one itself via
  /// sampling (SchedulerConfig::trace_sample_every). A router in front of
  /// the engine stamps its own id here so one trace spans both processes.
  std::uint64_t trace_id = 0;
  /// Remaining latency budget in milliseconds, measured from submit()/
  /// serve() entry. 0 (the default) means no deadline. A request whose
  /// budget has expired by the time a drain picks it up is SHED (ok =
  /// false, rejected = true) instead of forwarded — nobody reads an answer
  /// that arrives after its deadline. The Router decrements the budget by
  /// its own elapsed time before putting it on the wire, so the engine-side
  /// check composes with wire + queueing delay.
  double deadline_ms = 0.0;
};

struct PredictResponse {
  std::uint32_t user_id = 0;
  /// false when the user has no deployment, when the deployment rejected
  /// the batch (e.g. a window outside the model's encoding domain), or when
  /// admission control shed the request (then rejected is also true).
  bool ok = false;
  /// true iff admission control (QueuePolicy kReject / kShedOldest, or a
  /// shutdown race) refused the request before it reached a model.
  bool rejected = false;
  /// store::ModelKey version of the model that served this response
  /// (DeployedModel::model_version; 0 = unversioned deployment). Lets
  /// clients observe live model updates mid-traffic.
  std::uint32_t model_version = 0;
  std::vector<std::uint16_t> locations;  ///< top-k, empty when !ok
  double latency_ms = 0.0;  ///< submission (or serve() entry) to response
};

/// Admission policy at the submit-queue bound — see the header comment for
/// the trade-offs.
enum class QueuePolicy : std::uint8_t { kBlock = 0, kReject, kShedOldest };

[[nodiscard]] constexpr const char* to_string(QueuePolicy policy) noexcept {
  switch (policy) {
    case QueuePolicy::kBlock: return "block";
    case QueuePolicy::kReject: return "reject";
    case QueuePolicy::kShedOldest: return "shed_oldest";
  }
  return "?";
}

struct SchedulerConfig {
  /// Most rows coalesced into one forward. 1 degenerates to single-query
  /// serving (useful as a baseline).
  std::size_t max_batch = 32;
  /// Longest a queued request may wait for co-batchable requests before a
  /// drain fires anyway (the latency side of the batching trade-off).
  std::chrono::microseconds max_delay{2000};
  /// Submit-queue bound; admission control engages at this depth.
  /// Must be > 0 — an unbounded queue turns overload into unbounded memory
  /// growth and unbounded tail latency, which is exactly what this config
  /// exists to prevent.
  std::size_t max_queue = 4096;
  QueuePolicy policy = QueuePolicy::kBlock;
  /// Locally-originated requests (trace_id == 0) get a sampled trace: every
  /// N-th request is assigned a fresh id and records full stage spans.
  /// 0 disables local sampling entirely. Requests arriving with a non-zero
  /// trace_id (router-stamped) are ALWAYS traced regardless of this knob —
  /// sampling upstream must not be silently re-sampled downstream.
  ///
  /// Stage histograms are recorded at the same granularity (traced requests
  /// only), so for local traffic they are a 1-in-N sample; routed traffic
  /// records every request. That is the deal behind the <= 2% tracing
  /// overhead bound on the batch-1 path (bench/serve_throughput).
  std::size_t trace_sample_every = 32;
};

class BatchScheduler {
 public:
  BatchScheduler(DeploymentRegistry& registry, SchedulerConfig config = {});

  /// Stops the drain thread after answering everything still queued.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one request; the future resolves once a drain has served it
  /// (or immediately, rejected, when admission control refuses it — see
  /// QueuePolicy). Never throws through the future: an unknown user yields
  /// ok = false.
  [[nodiscard]] std::future<PredictResponse> submit(PredictRequest request);

  /// Synchronous batch entry point: coalesces and serves `requests`
  /// immediately on the calling thread + pool workers, bypassing the queue
  /// (and therefore admission control — the caller already holds all the
  /// memory). Response i answers requests[i].
  [[nodiscard]] std::vector<PredictResponse> serve(
      std::span<const PredictRequest> requests);

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }

  /// Stage-latency histograms (one per obs::Stage this engine executes,
  /// named by obs::stage_metric_name) plus tracing counters.
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  /// Span sink + slow-request journal for this engine.
  [[nodiscard]] obs::TraceCollector& traces() noexcept { return traces_; }
  /// Structured event journal (deadline-shed bursts; the engine worker
  /// adds publishes). Ships to the router inside the kMetrics reply.
  [[nodiscard]] obs::EventJournal& events() noexcept { return events_; }

  /// Master switch for the per-request instrumentation (stage histograms,
  /// span recording, trace sampling). ServerStats recording is NOT gated —
  /// it predates obs and the benches depend on it unconditionally. The
  /// serve_throughput bench asserts the enabled-vs-disabled delta on the
  /// batch-1 path stays <= 2%.
  void set_instrumentation(bool on) noexcept {
    instrument_.store(on, std::memory_order_relaxed);
    traces_.set_enabled(on);
  }
  [[nodiscard]] bool instrumentation_enabled() const noexcept {
    return instrument_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    PredictRequest request;
    std::promise<PredictResponse> promise;
    Clock::time_point enqueued;
    std::uint64_t submit_ns = 0;    ///< obs::now_ns at submit/serve entry
    std::uint64_t admitted_ns = 0;  ///< obs::now_ns once past admission
  };

  void drain_loop();

  /// Groups items by (user id, k), chunks groups to max_batch, and runs the
  /// chunks across the thread pool. Fulfills every promise.
  void execute(std::vector<Pending> items);

  /// Answers one request shed by admission control (records stats).
  void answer_rejected(Pending pending);

  /// Assigns a sampled trace id to an untraced request when instrumentation
  /// is on and the sampling counter fires.
  void maybe_sample_trace(PredictRequest& request) noexcept;

  DeploymentRegistry& registry_;
  SchedulerConfig config_;
  ServerStats stats_;

  obs::Registry metrics_;
  obs::TraceCollector traces_;
  obs::EventJournal events_;
  std::atomic<bool> instrument_{true};
  std::atomic<std::uint64_t> sample_counter_{0};
  /// Stage histograms resolved once at construction so the hot path never
  /// touches the registry lock (obs::Registry reference stability).
  std::array<obs::Histogram*, obs::kStageCount> stage_hist_{};
  /// Requests shed because their deadline budget expired before a drain
  /// reached them (registered eagerly so it exports as 0, not absent).
  obs::Counter* deadline_shed_counter_ = nullptr;

  Mutex mutex_;
  std::condition_variable queue_cv_;  ///< drainer waits: work available
  std::condition_variable space_cv_;  ///< blocked submitters wait: space
  std::deque<Pending> queue_ PELICAN_GUARDED_BY(mutex_);
  bool stop_ PELICAN_GUARDED_BY(mutex_) = false;
  std::thread drainer_;
};

}  // namespace pelican::serve
