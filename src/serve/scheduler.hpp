// BatchScheduler: turns a stream of single-window prediction requests into
// batched, parallel forwards over the DeploymentRegistry.
//
// Requests enter a queue (submit) or arrive as a ready-made span (serve).
// The scheduler coalesces requests that target the same deployment into one
// multi-row predict_top_k_batch call — one LSTM forward serves B queries —
// under a max-batch / max-delay policy: a drain fires as soon as a full
// batch is queued, or when the oldest request has waited max_delay,
// whichever comes first. Drains execute across ThreadPool::global() workers,
// one coalesced batch per task, so distinct users' batches run on distinct
// cores while the registry's shard locks keep each model single-threaded.
//
// Responses are deterministic: batching never reorders or changes results
// (predict_top_k_batch is bit-identical per row to single queries), so
// service quality is independent of load, batch size, and shard count.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/stats.hpp"

namespace pelican::serve {

struct PredictRequest {
  std::uint32_t user_id = 0;
  mobility::Window window;
  std::size_t k = 3;  ///< how many next-location candidates to return
};

struct PredictResponse {
  std::uint32_t user_id = 0;
  /// false when the user has no deployment, or when the deployment rejected
  /// the batch (e.g. a window outside the model's encoding domain).
  bool ok = false;
  std::vector<std::uint16_t> locations;  ///< top-k, empty when !ok
  double latency_ms = 0.0;  ///< submission (or serve() entry) to response
};

struct SchedulerConfig {
  /// Most rows coalesced into one forward. 1 degenerates to single-query
  /// serving (useful as a baseline).
  std::size_t max_batch = 32;
  /// Longest a queued request may wait for co-batchable requests before a
  /// drain fires anyway (the latency side of the batching trade-off).
  std::chrono::microseconds max_delay{2000};
};

class BatchScheduler {
 public:
  BatchScheduler(DeploymentRegistry& registry, SchedulerConfig config = {});

  /// Stops the drain thread after answering everything still queued.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one request; the future resolves once a drain has served it.
  /// Never throws through the future: an unknown user yields ok = false.
  [[nodiscard]] std::future<PredictResponse> submit(PredictRequest request);

  /// Synchronous batch entry point: coalesces and serves `requests`
  /// immediately on the calling thread + pool workers, bypassing the queue.
  /// Response i answers requests[i].
  [[nodiscard]] std::vector<PredictResponse> serve(
      std::span<const PredictRequest> requests);

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    PredictRequest request;
    std::promise<PredictResponse> promise;
    Clock::time_point enqueued;
  };

  void drain_loop();

  /// Groups items by (user id, k), chunks groups to max_batch, and runs the
  /// chunks across the thread pool. Fulfills every promise.
  void execute(std::vector<Pending> items);

  DeploymentRegistry& registry_;
  SchedulerConfig config_;
  ServerStats stats_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::thread drainer_;
};

}  // namespace pelican::serve
