// BatchScheduler: turns a stream of single-window prediction requests into
// batched, parallel forwards over the DeploymentRegistry.
//
// Requests enter a bounded queue (submit) or arrive as a ready-made span
// (serve). The scheduler coalesces requests that target the same deployment
// into one multi-row predict_top_k_batch call — one LSTM forward serves B
// queries — under a max-batch / max-delay policy: a drain fires as soon as a
// full batch is queued, or when the oldest request has waited max_delay,
// whichever comes first. Drains execute across ThreadPool::global() workers,
// one coalesced batch per task, so distinct users' batches run on distinct
// cores while per-deployment serve locks keep each model single-threaded.
//
// Responses are deterministic: batching never reorders or changes results
// (predict_top_k_batch is bit-identical per row to single queries), so
// service quality is independent of load, batch size, and shard count.
// Coalesced batches also ride the kernel fast paths for free:
// predict_top_k_batch encodes the batch as nn::SparseRows, so each drain's
// forward is nnz row gathers plus the packed GEMM recurrence (README
// "Performance architecture") — with the same bits as the dense path.
//
// Admission control. The submit queue is bounded (SchedulerConfig::
// max_queue); what happens at the bound is the QueuePolicy:
//
//   kBlock      — submit() blocks until the drain frees space. Applies
//       backpressure to the caller: nothing is ever dropped, total order is
//       preserved, but a slow engine propagates its slowness upstream and a
//       caller on a latency budget may miss it while parked. The right
//       default for closed-loop clients (benches, batch jobs) that would
//       only re-submit anyway.
//   kReject     — submit() answers the NEW request immediately with
//       ok = false / rejected = true. Bounds both queue memory and caller
//       wait time, and under sustained overload sheds exactly the overload
//       fraction — but fresh requests (most likely still wanted) pay, while
//       stale queued ones keep their seats. Right for open-loop traffic
//       where the caller has a fallback (e.g. serve the general model).
//   kShedOldest — the OLDEST queued request is answered rejected and the
//       new one takes its seat. Freshness-optimal: under overload the queue
//       holds the newest max_queue requests, matching mobile serving where
//       a stale prediction is worthless once the user has moved on — at the
//       cost of wasting the queue time already invested in the shed victim.
//
// Rejected-by-admission responses have ok = false and rejected = true
// (requests for unknown users keep rejected = false: they were admitted,
// there is just nothing to serve them with). ServerStats counts shed
// requests and tracks the peak queue depth so overload is observable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "serve/registry.hpp"
#include "serve/stats.hpp"

namespace pelican::serve {

struct PredictRequest {
  std::uint32_t user_id = 0;
  mobility::Window window;
  std::size_t k = 3;  ///< how many next-location candidates to return
};

struct PredictResponse {
  std::uint32_t user_id = 0;
  /// false when the user has no deployment, when the deployment rejected
  /// the batch (e.g. a window outside the model's encoding domain), or when
  /// admission control shed the request (then rejected is also true).
  bool ok = false;
  /// true iff admission control (QueuePolicy kReject / kShedOldest, or a
  /// shutdown race) refused the request before it reached a model.
  bool rejected = false;
  /// store::ModelKey version of the model that served this response
  /// (DeployedModel::model_version; 0 = unversioned deployment). Lets
  /// clients observe live model updates mid-traffic.
  std::uint32_t model_version = 0;
  std::vector<std::uint16_t> locations;  ///< top-k, empty when !ok
  double latency_ms = 0.0;  ///< submission (or serve() entry) to response
};

/// Admission policy at the submit-queue bound — see the header comment for
/// the trade-offs.
enum class QueuePolicy : std::uint8_t { kBlock = 0, kReject, kShedOldest };

[[nodiscard]] constexpr const char* to_string(QueuePolicy policy) noexcept {
  switch (policy) {
    case QueuePolicy::kBlock: return "block";
    case QueuePolicy::kReject: return "reject";
    case QueuePolicy::kShedOldest: return "shed_oldest";
  }
  return "?";
}

struct SchedulerConfig {
  /// Most rows coalesced into one forward. 1 degenerates to single-query
  /// serving (useful as a baseline).
  std::size_t max_batch = 32;
  /// Longest a queued request may wait for co-batchable requests before a
  /// drain fires anyway (the latency side of the batching trade-off).
  std::chrono::microseconds max_delay{2000};
  /// Submit-queue bound; admission control engages at this depth.
  /// Must be > 0 — an unbounded queue turns overload into unbounded memory
  /// growth and unbounded tail latency, which is exactly what this config
  /// exists to prevent.
  std::size_t max_queue = 4096;
  QueuePolicy policy = QueuePolicy::kBlock;
};

class BatchScheduler {
 public:
  BatchScheduler(DeploymentRegistry& registry, SchedulerConfig config = {});

  /// Stops the drain thread after answering everything still queued.
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues one request; the future resolves once a drain has served it
  /// (or immediately, rejected, when admission control refuses it — see
  /// QueuePolicy). Never throws through the future: an unknown user yields
  /// ok = false.
  [[nodiscard]] std::future<PredictResponse> submit(PredictRequest request);

  /// Synchronous batch entry point: coalesces and serves `requests`
  /// immediately on the calling thread + pool workers, bypassing the queue
  /// (and therefore admission control — the caller already holds all the
  /// memory). Response i answers requests[i].
  [[nodiscard]] std::vector<PredictResponse> serve(
      std::span<const PredictRequest> requests);

  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ServerStats& stats() noexcept { return stats_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    PredictRequest request;
    std::promise<PredictResponse> promise;
    Clock::time_point enqueued;
  };

  void drain_loop();

  /// Groups items by (user id, k), chunks groups to max_batch, and runs the
  /// chunks across the thread pool. Fulfills every promise.
  void execute(std::vector<Pending> items);

  /// Answers one request shed by admission control (records stats).
  void answer_rejected(Pending pending);

  DeploymentRegistry& registry_;
  SchedulerConfig config_;
  ServerStats stats_;

  std::mutex mutex_;
  std::condition_variable queue_cv_;  ///< drainer waits: work available
  std::condition_variable space_cv_;  ///< blocked submitters wait: space
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::thread drainer_;
};

}  // namespace pelican::serve
