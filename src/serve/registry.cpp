#include "serve/registry.hpp"

#include <algorithm>

namespace pelican::serve {

DeploymentRegistry::DeploymentRegistry(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

std::size_t DeploymentRegistry::shard_of(
    std::uint32_t user_id) const noexcept {
  // Fibonacci hash so both sequential and strided user ids spread evenly.
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(user_id) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(mixed >> 32) % shards_.size();
}

DeploymentHandle DeploymentRegistry::deploy(std::uint32_t user_id,
                                            core::DeployedModel model) {
  auto deployed = std::make_shared<core::DeployedModel>(std::move(model));
  std::shared_ptr<DeploymentHandle::Slot> slot;
  {
    Shard& shard = shards_[shard_of(user_id)];
    const MutexLock lock(shard.mutex);
    auto& entry = shard.slots[user_id];
    if (entry == nullptr) {
      entry = std::make_shared<DeploymentHandle::Slot>();
      // The slot is not yet reachable by any other thread, but the model
      // field is guarded: install through the annotated lock (uncontended).
      const MutexLock ptr_lock(entry->ptr_mutex);
      entry->model = std::move(deployed);
      return DeploymentHandle(entry);
    }
    slot = entry;  // existing slot: install outside the shard lock
  }
  DeploymentHandle handle(std::move(slot));
  // Re-deploying an existing user: the per-user attack query budget is
  // cumulative across deployments (see DeployedModel::set_query_count), so
  // the slot's accumulated count is added to whatever the incoming
  // deployment already observed elsewhere (e.g. while hosted in the cloud
  // tier).
  deployed->set_query_count(deployed->query_count() +
                            handle.snapshot()->query_count());
  (void)handle.publish(std::move(deployed));
  return handle;
}

DeploymentHandle DeploymentRegistry::handle(std::uint32_t user_id) const {
  DeploymentHandle found = find_handle(user_id);
  if (!found) {
    throw std::out_of_range("DeploymentRegistry: user not deployed");
  }
  return found;
}

DeploymentHandle DeploymentRegistry::find_handle(
    std::uint32_t user_id) const {
  const Shard& shard = shards_[shard_of(user_id)];
  const MutexLock lock(shard.mutex);
  const auto it = shard.slots.find(user_id);
  if (it == shard.slots.end()) return {};
  return DeploymentHandle(it->second);
}

std::size_t DeploymentRegistry::adopt_hosted(core::CloudServer& cloud) {
  auto hosted = cloud.take_hosted();
  const std::size_t count = hosted.size();
  for (auto& [user_id, model] : hosted) {
    (void)deploy(user_id, std::move(model));
  }
  return count;
}

void DeploymentRegistry::attach_store(
    std::shared_ptr<const store::ModelStore> model_store, std::string scope) {
  if (model_store == nullptr) {
    throw std::invalid_argument(
        "DeploymentRegistry: attached store must be non-null");
  }
  const MutexLock lock(store_mutex_);
  store_ = std::move(model_store);
  store_scope_ = std::move(scope);
}

void DeploymentRegistry::publish(std::uint32_t user_id,
                                 std::uint32_t version) {
  std::shared_ptr<const store::ModelStore> model_store;
  std::string scope;
  {
    const MutexLock lock(store_mutex_);
    if (store_ == nullptr) {
      throw std::logic_error(
          "DeploymentRegistry::publish: no model store attached "
          "(call attach_store first)");
    }
    model_store = store_;
    scope = store_scope_;
  }

  // Shard lock held only for this lookup; the slot keeps the deployment
  // reachable without any registry lock from here on. The store get
  // (deserialize or clone) — the expensive step — also runs off every
  // serving lock, so serving proceeds throughout, including for this user.
  install_replacement(handle(user_id),
                      model_store->get({scope, user_id, version}), version);
}

void DeploymentRegistry::swap_model(std::uint32_t user_id,
                                    nn::SequenceClassifier model) {
  install_replacement(handle(user_id), std::move(model), /*version=*/0);
}

void DeploymentRegistry::install_replacement(
    const DeploymentHandle& slot_handle, nn::SequenceClassifier model,
    std::uint32_t version) {
  const std::shared_ptr<const core::DeployedModel> current =
      slot_handle.snapshot();
  auto next = std::make_shared<core::DeployedModel>(
      std::move(model), current->spec(), current->privacy(), current->site(),
      version);
  // The attack query budget is cumulative per user across model versions.
  // The count is snapshotted here; a forward in flight during the swap may
  // add its rows to the retiring model only — an undercount bounded by one
  // batch, on the conservative side for privacy auditing.
  next->set_query_count(current->query_count());
  (void)slot_handle.publish(std::move(next));
}

bool DeploymentRegistry::contains(std::uint32_t user_id) const {
  const Shard& shard = shards_[shard_of(user_id)];
  const MutexLock lock(shard.mutex);
  return shard.slots.contains(user_id);
}

bool DeploymentRegistry::erase(std::uint32_t user_id) {
  Shard& shard = shards_[shard_of(user_id)];
  const MutexLock lock(shard.mutex);
  return shard.slots.erase(user_id) > 0;
}

std::size_t DeploymentRegistry::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mutex);
    total += shard.slots.size();
  }
  return total;
}

std::vector<std::uint32_t> DeploymentRegistry::user_ids() const {
  std::vector<std::uint32_t> ids;
  for (const Shard& shard : shards_) {
    const MutexLock lock(shard.mutex);
    for (const auto& [user_id, slot] : shard.slots) {
      ids.push_back(user_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace pelican::serve
