#include "serve/registry.hpp"

#include <algorithm>

namespace pelican::serve {

DeploymentRegistry::DeploymentRegistry(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

std::size_t DeploymentRegistry::shard_of(
    std::uint32_t user_id) const noexcept {
  // Fibonacci hash so both sequential and strided user ids spread evenly.
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(user_id) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(mixed >> 32) % shards_.size();
}

void DeploymentRegistry::deploy(std::uint32_t user_id,
                                core::DeployedModel model) {
  Shard& shard = shards_[shard_of(user_id)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.models.insert_or_assign(user_id, std::move(model));
}

std::size_t DeploymentRegistry::adopt_hosted(core::CloudServer& cloud) {
  auto hosted = cloud.take_hosted();
  const std::size_t count = hosted.size();
  for (auto& [user_id, model] : hosted) {
    deploy(user_id, std::move(model));
  }
  return count;
}

void DeploymentRegistry::swap_model(std::uint32_t user_id,
                                    nn::SequenceClassifier model) {
  with_model(user_id, [&model](core::DeployedModel& deployed) {
    deployed.swap_model(std::move(model));
  });
}

bool DeploymentRegistry::contains(std::uint32_t user_id) const {
  const Shard& shard = shards_[shard_of(user_id)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.models.contains(user_id);
}

bool DeploymentRegistry::erase(std::uint32_t user_id) {
  Shard& shard = shards_[shard_of(user_id)];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.models.erase(user_id) > 0;
}

std::size_t DeploymentRegistry::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.models.size();
  }
  return total;
}

std::vector<std::uint32_t> DeploymentRegistry::user_ids() const {
  std::vector<std::uint32_t> ids;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [user_id, model] : shard.models) {
      ids.push_back(user_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace pelican::serve
