// ServerStats: the measurement surface of the serving engine.
//
// Throughput claims ("batched serving is Nx single-query") are only as good
// as their instrumentation, so the scheduler records every request, every
// executed batch, and per-request queue-to-response latency here. Snapshots
// aggregate into the numbers the benches print: totals, a log2 batch-size
// histogram, and p50/p99 latency.
//
// Latency storage is an obs::Histogram — fixed log-bucket boundaries,
// bounded memory under open-ended traffic (this replaced the unbounded
// per-sample vector that an early TODO here flagged). The cost is that
// percentiles are now estimates with a documented relative error bound of
// obs::Histogram::kQuantileRelativeError (~9%, asserted against the
// exact-sample baseline in tests/serve/stats_merge_test.cpp).
//
// Fleet aggregation: a router in front of N engine processes needs one
// fleet-wide view. State is the raw recorded state (counters, histograms)
// — transportable over the router wire protocol — and merge() folds another
// engine's state in. Because every histogram shares the same bucket
// boundaries, the fold is an EXACT bucket-wise sum: the merged histogram
// equals what one engine would have recorded had it seen all the traffic,
// so fleet percentiles carry the same single-engine error bound instead of
// compounding (and are NOT an average of per-engine percentiles, which is
// statistically meaningless). peak_queue_depth merges as the max across
// engines — queues are per-process, so fleet-wide "peak depth" means "the
// worst any single engine queue got".
//
// peak_queue_depth is an atomic maintained by a CAS-max loop rather than a
// field under the stats mutex: the scheduler records it while still holding
// its queue mutex (the only way the observed depth is the true depth — see
// BatchScheduler::submit), and an atomic keeps that critical section free
// of a second lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "obs/metrics.hpp"

namespace pelican::serve {

class ServerStats {
 public:
  /// One executed batched forward of `batch_size` rows taking
  /// `forward_seconds` inside the model (lock held, encode + forward + topk).
  void record_batch(std::size_t batch_size, double forward_seconds);

  /// One answered request, measured from submission to response.
  void record_request(double latency_ms);

  /// One rejected request (user not deployed / undecodable batch).
  void record_rejected();

  /// One request shed by admission control (QueuePolicy kReject or
  /// kShedOldest) before reaching a model.
  void record_shed();

  /// Submit-queue depth observed at enqueue time. Lock-free (atomic
  /// CAS-max), so callers may — and should — invoke it while still holding
  /// the lock that made the depth reading consistent.
  void record_queue_depth(std::size_t depth) noexcept;

  struct Snapshot {
    std::size_t requests_served = 0;
    std::size_t requests_rejected = 0;
    std::size_t requests_shed = 0;
    std::size_t peak_queue_depth = 0;
    std::size_t batches_run = 0;
    double mean_batch_size = 0.0;
    std::size_t max_batch_size = 0;
    /// bucket b counts batches with size in [2^b, 2^(b+1)).
    std::vector<std::size_t> batch_size_log2_histogram;
    double total_forward_seconds = 0.0;
    double p50_latency_ms = 0.0;
    double p99_latency_ms = 0.0;
    double max_latency_ms = 0.0;
  };

  /// Consistent aggregate of everything recorded so far.
  [[nodiscard]] Snapshot snapshot() const;

  /// The raw recorded state, copyable and wire-transportable (the router's
  /// kStats verb carries one per engine). Field meanings match the private
  /// members below; `latency` carries the full bucket vector so merges stay
  /// exact.
  struct State {
    std::size_t requests = 0;
    std::size_t rejected = 0;
    std::size_t shed = 0;
    std::size_t peak_queue_depth = 0;
    std::size_t batches = 0;
    std::size_t batch_rows = 0;
    std::size_t max_batch = 0;
    std::vector<std::size_t> batch_hist;
    double forward_seconds = 0.0;
    obs::HistogramState latency;
  };

  /// Consistent copy of the raw state (one lock acquisition).
  [[nodiscard]] State state() const;

  /// Folds `other` into this instance: counters add, histograms add
  /// bucket-wise (shorter batch histograms — including empty ones — are
  /// treated as zero-filled; latency buckets share fixed boundaries so the
  /// sum is exact), and max fields (max_batch, peak_queue_depth,
  /// latency max) take the maximum.
  void merge(const State& other);

  /// Same, from a live instance (e.g. a router folding its own local stats
  /// into a fleet aggregate). Safe against self-merge and concurrent
  /// recording on either side.
  void merge(const ServerStats& other);

  void reset();

 private:
  mutable Mutex mutex_;
  std::size_t requests_ PELICAN_GUARDED_BY(mutex_) = 0;
  std::size_t rejected_ PELICAN_GUARDED_BY(mutex_) = 0;
  std::size_t shed_ PELICAN_GUARDED_BY(mutex_) = 0;
  std::atomic<std::size_t> peak_queue_depth_{0};  // lock-free CAS-max
  std::size_t batches_ PELICAN_GUARDED_BY(mutex_) = 0;
  std::size_t batch_rows_ PELICAN_GUARDED_BY(mutex_) = 0;
  std::size_t max_batch_ PELICAN_GUARDED_BY(mutex_) = 0;
  std::vector<std::size_t> batch_hist_ PELICAN_GUARDED_BY(mutex_);
  double forward_seconds_ PELICAN_GUARDED_BY(mutex_) = 0.0;
  obs::Histogram latency_ms_;  // wait-free observes; not guarded by mutex_
};

}  // namespace pelican::serve
