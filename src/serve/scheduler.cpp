#include "serve/scheduler.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace pelican::serve {

BatchScheduler::BatchScheduler(DeploymentRegistry& registry,
                               SchedulerConfig config)
    : registry_(registry), config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("BatchScheduler: max_batch must be > 0");
  }
  if (config_.max_queue == 0) {
    throw std::invalid_argument("BatchScheduler: max_queue must be > 0");
  }
  drainer_ = std::thread([this] { drain_loop(); });
}

BatchScheduler::~BatchScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();  // unblock kBlock submitters parked at the bound
  drainer_.join();
}

void BatchScheduler::answer_rejected(Pending pending) {
  PredictResponse response;
  response.user_id = pending.request.user_id;
  response.ok = false;
  response.rejected = true;
  response.latency_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - pending.enqueued)
                            .count();
  stats_.record_shed();
  pending.promise.set_value(std::move(response));
}

std::future<PredictResponse> BatchScheduler::submit(PredictRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  std::future<PredictResponse> future = pending.promise.get_future();

  std::vector<Pending> shed;  // answered after the lock is released
  std::size_t depth = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.size() >= config_.max_queue && !stop_) {
      switch (config_.policy) {
        case QueuePolicy::kBlock:
          space_cv_.wait(lock, [this] {
            return stop_ || queue_.size() < config_.max_queue;
          });
          break;
        case QueuePolicy::kReject:
          lock.unlock();
          answer_rejected(std::move(pending));
          return future;
        case QueuePolicy::kShedOldest:
          shed.push_back(std::move(queue_.front()));
          queue_.pop_front();
          break;
      }
    }
    if (stop_) {
      // Shutdown raced the submit: the drainer only answers what was queued
      // before stop, so refuse rather than enqueue into a dying engine.
      lock.unlock();
      answer_rejected(std::move(pending));
      return future;
    }
    queue_.push_back(std::move(pending));
    depth = queue_.size();
  }
  queue_cv_.notify_all();
  stats_.record_queue_depth(depth);
  for (Pending& victim : shed) answer_rejected(std::move(victim));
  return future;
}

std::vector<PredictResponse> BatchScheduler::serve(
    std::span<const PredictRequest> requests) {
  const Clock::time_point entered = Clock::now();
  std::vector<Pending> items;
  items.reserve(requests.size());
  std::vector<std::future<PredictResponse>> futures;
  futures.reserve(requests.size());
  for (const PredictRequest& request : requests) {
    Pending pending;
    pending.request = request;
    pending.enqueued = entered;
    futures.push_back(pending.promise.get_future());
    items.push_back(std::move(pending));
  }
  execute(std::move(items));

  std::vector<PredictResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

void BatchScheduler::drain_loop() {
  for (;;) {
    std::vector<Pending> items;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopped with nothing left to answer

      // Hold for stragglers that could join a batch — but never past the
      // oldest request's max_delay deadline, and not at all once a full
      // batch is already queued or we are shutting down.
      const Clock::time_point deadline =
          queue_.front().enqueued + config_.max_delay;
      queue_cv_.wait_until(lock, deadline, [this] {
        return stop_ || queue_.size() >= config_.max_batch;
      });

      items.reserve(queue_.size());
      while (!queue_.empty()) {
        items.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    space_cv_.notify_all();  // the queue just emptied: admit blocked callers
    execute(std::move(items));
  }
}

void BatchScheduler::execute(std::vector<Pending> items) {
  if (items.empty()) return;

  // Coalesce: group request indices by (user, k) in arrival order, then cut
  // each group into max_batch chunks. std::map keeps chunk construction
  // deterministic given the same input order.
  std::map<std::pair<std::uint32_t, std::size_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    groups[{items[i].request.user_id, items[i].request.k}].push_back(i);
  }
  struct Chunk {
    std::uint32_t user_id = 0;
    std::size_t k = 0;
    std::span<const std::size_t> indices;
  };
  std::vector<Chunk> chunks;
  for (const auto& [key, indices] : groups) {
    for (std::size_t start = 0; start < indices.size();
         start += config_.max_batch) {
      const std::size_t count =
          std::min(config_.max_batch, indices.size() - start);
      chunks.push_back({key.first, key.second,
                        std::span<const std::size_t>(indices).subspan(start,
                                                                      count)});
    }
  }

  // One pool task per coalesced batch: chunks of distinct users run
  // concurrently; chunks of the same user serialize on that deployment's
  // serve lock (never on a shard or registry lock).
  parallel_for(chunks.size(), [&](std::size_t c) {
    const Chunk& chunk = chunks[c];
    std::vector<mobility::Window> windows;
    windows.reserve(chunk.indices.size());
    for (const std::size_t i : chunk.indices) {
      windows.push_back(items[i].request.window);
    }

    std::vector<std::vector<std::uint16_t>> results;
    std::uint32_t model_version = 0;
    bool ok = true;
    try {
      registry_.with_model(chunk.user_id, [&](core::DeployedModel& model) {
        const Stopwatch watch;
        model_version = model.model_version();
        results = model.predict_top_k_batch(windows, chunk.k);
        stats_.record_batch(windows.size(), watch.seconds());
      });
    } catch (...) {
      // Not deployed (registry's out_of_range) or the deployment rejected
      // the batch (e.g. a window outside the model's encoding domain).
      // Swallowing everything here is deliberate: an exception escaping a
      // drain would otherwise tear down the drainer thread (std::terminate)
      // and leave every outstanding future hanging. The requests in this
      // chunk are answered ok = false instead.
      ok = false;
    }

    const Clock::time_point now = Clock::now();
    for (std::size_t j = 0; j < chunk.indices.size(); ++j) {
      Pending& pending = items[chunk.indices[j]];
      PredictResponse response;
      response.user_id = chunk.user_id;
      response.ok = ok;
      response.model_version = model_version;
      if (ok) response.locations = std::move(results[j]);
      response.latency_ms =
          std::chrono::duration<double, std::milli>(now - pending.enqueued)
              .count();
      if (ok) {
        stats_.record_request(response.latency_ms);
      } else {
        stats_.record_rejected();
      }
      pending.promise.set_value(std::move(response));
    }
  });
}

}  // namespace pelican::serve
