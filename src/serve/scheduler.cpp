#include "serve/scheduler.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"

namespace pelican::serve {

BatchScheduler::BatchScheduler(DeploymentRegistry& registry,
                               SchedulerConfig config)
    : registry_(registry), config_(config) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("BatchScheduler: max_batch must be > 0");
  }
  if (config_.max_queue == 0) {
    throw std::invalid_argument("BatchScheduler: max_queue must be > 0");
  }
  // Resolve every stage histogram once: per-request recording then never
  // touches the registry map/lock (the references are lifetime-stable).
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    stage_hist_[s] = &metrics_.histogram(
        obs::stage_metric_name(static_cast<obs::Stage>(s)));
  }
  deadline_shed_counter_ = &metrics_.counter("requests_deadline_shed_total");
  drainer_ = std::thread([this] { drain_loop(); });
}

void BatchScheduler::maybe_sample_trace(PredictRequest& request) noexcept {
  if (request.trace_id != 0 || config_.trace_sample_every == 0 ||
      !instrumentation_enabled()) {
    return;
  }
  if (sample_counter_.fetch_add(1, std::memory_order_relaxed) %
          config_.trace_sample_every ==
      0) {
    request.trace_id = obs::new_trace_id();
  }
}

BatchScheduler::~BatchScheduler() {
  {
    const MutexLock lock(mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();  // unblock kBlock submitters parked at the bound
  drainer_.join();
}

void BatchScheduler::answer_rejected(Pending pending) {
  PredictResponse response;
  response.user_id = pending.request.user_id;
  response.ok = false;
  response.rejected = true;
  response.latency_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - pending.enqueued)
                            .count();
  stats_.record_shed();
  pending.promise.set_value(std::move(response));
}

std::future<PredictResponse> BatchScheduler::submit(PredictRequest request) {
  Pending pending;
  pending.request = std::move(request);
  pending.enqueued = Clock::now();
  maybe_sample_trace(pending.request);
  // Stage timestamps only for traced requests: the untraced fast path pays
  // a counter bump and this branch, nothing else (see the <= 2% overhead
  // row in bench/serve_throughput).
  if (pending.request.trace_id != 0) pending.submit_ns = obs::now_ns();
  std::future<PredictResponse> future = pending.promise.get_future();

  std::vector<Pending> shed;  // answered after the lock is released
  {
    MutexLock lock(mutex_);
    if (queue_.size() >= config_.max_queue && !stop_) {
      switch (config_.policy) {
        case QueuePolicy::kBlock:
          while (!stop_ && queue_.size() >= config_.max_queue) {
            lock.wait(space_cv_);
          }
          break;
        case QueuePolicy::kReject:
          lock.unlock();
          answer_rejected(std::move(pending));
          return future;
        case QueuePolicy::kShedOldest:
          shed.push_back(std::move(queue_.front()));
          queue_.pop_front();
          break;
      }
    }
    if (stop_) {
      // Shutdown raced the submit: the drainer only answers what was queued
      // before stop, so refuse rather than enqueue into a dying engine.
      lock.unlock();
      answer_rejected(std::move(pending));
      return future;
    }
    if (pending.request.trace_id != 0) pending.admitted_ns = obs::now_ns();
    queue_.push_back(std::move(pending));
    // Record the peak WHILE holding the queue lock: observing the size
    // after unlocking raced concurrent drains, so a momentary peak (e.g.
    // "did the queue ever reach its bound?") could be under-reported.
    // record_queue_depth is an atomic CAS-max, so no second lock is taken
    // inside this critical section.
    stats_.record_queue_depth(queue_.size());
  }
  queue_cv_.notify_all();
  for (Pending& victim : shed) answer_rejected(std::move(victim));
  return future;
}

std::vector<PredictResponse> BatchScheduler::serve(
    std::span<const PredictRequest> requests) {
  const Clock::time_point entered = Clock::now();
  const std::uint64_t entered_ns = obs::now_ns();
  std::vector<Pending> items;
  items.reserve(requests.size());
  std::vector<std::future<PredictResponse>> futures;
  futures.reserve(requests.size());
  for (const PredictRequest& request : requests) {
    Pending pending;
    pending.request = request;
    pending.enqueued = entered;
    // The sync path has no queue: "queue wait" degenerates to serve-entry ->
    // chunk pickup, which still captures scheduling delay under load.
    pending.submit_ns = entered_ns;
    pending.admitted_ns = entered_ns;
    maybe_sample_trace(pending.request);
    futures.push_back(pending.promise.get_future());
    items.push_back(std::move(pending));
  }
  execute(std::move(items));

  std::vector<PredictResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) responses.push_back(future.get());
  return responses;
}

void BatchScheduler::drain_loop() {
  for (;;) {
    std::vector<Pending> items;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) lock.wait(queue_cv_);
      if (queue_.empty()) return;  // stopped with nothing left to answer

      // Hold for stragglers that could join a batch — but never past the
      // oldest request's max_delay deadline, and not at all once a full
      // batch is already queued or we are shutting down.
      const Clock::time_point deadline =
          queue_.front().enqueued + config_.max_delay;
      while (!stop_ && queue_.size() < config_.max_batch) {
        if (!lock.wait_until(queue_cv_, deadline)) break;  // deadline hit
      }

      items.reserve(queue_.size());
      while (!queue_.empty()) {
        items.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    space_cv_.notify_all();  // the queue just emptied: admit blocked callers
    execute(std::move(items));
  }
}

void BatchScheduler::execute(std::vector<Pending> items) {
  if (items.empty()) return;
  // Deadline admission: a request whose budget expired while it sat in the
  // queue is answered shed right here — the forward it would have joined
  // computes an answer nobody reads. Deadline-free traffic (the common
  // case) pays one branch per item and no clock read.
  if (std::any_of(items.begin(), items.end(), [](const Pending& pending) {
        return pending.request.deadline_ms > 0.0;
      })) {
    const Clock::time_point now = Clock::now();
    std::vector<Pending> admitted;
    admitted.reserve(items.size());
    std::uint64_t shed = 0;
    std::uint64_t shed_trace = 0;
    for (Pending& pending : items) {
      const double budget = pending.request.deadline_ms;
      const double waited_ms = std::chrono::duration<double, std::milli>(
                                   now - pending.enqueued)
                                   .count();
      if (budget > 0.0 && waited_ms >= budget) {
        deadline_shed_counter_->add();
        ++shed;
        if (shed_trace == 0) shed_trace = pending.request.trace_id;
        answer_rejected(std::move(pending));
      } else {
        admitted.push_back(std::move(pending));
      }
    }
    if (shed > 0 && instrumentation_enabled()) {
      // One burst event per drain, behind the instrumentation flag — the
      // uninstrumented hot path must not pay a journal lock (the
      // serve_throughput bench asserts the flight-recorder overhead bound).
      events_.emit(obs::EventType::kDeadlineShed, "engine",
                   std::to_string(shed) + " requests expired in queue",
                   shed_trace);
    }
    items = std::move(admitted);
    if (items.empty()) return;
  }
  // Stage-breakdown work (clock reads, histogram observes, span commits)
  // runs only for traced requests: router-stamped ids are always traced,
  // local requests 1-in-trace_sample_every. An untraced drain costs a
  // handful of branches — that is what keeps the batch-1 tracing overhead
  // within the bench's 2% bound.
  const bool instrument =
      instrumentation_enabled() &&
      std::any_of(items.begin(), items.end(), [](const Pending& pending) {
        return pending.request.trace_id != 0;
      });
  const std::uint64_t pickup_ns = instrument ? obs::now_ns() : 0;

  // Coalesce: group request indices by (user, k) in arrival order, then cut
  // each group into max_batch chunks. std::map keeps chunk construction
  // deterministic given the same input order.
  std::map<std::pair<std::uint32_t, std::size_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < items.size(); ++i) {
    groups[{items[i].request.user_id, items[i].request.k}].push_back(i);
  }
  struct Chunk {
    std::uint32_t user_id = 0;
    std::size_t k = 0;
    std::span<const std::size_t> indices;
  };
  std::vector<Chunk> chunks;
  for (const auto& [key, indices] : groups) {
    for (std::size_t start = 0; start < indices.size();
         start += config_.max_batch) {
      const std::size_t count =
          std::min(config_.max_batch, indices.size() - start);
      chunks.push_back({key.first, key.second,
                        std::span<const std::size_t>(indices).subspan(start,
                                                                      count)});
    }
  }
  const std::uint64_t assembled_ns = instrument ? obs::now_ns() : 0;

  // One pool task per coalesced batch: chunks of distinct users run
  // concurrently; chunks of the same user serialize on that deployment's
  // serve lock (never on a shard or registry lock).
  parallel_for(chunks.size(), [&](std::size_t c) {
    const Chunk& chunk = chunks[c];
    std::vector<mobility::Window> windows;
    windows.reserve(chunk.indices.size());
    for (const std::size_t i : chunk.indices) {
      windows.push_back(items[i].request.window);
    }

    // A chunk is measured iff it carries a traced row; its stage costs are
    // then attributed to every traced row (they shared that one forward).
    const bool measured =
        instrument &&
        std::any_of(chunk.indices.begin(), chunk.indices.end(),
                    [&](std::size_t i) {
                      return items[i].request.trace_id != 0;
                    });

    std::vector<std::vector<std::uint16_t>> results;
    std::uint32_t model_version = 0;
    bool ok = true;
    core::PredictStageSeconds stage_seconds;
    const std::uint64_t chunk_start_ns = measured ? obs::now_ns() : 0;
    try {
      registry_.with_model(chunk.user_id, [&](core::DeployedModel& model) {
        const Stopwatch watch;
        model_version = model.model_version();
        results = model.predict_top_k_batch(
            windows, chunk.k, measured ? &stage_seconds : nullptr);
        stats_.record_batch(windows.size(), watch.seconds());
      });
    } catch (...) {
      // Not deployed (registry's out_of_range) or the deployment rejected
      // the batch (e.g. a window outside the model's encoding domain).
      // Swallowing everything here is deliberate: an exception escaping a
      // drain would otherwise tear down the drainer thread (std::terminate)
      // and leave every outstanding future hanging. The requests in this
      // chunk are answered ok = false instead.
      ok = false;
    }

    if (measured && ok) {
      // Chunk-level stage costs recorded once per forward, not per row: the
      // histogram then answers "what does a forward cost at this stage",
      // which is the number a batching engine can act on.
      using obs::Stage;
      const auto idx = [](Stage s) { return static_cast<std::size_t>(s); };
      stage_hist_[idx(Stage::kBatchAssembly)]->observe(
          static_cast<double>(assembled_ns - pickup_ns) / 1e6);
      stage_hist_[idx(Stage::kEncode)]->observe(stage_seconds.encode * 1e3);
      stage_hist_[idx(Stage::kForward)]->observe(stage_seconds.forward * 1e3);
      stage_hist_[idx(Stage::kRankTopK)]->observe(stage_seconds.rank * 1e3);
    }

    const Clock::time_point now = Clock::now();
    for (std::size_t j = 0; j < chunk.indices.size(); ++j) {
      Pending& pending = items[chunk.indices[j]];
      PredictResponse response;
      response.user_id = chunk.user_id;
      response.ok = ok;
      response.model_version = model_version;
      if (ok) response.locations = std::move(results[j]);
      response.latency_ms =
          std::chrono::duration<double, std::milli>(now - pending.enqueued)
              .count();
      if (ok) {
        stats_.record_request(response.latency_ms);
      } else {
        stats_.record_rejected();
      }
      if (measured && pending.request.trace_id != 0) {
        const double queue_wait_ms =
            static_cast<double>(pickup_ns - pending.admitted_ns) / 1e6;
        const double admission_ms =
            static_cast<double>(pending.admitted_ns - pending.submit_ns) /
            1e6;
        using obs::Stage;
        const auto idx = [](Stage s) { return static_cast<std::size_t>(s); };
        stage_hist_[idx(Stage::kQueueWait)]->observe(queue_wait_ms);
        stage_hist_[idx(Stage::kAdmission)]->observe(admission_ms);
        {
          // One batched commit per traced request: stack-local spans, a
          // single collector lock. Chunk-level stages are attributed to
          // every row of the chunk (its rows shared that one forward).
          const auto ns = [](double seconds) {
            return static_cast<std::uint64_t>(seconds * 1e9);
          };
          std::array<obs::Span, 6> spans;
          std::size_t n = 0;
          spans[n++] = {Stage::kAdmission, pending.submit_ns,
                        pending.admitted_ns - pending.submit_ns};
          spans[n++] = {Stage::kQueueWait, pending.admitted_ns,
                        pickup_ns - pending.admitted_ns};
          spans[n++] = {Stage::kBatchAssembly, pickup_ns,
                        assembled_ns - pickup_ns};
          std::uint64_t at = chunk_start_ns;
          spans[n++] = {Stage::kEncode, at, ns(stage_seconds.encode)};
          at += ns(stage_seconds.encode);
          spans[n++] = {Stage::kForward, at, ns(stage_seconds.forward)};
          at += ns(stage_seconds.forward);
          spans[n++] = {Stage::kRankTopK, at, ns(stage_seconds.rank)};
          traces_.record(pending.request.trace_id,
                         std::span<const obs::Span>(spans.data(), n));
          traces_.finish(pending.request.trace_id, response.latency_ms);
        }
      }
      pending.promise.set_value(std::move(response));
    }
  });
}

}  // namespace pelican::serve
