// DeploymentRegistry: the serving engine's ownership layer for per-user
// deployments (the paper's cloud-hosted deployment mode, Section V-A3, at
// many-user scale).
//
// The registry owns DeployedModels keyed by user id and is sharded into N
// independently locked shards, so concurrent register / lookup / swap from
// serving workers scales past a single mutex. A shard's lock is held for the
// whole duration of a model access (with_model) because forward passes
// mutate per-model activation caches — per-user exclusivity is a
// correctness requirement, not just a performance choice. Requests for
// different users land on different shards with high probability, which is
// where the concurrency comes from.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/cloud.hpp"
#include "core/service.hpp"

namespace pelican::serve {

class DeploymentRegistry {
 public:
  /// `shards` independently locked partitions; more shards = less lock
  /// contention across users (diminishing past the worker count).
  explicit DeploymentRegistry(std::size_t shards = 16);

  DeploymentRegistry(const DeploymentRegistry&) = delete;
  DeploymentRegistry& operator=(const DeploymentRegistry&) = delete;

  /// Registers (or replaces) the deployment of `user_id`.
  void deploy(std::uint32_t user_id, core::DeployedModel model);

  /// Moves every model hosted by `cloud` into the registry (the serving
  /// engine subsumes CloudServer's single-map hosting). Returns the number
  /// of deployments adopted.
  std::size_t adopt_hosted(core::CloudServer& cloud);

  /// Replaces the model of an existing deployment in place (Pelican model
  /// update, Section V-A4). Throws std::out_of_range when the user is not
  /// deployed.
  void swap_model(std::uint32_t user_id, nn::SequenceClassifier model);

  [[nodiscard]] bool contains(std::uint32_t user_id) const;

  /// Removes the deployment of `user_id`; returns false when absent.
  bool erase(std::uint32_t user_id);

  /// Total deployments across all shards (locks each shard in turn).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Shard index of a user (exposed for tests and stats).
  [[nodiscard]] std::size_t shard_of(std::uint32_t user_id) const noexcept;

  /// All deployed user ids, sorted ascending (deterministic; locks each
  /// shard in turn, so the snapshot is per-shard consistent).
  [[nodiscard]] std::vector<std::uint32_t> user_ids() const;

  /// Runs `fn(DeployedModel&)` with the user's shard locked and returns its
  /// result. The lock spans the whole call — forward passes are stateful —
  /// so keep `fn` to model work only. Throws std::out_of_range when the
  /// user is not deployed.
  template <typename Fn>
  decltype(auto) with_model(std::uint32_t user_id, Fn&& fn) {
    Shard& shard = shards_[shard_of(user_id)];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.models.find(user_id);
    if (it == shard.models.end()) {
      throw std::out_of_range("DeploymentRegistry: user not deployed");
    }
    return std::forward<Fn>(fn)(it->second);
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::uint32_t, core::DeployedModel> models;
  };

  std::vector<Shard> shards_;
};

}  // namespace pelican::serve
