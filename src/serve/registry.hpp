// DeploymentRegistry: the serving engine's ownership layer for per-user
// deployments (the paper's cloud-hosted deployment mode, Section V-A3, at
// many-user scale).
//
// The registry maps user ids to deployment SLOTS across N independently
// locked shards. A shard's lock protects only the map — it is held for a
// hash lookup, never for model work. All model access goes through
// DeploymentHandle, a stable reference to one user's slot with two locks of
// its own:
//
//   serve_mutex — serializes forwards. Forward passes mutate per-model
//       activation caches, so per-user exclusivity is a correctness
//       requirement; distinct users never share this lock.
//   ptr_mutex   — guards the shared_ptr<DeployedModel> itself, held only
//       for pointer copies/swaps (nanoseconds), never across model work.
//
// Model updates (the paper's Section V-A4 re-personalize-and-redeploy loop)
// therefore never stall serving: publish() builds the replacement model
// entirely off-lock — reading it out of the store::ModelStore is the
// expensive step — and installs it with a pointer swap under ptr_mutex. An
// in-flight forward keeps the old model alive through its shared_ptr and
// finishes on a consistent model; the next request picks up the new one.
// Other users, even on the same shard, never observe the update at all.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "core/cloud.hpp"
#include "core/service.hpp"
#include "store/model_store.hpp"

namespace pelican::serve {

/// A stable reference to one user's deployment slot. Handles stay valid
/// across publish()/swap_model()/re-deploy() for the same user (the slot is
/// reused); they outlive even erase() — an erased slot keeps answering
/// through existing handles until the last one drops.
class DeploymentHandle {
 public:
  DeploymentHandle() = default;  ///< empty handle; operator bool is false

  [[nodiscard]] explicit operator bool() const noexcept {
    return slot_ != nullptr;
  }

  /// Runs `fn(DeployedModel&)` with this deployment's serve lock held and
  /// returns its result. Only requests for the SAME user contend here.
  template <typename Fn>
  decltype(auto) with_model(Fn&& fn) const {
    require();
    const MutexLock serve_lock(slot_->serve_mutex);
    // Snapshot the pointer under ptr_mutex: a concurrent publish may swap
    // it at any moment, and this forward must run on one consistent model.
    const std::shared_ptr<core::DeployedModel> model = slot_->load();
    return std::forward<Fn>(fn)(*model);
  }

  /// Shared-ownership snapshot of the current model for metadata reads
  /// (version, temperature, spec). Do NOT run forwards through it: forwards
  /// are stateful and require the serve lock that with_model takes.
  [[nodiscard]] std::shared_ptr<const core::DeployedModel> snapshot() const {
    require();
    return slot_->load();
  }

  /// Installs `next` as this deployment's model with an atomic pointer
  /// swap. Does not take the serve lock: an in-flight forward finishes on
  /// the old model (kept alive by its snapshot) while later requests see
  /// `next`. Returns the model that was replaced.
  std::shared_ptr<core::DeployedModel> publish(
      std::shared_ptr<core::DeployedModel> next) const {
    require();
    if (next == nullptr) {
      throw std::invalid_argument("DeploymentHandle: cannot publish null");
    }
    return slot_->exchange(std::move(next));
  }

 private:
  friend class DeploymentRegistry;

  struct Slot {
    /// Serializes forwards on this deployment (never guards a member —
    /// forward passes mutate per-model activation caches through the
    /// shared_ptr, which the analysis cannot attribute to a field).
    mutable Mutex serve_mutex;
    mutable Mutex ptr_mutex;
    std::shared_ptr<core::DeployedModel> model PELICAN_GUARDED_BY(ptr_mutex);

    [[nodiscard]] std::shared_ptr<core::DeployedModel> load() const {
      const MutexLock lock(ptr_mutex);
      return model;
    }
    std::shared_ptr<core::DeployedModel> exchange(
        std::shared_ptr<core::DeployedModel> next) {
      const MutexLock lock(ptr_mutex);
      std::swap(model, next);
      return next;  // the previous model
    }
  };

  explicit DeploymentHandle(std::shared_ptr<Slot> slot)
      : slot_(std::move(slot)) {}

  void require() const {
    if (slot_ == nullptr) {
      throw std::logic_error("DeploymentHandle: empty handle");
    }
  }

  std::shared_ptr<Slot> slot_;
};

class DeploymentRegistry {
 public:
  /// `shards` independently locked partitions; more shards = less lock
  /// contention across users (diminishing past the worker count).
  explicit DeploymentRegistry(std::size_t shards = 16);

  DeploymentRegistry(const DeploymentRegistry&) = delete;
  DeploymentRegistry& operator=(const DeploymentRegistry&) = delete;

  /// Registers the deployment of `user_id` and returns its handle. When the
  /// user is already deployed, the replacement is installed into the
  /// existing slot (an atomic publish), so handles held elsewhere keep
  /// working and observe the new model — and the slot's cumulative query
  /// count is added to the incoming deployment's (the per-user attack
  /// budget survives re-deploys).
  DeploymentHandle deploy(std::uint32_t user_id, core::DeployedModel model);

  /// The handle of `user_id`'s deployment. Throws std::out_of_range when
  /// the user is not deployed — find_handle is the non-throwing variant.
  [[nodiscard]] DeploymentHandle handle(std::uint32_t user_id) const;

  /// Empty handle (operator bool false) when the user is not deployed.
  [[nodiscard]] DeploymentHandle find_handle(std::uint32_t user_id) const;

  /// Moves every model hosted by `cloud` into the registry (the serving
  /// engine subsumes CloudServer's single-map hosting). Returns the number
  /// of deployments adopted.
  std::size_t adopt_hosted(core::CloudServer& cloud);

  /// Binds the registry to the model store and scope that publish() reads
  /// replacement models from. Typically the cloud tier's store
  /// (CloudServer::shared_model_store()) with a scope the re-personalization
  /// pipeline writes to. Must be non-null.
  void attach_store(std::shared_ptr<const store::ModelStore> model_store,
                    std::string scope);

  /// Pelican model update (Section V-A4), stall-free. Reads version
  /// `version` of the user's model from the attached store (scope as set by
  /// attach_store, user_id as key) — deliberately OFF every serving lock,
  /// since deserializing/cloning a model is the expensive step — wraps it
  /// in a DeployedModel inheriting the current deployment's encoding spec,
  /// privacy layer, site, and cumulative query count, and installs it with
  /// an atomic pointer swap.
  ///
  /// Throws std::logic_error when no store is attached, std::out_of_range
  /// when the user is not deployed or the store has no such version.
  void publish(std::uint32_t user_id, std::uint32_t version);

  /// Replaces the model of an existing deployment with a directly supplied
  /// one (version tag 0 = unversioned; prefer publish(), which records
  /// which store version is live). Same atomicity as publish. Throws
  /// std::out_of_range when the user is not deployed.
  void swap_model(std::uint32_t user_id, nn::SequenceClassifier model);

  [[nodiscard]] bool contains(std::uint32_t user_id) const;

  /// Removes the deployment of `user_id`; returns false when absent.
  /// Outstanding handles to the erased slot remain usable (see
  /// DeploymentHandle) — erase only unlists the user.
  bool erase(std::uint32_t user_id);

  /// Total deployments across all shards (locks each shard in turn).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Shard index of a user (exposed for tests and stats).
  [[nodiscard]] std::size_t shard_of(std::uint32_t user_id) const noexcept;

  /// All deployed user ids, sorted ascending (deterministic; locks each
  /// shard in turn, so the snapshot is per-shard consistent).
  [[nodiscard]] std::vector<std::uint32_t> user_ids() const;

  /// Runs `fn(DeployedModel&)` with only this deployment's serve lock held
  /// and returns its result; the shard lock is held just for the handle
  /// lookup. Throws std::out_of_range when the user is not deployed.
  template <typename Fn>
  decltype(auto) with_model(std::uint32_t user_id, Fn&& fn) const {
    return handle(user_id).with_model(std::forward<Fn>(fn));
  }

 private:
  /// Shared tail of publish/swap_model: wraps `model` in a DeployedModel
  /// inheriting the slot's spec, privacy layer, site, and cumulative query
  /// count, then installs it atomically.
  static void install_replacement(const DeploymentHandle& slot_handle,
                                  nn::SequenceClassifier model,
                                  std::uint32_t version);

  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<std::uint32_t, std::shared_ptr<DeploymentHandle::Slot>>
        slots PELICAN_GUARDED_BY(mutex);
  };

  std::vector<Shard> shards_;

  mutable Mutex store_mutex_;
  std::shared_ptr<const store::ModelStore> store_
      PELICAN_GUARDED_BY(store_mutex_);
  std::string store_scope_ PELICAN_GUARDED_BY(store_mutex_);
};

}  // namespace pelican::serve
