#include "serve/stats.hpp"

#include <algorithm>

namespace pelican::serve {

namespace {

std::size_t log2_bucket(std::size_t batch_size) {
  std::size_t bucket = 0;
  while (batch_size > 1) {
    batch_size >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void ServerStats::record_batch(std::size_t batch_size,
                               double forward_seconds) {
  if (batch_size == 0) return;
  const std::size_t bucket = log2_bucket(batch_size);
  const MutexLock lock(mutex_);
  ++batches_;
  batch_rows_ += batch_size;
  max_batch_ = std::max(max_batch_, batch_size);
  if (batch_hist_.size() <= bucket) batch_hist_.resize(bucket + 1, 0);
  ++batch_hist_[bucket];
  forward_seconds_ += forward_seconds;
}

void ServerStats::record_request(double latency_ms) {
  latency_ms_.observe(latency_ms);
  const MutexLock lock(mutex_);
  ++requests_;
}

void ServerStats::record_rejected() {
  const MutexLock lock(mutex_);
  ++rejected_;
}

void ServerStats::record_shed() {
  const MutexLock lock(mutex_);
  ++shed_;
}

void ServerStats::record_queue_depth(std::size_t depth) noexcept {
  std::size_t cur = peak_queue_depth_.load(std::memory_order_relaxed);
  while (cur < depth && !peak_queue_depth_.compare_exchange_weak(
                            cur, depth, std::memory_order_relaxed)) {
  }
}

ServerStats::Snapshot ServerStats::snapshot() const {
  const obs::HistogramState latency = latency_ms_.state();
  const MutexLock lock(mutex_);
  Snapshot snap;
  snap.requests_served = requests_;
  snap.requests_rejected = rejected_;
  snap.requests_shed = shed_;
  snap.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  snap.batches_run = batches_;
  snap.mean_batch_size =
      batches_ == 0 ? 0.0
                    : static_cast<double>(batch_rows_) /
                          static_cast<double>(batches_);
  snap.max_batch_size = max_batch_;
  snap.batch_size_log2_histogram = batch_hist_;
  snap.total_forward_seconds = forward_seconds_;
  snap.p50_latency_ms = obs::Histogram::percentile_of(latency, 50.0);
  snap.p99_latency_ms = obs::Histogram::percentile_of(latency, 99.0);
  snap.max_latency_ms = latency.max;
  return snap;
}

ServerStats::State ServerStats::state() const {
  obs::HistogramState latency = latency_ms_.state();
  const MutexLock lock(mutex_);
  State state;
  state.requests = requests_;
  state.rejected = rejected_;
  state.shed = shed_;
  state.peak_queue_depth = peak_queue_depth_.load(std::memory_order_relaxed);
  state.batches = batches_;
  state.batch_rows = batch_rows_;
  state.max_batch = max_batch_;
  state.batch_hist = batch_hist_;
  state.forward_seconds = forward_seconds_;
  state.latency = std::move(latency);
  return state;
}

void ServerStats::merge(const State& other) {
  latency_ms_.merge(other.latency);
  record_queue_depth(other.peak_queue_depth);
  const MutexLock lock(mutex_);
  requests_ += other.requests;
  rejected_ += other.rejected;
  shed_ += other.shed;
  batches_ += other.batches;
  batch_rows_ += other.batch_rows;
  max_batch_ = std::max(max_batch_, other.max_batch);
  if (batch_hist_.size() < other.batch_hist.size()) {
    batch_hist_.resize(other.batch_hist.size(), 0);
  }
  for (std::size_t b = 0; b < other.batch_hist.size(); ++b) {
    batch_hist_[b] += other.batch_hist[b];
  }
  forward_seconds_ += other.forward_seconds;
}

void ServerStats::merge(const ServerStats& other) {
  // Snapshot the source first (its own lock), then fold under ours — no
  // two locks held at once, so opposite-direction merges cannot deadlock,
  // and merge(*this) folds a consistent copy rather than livelocking.
  merge(other.state());
}

void ServerStats::reset() {
  latency_ms_.reset();
  peak_queue_depth_.store(0, std::memory_order_relaxed);
  const MutexLock lock(mutex_);
  requests_ = 0;
  rejected_ = 0;
  shed_ = 0;
  batches_ = 0;
  batch_rows_ = 0;
  max_batch_ = 0;
  batch_hist_.clear();
  forward_seconds_ = 0.0;
}

}  // namespace pelican::serve
