#include "attack/gradient_attack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"
#include "nn/loss.hpp"

namespace pelican::attack {

namespace {

using mobility::EncodingSpec;
using mobility::kWindowSteps;
using mobility::StepFeatures;
using mobility::Window;

/// Feature-block boundaries within one encoded timestep.
struct Block {
  std::size_t offset;
  std::size_t size;
};

std::vector<Block> blocks_of(const EncodingSpec& spec) {
  return {
      {spec.entry_offset(), mobility::kEntryBins},
      {spec.duration_offset(), mobility::kDurationBins},
      {spec.location_offset(), spec.num_locations},
      {spec.day_offset(), mobility::kDaysPerWeek},
  };
}

/// Writes softmax(z / T) for each block of `z` into row 0 of `out`.
void soften_into(const std::vector<double>& z, const EncodingSpec& spec,
                 double temperature, nn::Matrix& out) {
  for (const Block& block : blocks_of(spec)) {
    double max_z = -1e300;
    for (std::size_t i = 0; i < block.size; ++i) {
      max_z = std::max(max_z, z[block.offset + i]);
    }
    double total = 0.0;
    std::vector<double> e(block.size);
    for (std::size_t i = 0; i < block.size; ++i) {
      e[i] = std::exp((z[block.offset + i] - max_z) / temperature);
      total += e[i];
    }
    for (std::size_t i = 0; i < block.size; ++i) {
      out(0, block.offset + i) = static_cast<float>(e[i] / total);
    }
  }
}

/// Chains dL/dq (gradient w.r.t. the softened input q) through the
/// temperature softmax back to the logits z, and applies one descent step.
void descend(std::vector<double>& z, const nn::Matrix& q,
             const nn::Matrix& grad_q, const EncodingSpec& spec,
             double temperature, double lr) {
  for (const Block& block : blocks_of(spec)) {
    double dot = 0.0;
    for (std::size_t i = 0; i < block.size; ++i) {
      dot += static_cast<double>(q(0, block.offset + i)) *
             grad_q(0, block.offset + i);
    }
    for (std::size_t i = 0; i < block.size; ++i) {
      const double qi = q(0, block.offset + i);
      const double dz =
          qi * (static_cast<double>(grad_q(0, block.offset + i)) - dot) /
          temperature;
      z[block.offset + i] -= lr * dz;
    }
  }
}

}  // namespace

InversionResult run_gradient_inversion(
    nn::SequenceClassifier& model, const EncodingSpec& spec,
    std::span<const Window> target_windows, std::span<const double> prior,
    const InversionConfig& config,
    const GradientAttackConfig& gradient_config) {
  if (prior.size() != spec.num_locations) {
    throw std::invalid_argument("run_gradient_inversion: prior size");
  }
  if (gradient_config.iterations == 0) {
    throw std::invalid_argument("run_gradient_inversion: zero iterations");
  }

  const std::size_t step = target_step(config.adversary);
  const bool both_unknown = config.adversary == Adversary::kA3;
  const std::size_t limit =
      config.max_windows == 0
          ? target_windows.size()
          : std::min(config.max_windows, target_windows.size());

  // Log-prior bonus applied to the location block each step.
  std::vector<double> log_prior(prior.size());
  for (std::size_t i = 0; i < prior.size(); ++i) {
    log_prior[i] = std::log(std::max(prior[i], 1e-9));
  }

  InversionResult result;
  result.ks = config.ks;
  result.topk_accuracy.assign(config.ks.size(), 0.0);

  Stopwatch watch;
  for (std::size_t w = 0; w < limit; ++w) {
    const Window& window = target_windows[w];

    // Unknown-step logits, initialized flat (uniform relaxation).
    std::vector<std::vector<double>> z(kWindowSteps);
    std::vector<bool> unknown(kWindowSteps, false);
    for (std::size_t t = 0; t < kWindowSteps; ++t) {
      unknown[t] = both_unknown || t == step;
      if (unknown[t]) z[t].assign(spec.input_dim(), 0.0);
    }

    nn::Sequence x(kWindowSteps, nn::Matrix(1, spec.input_dim(), 0.0f));
    // Known steps stay fixed one-hot for the whole descent.
    for (std::size_t t = 0; t < kWindowSteps; ++t) {
      if (!unknown[t]) {
        const StepFeatures& s = window.steps[t];
        x[t](0, spec.entry_offset() + s.entry_bin) = 1.0f;
        x[t](0, spec.duration_offset() + s.duration_bin) = 1.0f;
        x[t](0, spec.location_offset() + s.location) = 1.0f;
        x[t](0, spec.day_offset() + s.day_of_week) = 1.0f;
      }
    }

    const std::vector<std::int32_t> label = {
        static_cast<std::int32_t>(window.next_location)};

    for (std::size_t iter = 0; iter < gradient_config.iterations; ++iter) {
      for (std::size_t t = 0; t < kWindowSteps; ++t) {
        if (unknown[t]) {
          soften_into(z[t], spec, gradient_config.input_temperature, x[t]);
        }
      }
      const nn::Matrix logits = model.forward(x, /*training=*/false);
      const auto ce = nn::softmax_cross_entropy(logits, label);
      const nn::Sequence grad_x = model.backward(ce.grad_logits);
      ++result.model_queries;

      for (std::size_t t = 0; t < kWindowSteps; ++t) {
        if (!unknown[t]) continue;
        // Prior bonus: pull the location block toward a-priori likely
        // locations (loss -= prior_weight * sum q_l log p_l).
        nn::Matrix grad_with_prior = grad_x[t];
        for (std::size_t l = 0; l < spec.num_locations; ++l) {
          grad_with_prior(0, spec.location_offset() + l) -=
              static_cast<float>(gradient_config.prior_weight *
                                 log_prior[l]);
        }
        descend(z[t], x[t], grad_with_prior, spec,
                gradient_config.input_temperature, gradient_config.lr);
      }
    }

    // Recovered location ranking = final softened location block.
    soften_into(z[step], spec, gradient_config.input_temperature, x[step]);
    std::vector<double> scores(spec.num_locations);
    for (std::size_t l = 0; l < spec.num_locations; ++l) {
      scores[l] = x[step](0, spec.location_offset() + l);
    }

    const std::uint16_t truth = window.steps[step].location;
    for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
      const auto top = nn::topk_indices(std::span<const double>(scores),
                                        config.ks[ki]);
      if (std::find(top.begin(), top.end(),
                    static_cast<std::size_t>(truth)) != top.end()) {
        result.topk_accuracy[ki] += 1.0;
      }
    }
    ++result.windows_attacked;
  }
  result.attack_seconds = watch.seconds();

  if (result.windows_attacked > 0) {
    for (double& acc : result.topk_accuracy) {
      acc /= static_cast<double>(result.windows_attacked);
    }
  }
  return result;
}

}  // namespace pelican::attack
