// Candidate generation for the inversion attacks (Section III-B2).
//
// Brute force enumerates every feature combination of the unknown timestep.
// The time-based method exploits WiFi-session contiguity: the entry time of
// a step equals the previous step's entry time plus its duration, and
// consecutive sessions share the day-of-week (mod midnight). Only
// (duration, location) remain free, shrinking the space by ~2 orders of
// magnitude (paper: >120x faster at equal accuracy).
//
// Adversary A3 knows no historical features at all; following the paper's
// "limited access" setting it marginalizes the older step over a small set
// of plausible context templates (morning class / afternoon / evening /
// weekend) and over the most probable prior locations, then scores guesses
// for l_{t-1} exactly like A1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/threat.hpp"
#include "mobility/dataset.hpp"

namespace pelican::attack {

/// One hypothesized input window plus the sensitive-location guess it
/// embodies.
struct Candidate {
  mobility::StepFeatures steps[mobility::kWindowSteps];
  std::uint16_t guess = 0;  ///< Hypothesized value of the attacked location.
};

/// Derives the entry bin of the *next* session from the previous session's
/// entry bin and duration bin (session contiguity; wraps at midnight).
[[nodiscard]] std::uint8_t derive_next_entry_bin(std::uint8_t entry_bin,
                                                 std::uint8_t duration_bin);

/// True iff a session starting at `entry_bin` with `duration_bin` crosses
/// midnight (the derived next step then falls on the following day).
[[nodiscard]] bool crosses_midnight(std::uint8_t entry_bin,
                                    std::uint8_t duration_bin);

/// Derives the entry bin of the *previous* session from this session's
/// entry bin and the hypothesized previous duration (used by A2; wraps
/// backwards at midnight).
[[nodiscard]] std::uint8_t derive_prev_entry_bin(std::uint8_t entry_bin,
                                                 std::uint8_t duration_bin);

/// Generates the candidate set for one attacked window.
/// `guess_locations`: the values of the sensitive variable to try (all
/// locations for brute force, the locations-of-interest otherwise).
/// `prior`: marginals over locations; A3 uses it to pick plausible context
/// locations for the fully-unknown older step. Unused by A1/A2.
/// `parallel`: brute-force enumeration (the dominant candidate count) fills
/// per-entry-bin output slices across ThreadPool::global(); the slices are
/// disjoint and fixed-size, so the ordering is identical to the serial path
/// (pass false for the serial reference, used by tests and the Table II
/// speedup measurement). The other methods are cheap and always serial.
[[nodiscard]] std::vector<Candidate> enumerate_candidates(
    AttackMethod method, Adversary adversary, const mobility::Window& window,
    std::span<const std::uint16_t> guess_locations,
    std::span<const double> prior, bool parallel = true);

}  // namespace pelican::attack
