// Adversarial prior knowledge p over the sensitive variable, and the
// locations-of-interest filter that shrinks the enumeration space
// (Section III-B2 / IV-B.3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "attack/blackbox.hpp"
#include "attack/threat.hpp"
#include "mobility/dataset.hpp"

namespace pelican::attack {

/// Builds the marginal prior p for a given PriorKind.
///  - kTrue:     exact location marginals of the user's training windows;
///  - kNone:     uniform;
///  - kPredict:  average of model output distributions over the observation
///               windows (the adversary watches the model for a while);
///  - kEstimate: 75% mass on the most probable value (from observation),
///               remainder spread evenly.
/// `observation_windows` are inputs the service provider legitimately saw
/// (used by kPredict/kEstimate only).
[[nodiscard]] std::vector<double> make_prior(
    PriorKind kind, std::span<const mobility::Window> user_train_windows,
    BlackBoxModel& model,
    std::span<const mobility::Window> observation_windows);

/// Averaged model-output distribution over observed inputs (the adversary's
/// estimate of which locations the model ever predicts).
[[nodiscard]] std::vector<double> observed_output_distribution(
    BlackBoxModel& model,
    std::span<const mobility::Window> observation_windows);

/// Locations whose observed confidence ever reaches `threshold` — the
/// paper's search-space reduction ("selecting only locations with confidence
/// greater than or equal to some threshold (i.e. 1%)").
[[nodiscard]] std::vector<std::uint16_t> locations_of_interest(
    BlackBoxModel& model,
    std::span<const mobility::Window> observation_windows, double threshold);

}  // namespace pelican::attack
