#include "attack/enumeration.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "nn/loss.hpp"

namespace pelican::attack {

namespace {

using mobility::kDaysPerWeek;
using mobility::kDurationBins;
using mobility::kEntryBins;
using mobility::kMinutesPerDay;
using mobility::kMinutesPerDurationBin;
using mobility::kMinutesPerEntryBin;
using mobility::StepFeatures;
using mobility::Window;

/// Brute force over one unknown step: every (entry, duration, location,
/// day) combination. Only defined for A1/A2 (A3 would need the cross
/// product of two full steps, which the paper only treats via the smarter
/// methods).
///
/// This is the dominant enumeration cost of the attack benches, and it is
/// embarrassingly parallel: each entry bin owns a fixed-size disjoint slice
/// of the output, so the slices are filled across ThreadPool::global() and
/// the merged ordering is identical to the serial loop by construction.
std::vector<Candidate> brute_force(Adversary adversary, const Window& window,
                                   std::span<const std::uint16_t> locations,
                                   bool parallel) {
  if (adversary == Adversary::kA3) {
    throw std::invalid_argument(
        "brute force is not defined for adversary A3 (two unknown steps)");
  }
  const std::size_t unknown = target_step(adversary);
  const std::size_t per_entry = static_cast<std::size_t>(kDurationBins) *
                                locations.size() * kDaysPerWeek;
  std::vector<Candidate> out(static_cast<std::size_t>(kEntryBins) *
                             per_entry);
  Candidate base;
  base.steps[0] = window.steps[0];
  base.steps[1] = window.steps[1];
  const auto fill_entry_slice = [&](std::size_t e) {
    Candidate* slot = out.data() + e * per_entry;
    for (int d = 0; d < kDurationBins; ++d) {
      for (const std::uint16_t loc : locations) {
        for (int w = 0; w < kDaysPerWeek; ++w) {
          Candidate c = base;
          c.steps[unknown] = StepFeatures{
              static_cast<std::uint8_t>(e), static_cast<std::uint8_t>(d),
              static_cast<std::uint8_t>(w), loc};
          c.guess = loc;
          *slot++ = c;
        }
      }
    }
  };
  // Only cross into the pool when it has workers: the type-erased callback
  // blocks inlining of the fill loop, which costs ~1.5x when the "parallel"
  // path would degenerate to one thread anyway.
  if (parallel && ThreadPool::global().size() > 0) {
    parallel_for(kEntryBins, fill_entry_slice);
  } else {
    for (std::size_t e = 0; e < kEntryBins; ++e) fill_entry_slice(e);
  }
  return out;
}

/// Time-based candidates for A1: x_{t-2} known, so e_{t-1} and the day are
/// derived; enumerate (duration, location) of x_{t-1}.
std::vector<Candidate> time_based_a1(const Window& window,
                                     std::span<const std::uint16_t> locations) {
  const StepFeatures& known = window.steps[0];
  const std::uint8_t entry = derive_next_entry_bin(known.entry_bin,
                                                   known.duration_bin);
  const std::uint8_t day =
      crosses_midnight(known.entry_bin, known.duration_bin)
          ? static_cast<std::uint8_t>((known.day_of_week + 1) % kDaysPerWeek)
          : known.day_of_week;
  std::vector<Candidate> out;
  out.reserve(static_cast<std::size_t>(kDurationBins) * locations.size());
  for (int d = 0; d < kDurationBins; ++d) {
    for (const std::uint16_t loc : locations) {
      Candidate c;
      c.steps[0] = known;
      c.steps[1] =
          StepFeatures{entry, static_cast<std::uint8_t>(d), day, loc};
      c.guess = loc;
      out.push_back(c);
    }
  }
  return out;
}

/// Time-based candidates for A2: x_{t-1} known; e_{t-2} = e_{t-1} - d_{t-2}
/// for each hypothesized duration; enumerate (duration, location) of
/// x_{t-2}.
std::vector<Candidate> time_based_a2(const Window& window,
                                     std::span<const std::uint16_t> locations) {
  const StepFeatures& known = window.steps[1];
  std::vector<Candidate> out;
  out.reserve(static_cast<std::size_t>(kDurationBins) * locations.size());
  for (int d = 0; d < kDurationBins; ++d) {
    const auto db = static_cast<std::uint8_t>(d);
    const std::uint8_t entry = derive_prev_entry_bin(known.entry_bin, db);
    // If subtracting the duration wrapped past midnight, the previous
    // session belongs to the previous day.
    const int bins_back =
        d * kMinutesPerDurationBin / kMinutesPerEntryBin;
    const bool wrapped = static_cast<int>(known.entry_bin) < bins_back;
    const std::uint8_t day =
        wrapped ? static_cast<std::uint8_t>((known.day_of_week +
                                             kDaysPerWeek - 1) %
                                            kDaysPerWeek)
                : known.day_of_week;
    for (const std::uint16_t loc : locations) {
      Candidate c;
      c.steps[0] = StepFeatures{entry, db, day, loc};
      c.steps[1] = known;
      c.guess = loc;
      out.push_back(c);
    }
  }
  return out;
}

/// A3 context templates for the fully-unknown older step: (entry bin,
/// duration bin, day) triples spanning a weekday morning/afternoon/evening
/// and a weekend slot.
struct ContextTemplate {
  std::uint8_t entry_bin;
  std::uint8_t duration_bin;
  std::uint8_t day;
};
constexpr ContextTemplate kA3Templates[] = {
    {18, 8, 2},   // 09:00 for ~85 min on a Wednesday (class)
    {26, 8, 2},   // 13:00 afternoon block
    {38, 17, 2},  // 19:00 long evening stay
    {20, 8, 6},   // 10:00 on a Sunday
};
constexpr std::uint8_t kA3DurationBins[] = {2, 8, 17};  // short/medium/long

/// Most probable `count` locations under the prior — plausible context
/// locations for the unknown older step.
std::vector<std::uint16_t> top_prior_locations(std::span<const double> prior,
                                               std::size_t count) {
  const auto top = nn::topk_indices(prior, count);
  std::vector<std::uint16_t> out;
  out.reserve(top.size());
  for (const std::size_t i : top) {
    if (prior[i] > 0.0) out.push_back(static_cast<std::uint16_t>(i));
  }
  if (out.empty()) out.push_back(0);
  return out;
}

/// Time-based candidates for A3: both steps unknown. The older step is
/// marginalized over context templates x plausible prior locations; the
/// recent step's entry/day derive from each template and its (duration,
/// location) guess is enumerated as in A1.
std::vector<Candidate> time_based_a3(std::span<const std::uint16_t> locations,
                                     std::span<const double> prior) {
  const auto context_locations = top_prior_locations(prior, 3);
  std::vector<Candidate> out;
  out.reserve(std::size(kA3Templates) * context_locations.size() *
              std::size(kA3DurationBins) * locations.size());
  for (const ContextTemplate& tmpl : kA3Templates) {
    for (const std::uint16_t context_loc : context_locations) {
      const StepFeatures older{tmpl.entry_bin, tmpl.duration_bin, tmpl.day,
                               context_loc};
      const std::uint8_t entry =
          derive_next_entry_bin(tmpl.entry_bin, tmpl.duration_bin);
      const std::uint8_t day =
          crosses_midnight(tmpl.entry_bin, tmpl.duration_bin)
              ? static_cast<std::uint8_t>((tmpl.day + 1) % kDaysPerWeek)
              : tmpl.day;
      for (const std::uint8_t d : kA3DurationBins) {
        for (const std::uint16_t loc : locations) {
          Candidate c;
          c.steps[0] = older;
          c.steps[1] = StepFeatures{entry, d, day, loc};
          c.guess = loc;
          out.push_back(c);
        }
      }
    }
  }
  return out;
}

}  // namespace

std::uint8_t derive_next_entry_bin(std::uint8_t entry_bin,
                                   std::uint8_t duration_bin) {
  const int minutes = static_cast<int>(entry_bin) * kMinutesPerEntryBin +
                      static_cast<int>(duration_bin) * kMinutesPerDurationBin;
  return static_cast<std::uint8_t>((minutes / kMinutesPerEntryBin) %
                                   kEntryBins);
}

bool crosses_midnight(std::uint8_t entry_bin, std::uint8_t duration_bin) {
  const int minutes = static_cast<int>(entry_bin) * kMinutesPerEntryBin +
                      static_cast<int>(duration_bin) * kMinutesPerDurationBin;
  return minutes >= kMinutesPerDay;
}

std::uint8_t derive_prev_entry_bin(std::uint8_t entry_bin,
                                   std::uint8_t duration_bin) {
  // Exact inverse of derive_next_entry_bin under bin-start semantics:
  // derive_next(e, d) = e + floor(d_minutes / entry_bin_minutes), so step
  // back by that many whole entry bins (wrapping at midnight).
  const int bins_back = duration_bin * kMinutesPerDurationBin /
                        kMinutesPerEntryBin;
  int e = static_cast<int>(entry_bin) - bins_back;
  while (e < 0) e += kEntryBins;
  return static_cast<std::uint8_t>(e % kEntryBins);
}

std::vector<Candidate> enumerate_candidates(
    AttackMethod method, Adversary adversary, const Window& window,
    std::span<const std::uint16_t> guess_locations,
    std::span<const double> prior, bool parallel) {
  if (guess_locations.empty()) {
    throw std::invalid_argument("enumerate_candidates: no guess locations");
  }
  switch (method) {
    case AttackMethod::kBruteForce:
      return brute_force(adversary, window, guess_locations, parallel);
    case AttackMethod::kTimeBased:
      switch (adversary) {
        case Adversary::kA1:
          return time_based_a1(window, guess_locations);
        case Adversary::kA2:
          return time_based_a2(window, guess_locations);
        case Adversary::kA3:
          return time_based_a3(guess_locations, prior);
      }
      break;
    case AttackMethod::kGradientDescent:
      throw std::invalid_argument(
          "gradient descent does not enumerate; use run_gradient_inversion");
  }
  throw std::invalid_argument("enumerate_candidates: unknown method");
}

}  // namespace pelican::attack
