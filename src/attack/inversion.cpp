#include "attack/inversion.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/timer.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "models/window_dataset.hpp"

namespace pelican::attack {

double InversionResult::at_k(std::size_t k) const {
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i] == k) return topk_accuracy[i];
  }
  throw std::invalid_argument("InversionResult::at_k: k not evaluated");
}

std::vector<double> score_candidates(BlackBoxModel& model,
                                     std::span<const Candidate> candidates,
                                     std::uint16_t observed_next,
                                     std::span<const double> prior,
                                     std::size_t query_batch) {
  if (query_batch == 0) {
    throw std::invalid_argument("score_candidates: query_batch must be > 0");
  }
  const mobility::EncodingSpec& spec = model.spec();
  std::vector<double> scores(model.num_classes(), 0.0);

  for (std::size_t start = 0; start < candidates.size();
       start += query_batch) {
    const std::size_t count =
        std::min(query_batch, candidates.size() - start);
    nn::Sequence x(mobility::kWindowSteps,
                   nn::Matrix(count, spec.input_dim(), 0.0f));
    for (std::size_t i = 0; i < count; ++i) {
      models::encode_steps(candidates[start + i].steps, spec, x, i);
    }
    const nn::Matrix confidences = model.query(x);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint16_t guess = candidates[start + i].guess;
      const double score =
          static_cast<double>(confidences(i, observed_next)) * prior[guess];
      scores[guess] = std::max(scores[guess], score);
    }
  }
  return scores;
}

InversionResult run_inversion(
    BlackBoxModel& model, std::span<const mobility::Window> target_windows,
    std::span<const mobility::Window> observation_windows,
    std::span<const double> prior, const InversionConfig& config) {
  if (prior.size() != model.num_classes()) {
    throw std::invalid_argument("run_inversion: prior size mismatch");
  }
  if (config.ks.empty()) {
    throw std::invalid_argument("run_inversion: no ks requested");
  }

  // Guess space: full domain for brute force, locations-of-interest
  // otherwise (the paper's 1%-confidence search-space reduction).
  std::vector<std::uint16_t> guesses;
  if (config.method == AttackMethod::kBruteForce) {
    guesses.resize(model.num_classes());
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      guesses[i] = static_cast<std::uint16_t>(i);
    }
  } else {
    guesses =
        locations_of_interest(model, observation_windows,
                              config.loi_threshold);
    if (guesses.empty()) {
      guesses.push_back(0);  // degenerate model: keep the attack well-defined
    }
  }

  const std::size_t step = target_step(config.adversary);
  const std::size_t limit =
      config.max_windows == 0
          ? target_windows.size()
          : std::min(config.max_windows, target_windows.size());

  InversionResult result;
  result.ks = config.ks;
  result.topk_accuracy.assign(config.ks.size(), 0.0);

  Stopwatch watch;
  for (std::size_t w = 0; w < limit; ++w) {
    const mobility::Window& window = target_windows[w];
    const auto candidates = enumerate_candidates(
        config.method, config.adversary, window, guesses, prior);
    const auto scores =
        score_candidates(model, candidates, window.next_location, prior,
                         config.query_batch);
    result.model_queries += candidates.size();

    const std::uint16_t truth = window.steps[step].location;
    for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
      // Rank locations by score; count a hit when the true historical
      // location is within the top-k. Scores of never-guessed locations
      // are 0 and lose ties to guessed ones only via the deterministic
      // index tie-break, matching nn::topk semantics.
      const auto top = nn::topk_indices(std::span<const double>(scores),
                                        config.ks[ki]);
      if (std::find(top.begin(), top.end(),
                    static_cast<std::size_t>(truth)) != top.end()) {
        result.topk_accuracy[ki] += 1.0;
      }
    }
    ++result.windows_attacked;
  }
  result.attack_seconds = watch.seconds();

  if (result.windows_attacked > 0) {
    for (double& acc : result.topk_accuracy) {
      acc /= static_cast<double>(result.windows_attacked);
    }
  }
  return result;
}

}  // namespace pelican::attack
