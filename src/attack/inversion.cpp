#include "attack/inversion.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "models/window_dataset.hpp"

namespace pelican::attack {

double InversionResult::at_k(std::size_t k) const {
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (ks[i] == k) return topk_accuracy[i];
  }
  throw std::invalid_argument("InversionResult::at_k: k not evaluated");
}

std::vector<double> score_candidates(BlackBoxModel& model,
                                     std::span<const Candidate> candidates,
                                     std::uint16_t observed_next,
                                     std::span<const double> prior,
                                     std::size_t query_batch) {
  if (query_batch == 0) {
    throw std::invalid_argument("score_candidates: query_batch must be > 0");
  }
  const mobility::EncodingSpec& spec = model.spec();
  std::vector<double> scores(model.num_classes(), 0.0);

  for (std::size_t start = 0; start < candidates.size();
       start += query_batch) {
    const std::size_t count =
        std::min(query_batch, candidates.size() - start);
    // Candidates are one-hot by construction; query through the sparse
    // fast path (bit-identical confidences, nnz-row input products).
    nn::SparseSequence x(mobility::kWindowSteps,
                         nn::SparseRows(count, spec.input_dim()));
    for (nn::SparseRows& step : x) step.reserve(4 * count);
    for (std::size_t i = 0; i < count; ++i) {
      models::encode_steps(candidates[start + i].steps, spec, x, i);
    }
    const nn::Matrix confidences = model.query(x);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint16_t guess = candidates[start + i].guess;
      const double score =
          static_cast<double>(confidences(i, observed_next)) * prior[guess];
      scores[guess] = std::max(scores[guess], score);
    }
  }
  return scores;
}

std::vector<std::unique_ptr<BlackBoxModel>> make_scoring_replicas(
    BlackBoxModel& model, std::size_t count) {
  std::vector<std::unique_ptr<BlackBoxModel>> replicas;
  replicas.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto replica = model.replicate();
    if (!replica) return {};
    replicas.push_back(std::move(replica));
  }
  return replicas;
}

std::vector<double> score_candidates_parallel(
    BlackBoxModel& model, std::span<const Candidate> candidates,
    std::uint16_t observed_next, std::span<const double> prior,
    std::size_t query_batch,
    std::span<const std::unique_ptr<BlackBoxModel>> replicas) {
  // One contiguous chunk per worker. Chunking (not per-batch round-robin)
  // keeps every worker on one replica no matter which pool thread picks the
  // index up, and a worker count of one degenerates to the serial path.
  const std::size_t workers =
      std::min(replicas.size() + 1,
               std::max<std::size_t>(1, candidates.size() / query_batch));
  if (workers <= 1) {
    return score_candidates(model, candidates, observed_next, prior,
                            query_batch);
  }
  std::vector<BlackBoxModel*> models;
  models.reserve(workers);
  models.push_back(&model);
  for (std::size_t i = 0; i + 1 < workers; ++i) {
    models.push_back(replicas[i].get());
  }

  std::vector<std::vector<double>> partial(workers);
  parallel_for(workers, [&](std::size_t w) {
    const std::size_t lo = candidates.size() * w / workers;
    const std::size_t hi = candidates.size() * (w + 1) / workers;
    partial[w] = score_candidates(*models[w], candidates.subspan(lo, hi - lo),
                                  observed_next, prior, query_batch);
  });

  // Deterministic merge: per-location max in ascending worker order. Max is
  // order-independent over these scores anyway (ties pick the same value),
  // so any worker count yields the bits the serial loop yields.
  std::vector<double> scores = std::move(partial[0]);
  for (std::size_t w = 1; w < workers; ++w) {
    for (std::size_t l = 0; l < scores.size(); ++l) {
      scores[l] = std::max(scores[l], partial[w][l]);
    }
  }
  return scores;
}

InversionResult run_inversion(
    BlackBoxModel& model, std::span<const mobility::Window> target_windows,
    std::span<const mobility::Window> observation_windows,
    std::span<const double> prior, const InversionConfig& config) {
  if (prior.size() != model.num_classes()) {
    throw std::invalid_argument("run_inversion: prior size mismatch");
  }
  if (config.ks.empty()) {
    throw std::invalid_argument("run_inversion: no ks requested");
  }

  // Guess space: full domain for brute force, locations-of-interest
  // otherwise (the paper's 1%-confidence search-space reduction).
  std::vector<std::uint16_t> guesses;
  if (config.method == AttackMethod::kBruteForce) {
    guesses.resize(model.num_classes());
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      guesses[i] = static_cast<std::uint16_t>(i);
    }
  } else {
    guesses =
        locations_of_interest(model, observation_windows,
                              config.loi_threshold);
    if (guesses.empty()) {
      guesses.push_back(0);  // degenerate model: keep the attack well-defined
    }
  }

  const std::size_t step = target_step(config.adversary);
  const std::size_t limit =
      config.max_windows == 0
          ? target_windows.size()
          : std::min(config.max_windows, target_windows.size());

  InversionResult result;
  result.ks = config.ks;
  result.topk_accuracy.assign(config.ks.size(), 0.0);

  // Per-worker model replicas, built on the first window whose candidate
  // set is large enough for parallel scoring to engage (time-based attacks
  // enumerate tens of candidates — cloning a model per core for them would
  // be pure waste), then reused for every later window. Candidate scoring
  // — the dominant serial cost once enumeration went parallel — then spans
  // the pool; replicas charge the original model's query budget, so the
  // audit trail is identical to serial scoring.
  std::vector<std::unique_ptr<BlackBoxModel>> replicas;
  bool replicas_built = false;

  Stopwatch watch;
  for (std::size_t w = 0; w < limit; ++w) {
    const mobility::Window& window = target_windows[w];
    const auto candidates = enumerate_candidates(
        config.method, config.adversary, window, guesses, prior);
    if (config.parallel_scoring && !replicas_built &&
        ThreadPool::global().size() > 0 &&
        candidates.size() >= 2 * config.query_batch) {
      replicas = make_scoring_replicas(model, ThreadPool::global().size());
      replicas_built = true;
    }
    const auto scores = score_candidates_parallel(
        model, candidates, window.next_location, prior, config.query_batch,
        replicas);
    result.model_queries += candidates.size();

    const std::uint16_t truth = window.steps[step].location;
    for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
      // Rank locations by score; count a hit when the true historical
      // location is within the top-k. Scores of never-guessed locations
      // are 0 and lose ties to guessed ones only via the deterministic
      // index tie-break, matching nn::topk semantics.
      const auto top = nn::topk_indices(std::span<const double>(scores),
                                        config.ks[ki]);
      if (std::find(top.begin(), top.end(),
                    static_cast<std::size_t>(truth)) != top.end()) {
        result.topk_accuracy[ki] += 1.0;
      }
    }
    ++result.windows_attacked;
  }
  result.attack_seconds = watch.seconds();

  if (result.windows_attacked > 0) {
    for (double& acc : result.topk_accuracy) {
      acc /= static_cast<double>(result.windows_attacked);
    }
  }
  return result;
}

}  // namespace pelican::attack
