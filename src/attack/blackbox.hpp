// The adversary's view of a deployed model: query encoded inputs, receive
// confidence scores for every class. Pelican's deployment (with or without
// the privacy layer) implements this interface; attacks are written against
// it so the same attack code measures leakage before and after the defense.
#pragma once

#include <cstddef>
#include <memory>

#include "mobility/dataset.hpp"
#include "nn/model.hpp"

namespace pelican::attack {

class BlackBoxModel {
 public:
  virtual ~BlackBoxModel() = default;

  /// Confidence scores (rows sum to 1) for a batch of encoded windows.
  [[nodiscard]] virtual nn::Matrix query(const nn::Sequence& input) = 0;

  /// Sparse-encoded query — the attack scorer's fast path (candidate
  /// windows are one-hot). The default densifies and delegates, so existing
  /// implementations keep working; real deployments override with the
  /// gather kernels and return bit-identical confidences either way.
  [[nodiscard]] virtual nn::Matrix query(const nn::SparseSequence& input) {
    return query(nn::to_dense(input));
  }

  /// An independent replica serving the same model: same weights, same
  /// privacy behavior, but its own forward-pass caches, so replicas can be
  /// queried from different threads concurrently (parallel candidate
  /// scoring). Queries against a replica count against the ORIGINAL's
  /// budget, and the replica must not outlive it. Returns nullptr when the
  /// implementation cannot replicate (scoring then stays serial).
  [[nodiscard]] virtual std::unique_ptr<BlackBoxModel> replicate() {
    return nullptr;
  }

  [[nodiscard]] virtual std::size_t num_classes() const = 0;

  /// Encoding layout the model was trained with (needed to build candidate
  /// inputs). Part of the service API: the provider submits inputs in this
  /// format anyway.
  [[nodiscard]] virtual const mobility::EncodingSpec& spec() const = 0;
};

/// Adapter exposing a raw SequenceClassifier as a black box with standard
/// softmax confidences — a deployment *without* Pelican's privacy layer.
class PlainBlackBox final : public BlackBoxModel {
 public:
  PlainBlackBox(nn::SequenceClassifier& model, mobility::EncodingSpec spec)
      : model_(&model), spec_(spec) {}

  [[nodiscard]] nn::Matrix query(const nn::Sequence& input) override {
    return model_->predict_proba(input);
  }
  [[nodiscard]] nn::Matrix query(const nn::SparseSequence& input) override {
    return model_->predict_proba(input);
  }

  /// Replicas own a deep copy of the model (the adapter itself only
  /// borrows), giving each scoring worker private forward caches.
  [[nodiscard]] std::unique_ptr<BlackBoxModel> replicate() override {
    auto owned = std::make_shared<nn::SequenceClassifier>(model_->clone());
    auto copy = std::make_unique<PlainBlackBox>(*owned, spec_);
    copy->owned_ = std::move(owned);
    return copy;
  }

  [[nodiscard]] std::size_t num_classes() const override {
    return model_->num_classes();
  }
  [[nodiscard]] const mobility::EncodingSpec& spec() const override {
    return spec_;
  }

 private:
  nn::SequenceClassifier* model_;
  std::shared_ptr<nn::SequenceClassifier> owned_;  // set on replicas only
  mobility::EncodingSpec spec_;
};

}  // namespace pelican::attack
