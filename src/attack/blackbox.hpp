// The adversary's view of a deployed model: query encoded inputs, receive
// confidence scores for every class. Pelican's deployment (with or without
// the privacy layer) implements this interface; attacks are written against
// it so the same attack code measures leakage before and after the defense.
#pragma once

#include <cstddef>

#include "mobility/dataset.hpp"
#include "nn/model.hpp"

namespace pelican::attack {

class BlackBoxModel {
 public:
  virtual ~BlackBoxModel() = default;

  /// Confidence scores (rows sum to 1) for a batch of encoded windows.
  [[nodiscard]] virtual nn::Matrix query(const nn::Sequence& input) = 0;

  [[nodiscard]] virtual std::size_t num_classes() const = 0;

  /// Encoding layout the model was trained with (needed to build candidate
  /// inputs). Part of the service API: the provider submits inputs in this
  /// format anyway.
  [[nodiscard]] virtual const mobility::EncodingSpec& spec() const = 0;
};

/// Adapter exposing a raw SequenceClassifier as a black box with standard
/// softmax confidences — a deployment *without* Pelican's privacy layer.
class PlainBlackBox final : public BlackBoxModel {
 public:
  PlainBlackBox(nn::SequenceClassifier& model, mobility::EncodingSpec spec)
      : model_(&model), spec_(spec) {}

  [[nodiscard]] nn::Matrix query(const nn::Sequence& input) override {
    return model_->predict_proba(input);
  }
  [[nodiscard]] std::size_t num_classes() const override {
    return model_->num_classes();
  }
  [[nodiscard]] const mobility::EncodingSpec& spec() const override {
    return spec_;
  }

 private:
  nn::SequenceClassifier* model_;
  mobility::EncodingSpec spec_;
};

}  // namespace pelican::attack
