#include "attack/prior.hpp"

#include <algorithm>
#include <stdexcept>
#include "models/window_dataset.hpp"

namespace pelican::attack {

namespace {

nn::Matrix query_windows(BlackBoxModel& model,
                         std::span<const mobility::Window> windows) {
  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(windows.size(), model.spec().input_dim(), 0.0f));
  for (std::size_t i = 0; i < windows.size(); ++i) {
    models::encode_window(windows[i], model.spec(), x, i);
  }
  return model.query(x);
}

}  // namespace

std::vector<double> observed_output_distribution(
    BlackBoxModel& model,
    std::span<const mobility::Window> observation_windows) {
  std::vector<double> dist(model.num_classes(), 0.0);
  if (observation_windows.empty()) {
    throw std::invalid_argument(
        "observed_output_distribution: no observation windows");
  }
  const nn::Matrix probs = query_windows(model, observation_windows);
  for (std::size_t r = 0; r < probs.rows(); ++r) {
    for (std::size_t c = 0; c < probs.cols(); ++c) {
      dist[c] += probs(r, c);
    }
  }
  const double total = static_cast<double>(probs.rows());
  for (double& d : dist) d /= total;
  return dist;
}

std::vector<double> make_prior(
    PriorKind kind, std::span<const mobility::Window> user_train_windows,
    BlackBoxModel& model,
    std::span<const mobility::Window> observation_windows) {
  const std::size_t m = model.num_classes();
  switch (kind) {
    case PriorKind::kTrue:
      return mobility::location_marginals(user_train_windows, m);
    case PriorKind::kNone:
      return std::vector<double>(m, 1.0 / static_cast<double>(m));
    case PriorKind::kPredict:
      return observed_output_distribution(model, observation_windows);
    case PriorKind::kEstimate: {
      const auto observed =
          observed_output_distribution(model, observation_windows);
      const std::size_t top = static_cast<std::size_t>(
          std::max_element(observed.begin(), observed.end()) -
          observed.begin());
      std::vector<double> prior(
          m, m > 1 ? 0.25 / static_cast<double>(m - 1) : 0.0);
      prior[top] = m > 1 ? 0.75 : 1.0;
      return prior;
    }
  }
  throw std::invalid_argument("make_prior: unknown prior kind");
}

std::vector<std::uint16_t> locations_of_interest(
    BlackBoxModel& model,
    std::span<const mobility::Window> observation_windows, double threshold) {
  if (observation_windows.empty()) {
    throw std::invalid_argument("locations_of_interest: no windows");
  }
  const nn::Matrix probs = query_windows(model, observation_windows);
  std::vector<std::uint16_t> interesting;
  for (std::size_t c = 0; c < probs.cols(); ++c) {
    for (std::size_t r = 0; r < probs.rows(); ++r) {
      if (probs(r, c) >= threshold) {
        interesting.push_back(static_cast<std::uint16_t>(c));
        break;
      }
    }
  }
  return interesting;
}

}  // namespace pelican::attack
