// Threat model of Section III-B: an honest-but-curious service provider
// with black-box access to a user's personalized model, the observed output
// l_t, prior knowledge p of the sensitive variable, and (depending on the
// adversary) some of the historical input features.
//
// Table I of the paper:
//   A1 knows x_{t-2} and l_t, recovers l_{t-1}.
//   A2 knows x_{t-1} and l_t, recovers l_{t-2}.
//   A3 knows only l_t,        recovers l_{t-1} (or l_{t-2}).
#pragma once

#include <cstdint>

namespace pelican::attack {

enum class Adversary : std::uint8_t { kA1 = 0, kA2, kA3 };

[[nodiscard]] constexpr const char* to_string(Adversary adversary) noexcept {
  switch (adversary) {
    case Adversary::kA1:
      return "A1";
    case Adversary::kA2:
      return "A2";
    case Adversary::kA3:
      return "A3";
  }
  return "?";
}

/// How the marginal prior p over the sensitive variable is obtained
/// (Section IV-B.3): exact training marginals, nothing (uniform), predicted
/// by observing model outputs, or a crude 75%-mass estimate on the most
/// probable value.
enum class PriorKind : std::uint8_t { kTrue = 0, kNone, kPredict, kEstimate };

[[nodiscard]] constexpr const char* to_string(PriorKind prior) noexcept {
  switch (prior) {
    case PriorKind::kTrue:
      return "true";
    case PriorKind::kNone:
      return "none";
    case PriorKind::kPredict:
      return "predict";
    case PriorKind::kEstimate:
      return "estimate";
  }
  return "?";
}

/// Enumeration strategy (Section III-B2, evaluated in Fig. 2a / Table II).
enum class AttackMethod : std::uint8_t {
  kBruteForce = 0,      ///< Enumerate every feature of the unknown step.
  kTimeBased,           ///< Exploit session contiguity; enumerate (d, l).
  kGradientDescent,     ///< Reconstruct the input by backpropagation.
};

[[nodiscard]] constexpr const char* to_string(AttackMethod method) noexcept {
  switch (method) {
    case AttackMethod::kBruteForce:
      return "brute force";
    case AttackMethod::kTimeBased:
      return "time-based";
    case AttackMethod::kGradientDescent:
      return "gradient descent";
  }
  return "?";
}

/// Index of the unknown (attacked) step within the 2-step window.
/// A1 misses x_{t-1} (index 1); A2 misses x_{t-2} (index 0); A3 misses both
/// and is scored on l_{t-1}, matching the paper's "l_{t-1} or l_{t-2}" goal.
[[nodiscard]] constexpr std::size_t target_step(Adversary adversary) noexcept {
  return adversary == Adversary::kA2 ? 0 : 1;
}

}  // namespace pelican::attack
