// Gradient-descent model inversion (Section III-B2): reconstruct the
// unknown input step by backpropagating the loss of the observed output
// through the model to a *soft* candidate input, using temperature scaling
// (Equation 1) to keep the per-block relaxations close to one-hot.
//
// This attack needs gradient access (deep models are differentiable
// mappings, as the paper notes), so it takes the model itself rather than
// the black-box interface. The paper finds it markedly weaker than
// enumeration on discrete mobility domains (<16% top-3, Fig. 2a) — a result
// this implementation reproduces.
#pragma once

#include <cstdint>
#include <span>

#include "attack/inversion.hpp"
#include "attack/threat.hpp"
#include "mobility/dataset.hpp"
#include "nn/model.hpp"

namespace pelican::attack {

struct GradientAttackConfig {
  std::size_t iterations = 150;
  double lr = 2.0;
  /// Temperature of the per-block softmax that keeps candidate features
  /// near-discrete during descent.
  double input_temperature = 0.5;
  /// Weight of the log-prior bonus on the location block.
  double prior_weight = 0.05;
};

/// Runs the gradient-descent inversion against every target window.
/// Interpretation of fields in the returned InversionResult matches
/// run_inversion; `model_queries` counts forward passes.
[[nodiscard]] InversionResult run_gradient_inversion(
    nn::SequenceClassifier& model, const mobility::EncodingSpec& spec,
    std::span<const mobility::Window> target_windows,
    std::span<const double> prior, const InversionConfig& config,
    const GradientAttackConfig& gradient_config);

}  // namespace pelican::attack
