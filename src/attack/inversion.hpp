// Model-inversion attack driver (Section III-B2, evaluated in Section IV).
//
// For each attacked window the adversary:
//  1. builds a candidate set (enumeration.hpp) for the unknown step(s),
//  2. queries the black-box model with every candidate input,
//  3. scores each location guess by
//       max over candidates with that guess of  P_M(l_t | candidate) * p[guess]
//     (the classic confidence-times-prior inversion score), and
//  4. ranks guesses; the attack "hits at k" when the true historical
//     location is among the top-k guesses.
// Aggregate attack accuracy = fraction of attacked windows hit, the metric
// reported in every attack figure of the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "attack/blackbox.hpp"
#include "attack/enumeration.hpp"
#include "attack/prior.hpp"
#include "attack/threat.hpp"
#include "mobility/dataset.hpp"

namespace pelican::attack {

struct InversionConfig {
  Adversary adversary = Adversary::kA1;
  AttackMethod method = AttackMethod::kTimeBased;
  /// Locations-of-interest confidence cutoff (1% in the paper). Applied to
  /// the time-based method only; brute force enumerates the full domain.
  double loi_threshold = 0.01;
  /// Attack at most this many windows (0 = all provided).
  std::size_t max_windows = 0;
  /// Evaluation ks, ascending.
  std::vector<std::size_t> ks = {1, 3, 5, 7};
  /// Candidates per model query batch (memory/throughput trade-off).
  std::size_t query_batch = 1024;
  /// Score candidates across ThreadPool::global() using per-worker model
  /// replicas (BlackBoxModel::replicate). Falls back to serial scoring when
  /// the model cannot replicate or the pool has no workers. Scores are
  /// bit-identical to the serial path for any worker count: per-candidate
  /// confidences are batch-composition-invariant (nn kernel contract) and
  /// the per-location max-merge is order-independent.
  bool parallel_scoring = true;
};

struct InversionResult {
  std::vector<std::size_t> ks;
  std::vector<double> topk_accuracy;  ///< Parallel to ks, in [0, 1].
  std::size_t windows_attacked = 0;
  std::size_t model_queries = 0;      ///< Total candidate inputs scored.
  double attack_seconds = 0.0;        ///< Wall time of the attack loop.

  /// Accuracy at a requested k (must be one of ks).
  [[nodiscard]] double at_k(std::size_t k) const;
};

/// Runs the inversion attack against `model`.
///  - `target_windows`: historical windows to reconstruct (the user's
///    private training data, which the adversary does NOT see; it is used
///    only to build the per-window known features and to score success).
///  - `observation_windows`: inputs the service provider legitimately
///    observed; used for the locations-of-interest filter.
///  - `prior`: marginal prior p over locations (see make_prior).
[[nodiscard]] InversionResult run_inversion(
    BlackBoxModel& model, std::span<const mobility::Window> target_windows,
    std::span<const mobility::Window> observation_windows,
    std::span<const double> prior, const InversionConfig& config);

/// Scores one window's candidate set against the model; returns per-location
/// scores (index = location id, value = best confidence x prior). Exposed
/// for tests and for the gradient attack's shared ranking logic. This is
/// the serial reference for score_candidates_parallel.
[[nodiscard]] std::vector<double> score_candidates(
    BlackBoxModel& model, std::span<const Candidate> candidates,
    std::uint16_t observed_next, std::span<const double> prior,
    std::size_t query_batch);

/// Splits the candidate set into one contiguous chunk per worker (`model`
/// itself plus each entry of `replicas`), scores the chunks across
/// ThreadPool::global(), and max-merges the per-location scores in worker
/// order. Bit-identical to score_candidates for every replica count; with
/// no replicas it IS the serial path.
[[nodiscard]] std::vector<double> score_candidates_parallel(
    BlackBoxModel& model, std::span<const Candidate> candidates,
    std::uint16_t observed_next, std::span<const double> prior,
    std::size_t query_batch,
    std::span<const std::unique_ptr<BlackBoxModel>> replicas);

/// Builds up to `count` scoring replicas of `model`. Returns an empty
/// vector when the model does not support replication.
[[nodiscard]] std::vector<std::unique_ptr<BlackBoxModel>>
make_scoring_replicas(BlackBoxModel& model, std::size_t count);

}  // namespace pelican::attack
