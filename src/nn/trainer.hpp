// Minibatch training loop with Adam, gradient clipping, per-epoch learning-
// rate decay and optional early stopping on a validation source. This is the
// engine behind both the cloud's general-model training and the device's
// transfer-learning personalization.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nn/data.hpp"
#include "nn/model.hpp"

namespace pelican::nn {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 64;
  double lr = 1e-3;
  double weight_decay = 1e-6;  // the paper trains with weight decay 1e-6
  double grad_clip = 5.0;      // 0 disables clipping
  double lr_decay = 1.0;       // multiplicative per-epoch factor
  std::size_t patience = 0;    // early-stop after N non-improving epochs
  std::uint64_t seed = 1;      // shuffling seed
  bool shuffle = true;
};

struct TrainReport {
  std::vector<double> epoch_loss;       // mean training CE per epoch
  std::vector<double> validation_top1;  // only if a validation source given
  std::size_t epochs_run = 0;
  bool early_stopped = false;
};

/// Trains `model` in place. If `validation` is non-null and
/// config.patience > 0, restores the best-validation weights before
/// returning.
TrainReport train(SequenceClassifier& model, const BatchSource& data,
                  const TrainConfig& config,
                  const BatchSource* validation = nullptr);

/// Mean cross-entropy of `model` over `data` (inference mode).
[[nodiscard]] double evaluate_loss(SequenceClassifier& model,
                                   const BatchSource& data,
                                   std::size_t batch_size = 256);

}  // namespace pelican::nn
