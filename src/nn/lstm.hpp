// LSTM layer (Hochreiter & Schmidhuber 1997) with full backpropagation
// through time, including gradients with respect to the input sequence.
//
// Gate layout in the fused (4H) dimension is [input, forget, cell, output].
// Initial hidden and cell states are zero. The layer maps a T-step sequence
// of (batch x input_dim) to a T-step sequence of (batch x hidden_dim); the
// paper's models read the final timestep.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/layer.hpp"

namespace pelican::nn {

class Lstm final : public SequenceLayer {
 public:
  Lstm() = default;
  Lstm(std::size_t input_dim, std::size_t hidden_dim, Rng& rng);

  Sequence forward(const Sequence& input, bool training) override;

  /// One-hot fast path: computes x·W_ih^T as row gathers over the sparse
  /// entries (an embedding lookup of nnz rows of W_ih^T per timestep)
  /// instead of a dense input_dim x 4*hidden product. Bit-identical to the
  /// dense forward for finite weights (nn/sparse.hpp); backward() works
  /// after either forward.
  Sequence forward_sparse(const SparseSequence& input, bool training) override;

  Sequence backward(const Sequence& grad_output) override;

  std::vector<Matrix*> parameters() override {
    return {&w_ih_, &w_hh_, &bias_};
  }
  std::vector<Matrix*> gradients() override {
    return {&grad_w_ih_, &grad_w_hh_, &grad_bias_};
  }

  [[nodiscard]] std::size_t input_dim() const override { return w_ih_.cols(); }
  [[nodiscard]] std::size_t output_dim() const override {
    return w_hh_.cols();
  }
  [[nodiscard]] std::size_t hidden_dim() const { return w_hh_.cols(); }

  [[nodiscard]] std::unique_ptr<SequenceLayer> clone() const override;
  [[nodiscard]] std::string kind() const override { return "lstm"; }

  void save(BinaryWriter& writer) const override;
  static std::unique_ptr<Lstm> load(BinaryReader& reader);

  /// Direct weight access for tests and hand-constructed models.
  [[nodiscard]] Matrix& w_ih() noexcept { return w_ih_; }
  [[nodiscard]] Matrix& w_hh() noexcept { return w_hh_; }
  [[nodiscard]] Matrix& bias() noexcept { return bias_; }
  [[nodiscard]] const Matrix& w_ih() const noexcept { return w_ih_; }
  [[nodiscard]] const Matrix& w_hh() const noexcept { return w_hh_; }
  [[nodiscard]] const Matrix& bias() const noexcept { return bias_; }

  /// Gate-activation execution mode (nn/activations.hpp). kExact (default)
  /// keeps the bit-identical contract; kFastApprox is the opt-in
  /// bounded-error vectorized path. Not serialized — an execution
  /// preference, not a model parameter; clone() carries it.
  void set_activation_mode(ActivationMode mode) noexcept override {
    mode_ = mode;
  }
  [[nodiscard]] ActivationMode activation_mode() const noexcept {
    return mode_;
  }

 private:
  // Parameters. w_ih_: (4H x I), w_hh_: (4H x H), bias_: (1 x 4H).
  Matrix w_ih_;
  Matrix w_hh_;
  Matrix bias_;
  Matrix grad_w_ih_;
  Matrix grad_w_hh_;
  Matrix grad_bias_;
  ActivationMode mode_ = ActivationMode::kExact;

  // Forward cache (per timestep) consumed by backward(). Exactly one of
  // input / sparse_input is populated, depending on which forward ran.
  struct StepCache {
    Matrix input;            // B x I (dense forward)
    SparseRows sparse_input; // B x I (sparse forward)
    Matrix gates;            // B x 4H, post-activation [i f g o]
    Matrix cell;             // B x H, c_t
    Matrix tanh_cell;        // B x H, tanh(c_t)
    Matrix prev_hidden;      // B x H, h_{t-1}
    Matrix prev_cell;        // B x H, c_{t-1}
  };
  std::vector<StepCache> cache_;

  /// Shared body of both forwards: runs the recurrence with `input_product`
  /// supplying this timestep's x·W_ih^T pre-activations.
  template <typename InputProduct>
  Sequence run_forward(std::size_t steps, std::size_t batch,
                       InputProduct&& input_product);
};

}  // namespace pelican::nn
