#include "nn/quant_lstm.hpp"

#include <stdexcept>
#include <utility>

#include "nn/activations.hpp"

namespace pelican::nn {

QuantizedLstm::QuantizedLstm(QuantizedMatrix w_ih, QuantizedMatrix w_hh,
                             Matrix bias)
    : w_ih_(std::move(w_ih)), w_hh_(std::move(w_hh)), bias_(std::move(bias)) {
  if (w_ih_.rows() != w_hh_.rows() || w_ih_.rows() != 4 * w_hh_.cols() ||
      bias_.rows() != 1 || bias_.cols() != w_ih_.rows()) {
    throw std::invalid_argument("QuantizedLstm: inconsistent gate shapes");
  }
  w_ih_t_ = transposed_values(w_ih_);
  w_hh_t_ = transposed_values(w_hh_);
  set_trainable(false);
}

template <typename InputProduct>
Sequence QuantizedLstm::run_forward(std::size_t steps, std::size_t batch,
                                    InputProduct&& input_product) {
  const std::size_t hidden = hidden_dim();
  Sequence output(steps);

  Matrix h_prev(batch, hidden, 0.0f);
  Matrix c_prev(batch, hidden, 0.0f);
  Matrix c_next(batch, hidden);
  Matrix tanh_c(batch, hidden);  // scratch: nothing caches it (no backward)
  Matrix gates;

  const float* bias = bias_.row(0).data();
  for (std::size_t t = 0; t < steps; ++t) {
    input_product(t, gates);
    qmatmul_pre_t(h_prev, w_hh_t_, w_hh_.scales(), gates,
                  /*accumulate=*/true);

    Matrix h_next(batch, hidden);
    for (std::size_t r = 0; r < batch; ++r) {
      lstm_gate_pass(gates.data() + r * 4 * hidden, bias,
                     c_prev.data() + r * hidden, c_next.data() + r * hidden,
                     tanh_c.data() + r * hidden, h_next.data() + r * hidden,
                     hidden, mode_);
    }
    std::swap(c_prev, c_next);
    h_prev = h_next;
    output[t] = std::move(h_next);
  }
  return output;
}

Sequence QuantizedLstm::forward(const Sequence& input, bool /*training*/) {
  if (input.empty()) {
    throw std::invalid_argument("QuantizedLstm::forward: empty input");
  }
  const std::size_t batch = input[0].rows();
  return run_forward(input.size(), batch, [&](std::size_t t, Matrix& gates) {
    const Matrix& x = input[t];
    if (x.cols() != input_dim() || x.rows() != batch) {
      throw std::invalid_argument("QuantizedLstm::forward: shape mismatch");
    }
    qmatmul_pre_t(x, w_ih_t_, w_ih_.scales(), gates);
  });
}

Sequence QuantizedLstm::forward_sparse(const SparseSequence& input,
                                       bool /*training*/) {
  if (input.empty()) {
    throw std::invalid_argument("QuantizedLstm::forward_sparse: empty input");
  }
  const std::size_t batch = input[0].rows();
  return run_forward(input.size(), batch, [&](std::size_t t, Matrix& gates) {
    const SparseRows& x = input[t];
    if (x.cols() != input_dim() || x.rows() != batch) {
      throw std::invalid_argument(
          "QuantizedLstm::forward_sparse: shape mismatch");
    }
    sparse_qmatmul_pre_t(x, w_ih_t_, w_ih_.scales(), gates);
  });
}

Sequence QuantizedLstm::backward(const Sequence& /*grad_output*/) {
  throw std::logic_error(
      "QuantizedLstm::backward: quantized layers are inference-only; train "
      "the fp32 original and re-publish");
}

std::unique_ptr<SequenceLayer> QuantizedLstm::clone() const {
  auto copy = std::make_unique<QuantizedLstm>(w_ih_, w_hh_, bias_);
  copy->mode_ = mode_;
  return copy;
}

void QuantizedLstm::save(BinaryWriter& writer) const {
  writer.write_string(kind());
  w_ih_.save(writer);
  w_hh_.save(writer);
  writer.write_f32_span(bias_.flat());
}

std::unique_ptr<QuantizedLstm> QuantizedLstm::load(BinaryReader& reader) {
  QuantizedMatrix w_ih = QuantizedMatrix::load(reader);
  QuantizedMatrix w_hh = QuantizedMatrix::load(reader);
  Matrix bias(1, w_ih.rows());
  const auto b = reader.read_f32_vector();
  if (b.size() != bias.size()) {
    throw SerializeError("QuantizedLstm::load: bias size mismatch");
  }
  std::copy(b.begin(), b.end(), bias.data());
  return std::make_unique<QuantizedLstm>(std::move(w_ih), std::move(w_hh),
                                         std::move(bias));
}

}  // namespace pelican::nn
