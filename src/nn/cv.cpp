#include "nn/cv.hpp"

namespace pelican::nn {

std::vector<TimeSeriesFold> time_series_folds(std::size_t n, std::size_t k) {
  if (k == 0) throw std::invalid_argument("time_series_folds: k must be > 0");
  if (n < k + 1) {
    throw std::invalid_argument(
        "time_series_folds: need at least k+1 samples");
  }
  std::vector<TimeSeriesFold> folds;
  folds.reserve(k);
  // k+1 slices; fold i trains on slices [0, i] and validates on slice i+1.
  for (std::size_t i = 0; i < k; ++i) {
    TimeSeriesFold fold;
    fold.train_end = static_cast<std::uint32_t>(n * (i + 1) / (k + 1));
    fold.validation_end = static_cast<std::uint32_t>(n * (i + 2) / (k + 1));
    if (fold.train_end == 0 || fold.validation_end <= fold.train_end) {
      continue;  // degenerate slice at very small n
    }
    folds.push_back(fold);
  }
  if (folds.empty()) {
    throw std::invalid_argument("time_series_folds: n too small for k folds");
  }
  return folds;
}

double cross_validate(const BatchSource& data,
                      std::span<const TimeSeriesFold> folds,
                      const FoldScorer& score) {
  if (folds.empty()) {
    throw std::invalid_argument("cross_validate: no folds");
  }
  double total = 0.0;
  for (const auto& fold : folds) {
    const SubsetSource train = SubsetSource::range(data, 0, fold.train_end);
    const SubsetSource validation =
        SubsetSource::range(data, fold.train_end, fold.validation_end);
    total += score(train, validation);
  }
  return total / static_cast<double>(folds.size());
}

}  // namespace pelican::nn
