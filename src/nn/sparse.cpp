#include "nn/sparse.hpp"

#include <algorithm>
#include <stdexcept>

namespace pelican::nn {

void SparseRows::add(std::size_t row, std::size_t col, float val) {
  if (row >= rows_ || col >= cols_) {
    throw std::out_of_range("SparseRows::add: entry outside matrix");
  }
  if (!row_start_.empty()) {
    const std::size_t open_row = row_start_.size() - 1;
    if (row < open_row) {
      throw std::invalid_argument("SparseRows::add: rows must be appended in "
                                  "nondecreasing order");
    }
    if (row == open_row && !entries_.empty() &&
        row_start_[open_row] < entries_.size() &&
        entries_.back().col >= col) {
      throw std::invalid_argument("SparseRows::add: columns within a row must "
                                  "be strictly ascending");
    }
  }
  while (row_start_.size() <= row) {
    row_start_.push_back(static_cast<std::uint32_t>(entries_.size()));
  }
  entries_.push_back({static_cast<std::uint32_t>(col), val});
}

Matrix SparseRows::to_dense() const {
  Matrix dense(rows_, cols_, 0.0f);
  for (std::size_t r = 0; r < row_start_.size(); ++r) {
    float* out = dense.data() + r * cols_;
    for (const Entry& e : row(r)) out[e.col] = e.val;
  }
  return dense;
}

std::vector<Matrix> to_dense(const SparseSequence& sparse) {
  std::vector<Matrix> dense;
  dense.reserve(sparse.size());
  for (const SparseRows& step : sparse) dense.push_back(step.to_dense());
  return dense;
}

namespace {

/// Gathers row r's product chain into `row` (length n, caller-zeroed),
/// reading either a packed (k x n) transposed panel or strided columns of
/// the original (n x k) weight.
void gather_row(std::span<const SparseRows::Entry> entries,
                const float* __restrict w, std::size_t n, std::size_t stride,
                bool packed, float* __restrict row) {
  for (const SparseRows::Entry& e : entries) {
    const float av = e.val;
    if (packed) {
      const float* __restrict w_row = w + e.col * n;
      for (std::size_t j = 0; j < n; ++j) row[j] += av * w_row[j];
    } else {
      const float* __restrict w_col = w + e.col;
      for (std::size_t j = 0; j < n; ++j) row[j] += av * w_col[j * stride];
    }
  }
}

/// Shared body of the two x*w^T kernels. Mirrors matmul_bt's accumulate
/// semantics: each output element's product chain starts at +0.0f and is
/// added to any existing value ONCE, so sparse results stay bit-identical
/// to the dense kernel in both modes.
void sparse_product(const SparseRows& x, const float* w, std::size_t n,
                    std::size_t stride, bool packed, Matrix& out,
                    bool accumulate) {
  const std::size_t m = x.rows();
  const bool into_existing =
      accumulate && out.rows() == m && out.cols() == n;
  if (!into_existing) {
    out.resize(m, n);
    for (std::size_t r = 0; r < m; ++r) {
      gather_row(x.row(r), w, n, stride, packed, out.data() + r * n);
    }
    return;
  }
  std::vector<float> chain(n);
  for (std::size_t r = 0; r < m; ++r) {
    const auto entries = x.row(r);
    if (entries.empty()) continue;  // chain is +0; adding it is a no-op
    std::fill(chain.begin(), chain.end(), 0.0f);
    gather_row(entries, w, n, stride, packed, chain.data());
    float* __restrict out_row = out.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) out_row[j] += chain[j];
  }
}

}  // namespace

void sparse_matmul_pre_t(const SparseRows& x, const Matrix& wt, Matrix& out,
                         bool accumulate) {
  if (x.cols() != wt.rows()) {
    throw std::invalid_argument("sparse_matmul_pre_t: inner dimension");
  }
  sparse_product(x, wt.data(), wt.cols(), 0, /*packed=*/true, out,
                 accumulate);
}

void sparse_matmul_bt(const SparseRows& x, const Matrix& w, Matrix& out,
                      bool accumulate) {
  if (x.cols() != w.cols()) {
    throw std::invalid_argument("sparse_matmul_bt: inner dimension");
  }
  const std::size_t k = x.cols();
  // Packing w^T costs k*n and turns every entry into a contiguous axpy;
  // only worth it when the gathered work (nnz rows of length n) outweighs
  // the pack. Below that, gather strided columns of w directly — w is small
  // enough to be cache-resident in every model this library builds.
  if (x.nnz() >= k) {
    const Matrix wt = transposed(w);
    sparse_product(x, wt.data(), wt.cols(), 0, /*packed=*/true, out,
                   accumulate);
    return;
  }
  sparse_product(x, w.data(), w.rows(), k, /*packed=*/false, out, accumulate);
}

void sparse_matmul_at(const Matrix& dy, const SparseRows& x, Matrix& out,
                      bool accumulate) {
  if (dy.rows() != x.rows()) {
    throw std::invalid_argument("sparse_matmul_at: batch dimension");
  }
  const std::size_t batch = dy.rows(), m = dy.cols(), n = x.cols();
  if (!accumulate || out.rows() != m || out.cols() != n) {
    out.resize(m, n);
  }
  // Mirror matmul_at's loop nest (batch outer, ascending) so every output
  // element accumulates its batch terms in the same order as the dense path.
  for (std::size_t r = 0; r < batch; ++r) {
    const float* __restrict dy_row = dy.data() + r * m;
    for (const SparseRows::Entry& e : x.row(r)) {
      const float xv = e.val;
      float* __restrict out_col = out.data() + e.col;
      for (std::size_t i = 0; i < m; ++i) out_col[i * n] += dy_row[i] * xv;
    }
  }
}

}  // namespace pelican::nn
