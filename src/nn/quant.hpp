// Int8 weight quantization for the serving path (ISSUE 6, the "ambitious
// rung" of the ROADMAP inference ladder).
//
// QuantizedMatrix stores a weight matrix as one int8 per element plus one
// float scale per ROW: m(r, c) ≈ values[r*cols + c] * scales[r], with
// scale = max|row| / 127 and round-to-nearest quantization. Per-row scales
// matter because the LSTM's fused 4H gate rows and a classifier head's
// class rows have very different dynamic ranges — one global scale would
// burn precision on the quiet rows. The representation is 4x smaller than
// fp32, which compounds fleet-wide: smaller checkpoints in the model store,
// fewer bytes per user on disk, and weight panels that actually fit in
// cache on the batch-1 serving path.
//
// The int8 kernels below accumulate in fp32 over the int8 weights (each
// int8 converts exactly; products and the ascending-k chain follow the same
// determinism contract as nn/matrix.hpp — bit-identical across batch sizes,
// encodings, and thread counts) and multiply by the row scale ONCE per
// output element. No dequantized fp32 weight matrix ever exists — that is
// what makes the one-hot gather "dequant-free": a gather touches nnz rows
// of int8 panel + one scale sweep, instead of first materializing the
// fp32 weights it replaced.
//
// Quantized inference is NOT bit-identical to fp32 inference — it is a
// documented approximation (weights move by at most scale/2 each). The
// accuracy/privacy tolerance contract lives in the quantization regression
// harness (tests/core/quant_regression_test.cpp): top-k agreement with the
// fp32 model and attack-resistance metrics must stay within stated bounds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/serialize.hpp"
#include "nn/matrix.hpp"
#include "nn/sparse.hpp"

namespace pelican::nn {

class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  /// Per-row symmetric quantization: scale = max|row| / 127 (0 for an
  /// all-zero row), value = round(m / scale) in [-127, 127].
  [[nodiscard]] static QuantizedMatrix quantize_rows(const Matrix& m);

  /// The fp32 matrix this quantization represents (value * row scale).
  /// For tests and tooling — the inference kernels never call this.
  [[nodiscard]] Matrix dequantize() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] std::int8_t value(std::size_t r, std::size_t c) const noexcept {
    return values_[r * cols_ + c];
  }
  [[nodiscard]] float scale(std::size_t r) const noexcept {
    return scales_[r];
  }
  [[nodiscard]] std::span<const std::int8_t> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<const float> scales() const noexcept {
    return scales_;
  }

  /// Row-major int8 view of row r (one gate/class row, contiguous).
  [[nodiscard]] std::span<const std::int8_t> row(std::size_t r) const noexcept {
    return {values_.data() + r * cols_, cols_};
  }

  /// Serialized as [u64 rows | u64 cols | i8 span values | f32 span scales]
  /// inside the checkpoint payload, so the existing header CRC-32
  /// (common/serialize.hpp) covers every quantized byte exactly as it
  /// covers fp32 weights.
  void save(BinaryWriter& writer) const;
  [[nodiscard]] static QuantizedMatrix load(BinaryReader& reader);

  bool operator==(const QuantizedMatrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int8_t> values_;  // row-major, rows_ x cols_
  std::vector<float> scales_;        // length rows_
};

/// Contiguous (cols x rows) int8 transpose of q — the gather panel for the
/// sparse kernel: entry column c selects panel row c, a contiguous run of
/// q.rows() int8 weights. Rebuilt from values() on load, never serialized.
[[nodiscard]] std::vector<std::int8_t> transposed_values(
    const QuantizedMatrix& q);

/// out = x * q^T (+ accumulate): the dense int8 product, shapes as
/// matmul_bt ((m x k)(n x k)^T -> (m x n)). Each output element accumulates
/// x(r, :) against the contiguous int8 row q(j, :) in ascending-k order and
/// multiplies by scales[j] once.
void qmatmul_bt(const Matrix& x, const QuantizedMatrix& q, Matrix& out,
                bool accumulate = false);

/// Dense product against the transposed int8 panel `qt` (=
/// transposed_values(q), k x n for q (n x k)) with q's row scales: the
/// axpy form of qmatmul_bt — each panel row is a contiguous int8 run the
/// j loop streams, so the compiler vectorizes across outputs where
/// qmatmul_bt's dot kernel is one serial chain per output. Same
/// ascending-k chain from +0 per element, scale applied once, accumulate
/// adds the finished chain once — bit-identical to qmatmul_bt(x, q, out).
/// This is the LSTM recurrence kernel (the panel is packed once at
/// QuantizedLstm construction; weights are immutable there).
void qmatmul_pre_t(const Matrix& x, std::span<const std::int8_t> qt,
                   std::span<const float> scales, Matrix& out,
                   bool accumulate = false);

/// Sparse (one-hot fast path) product against the transposed gather panel
/// `qt` (= transposed_values(q), k x n for q (n x k)) with q's row scales:
/// for each entry (col, val) of x, accumulates val * qt[col, :] into a
/// per-row fp32 chain, then applies the n scales once. With one-hot inputs
/// this touches nnz contiguous int8 rows — no dense product, no dequantized
/// weights. Bit-identical to qmatmul_bt(x.to_dense(), q, out) for finite
/// scales, by the same ±0 argument as nn/sparse.hpp.
void sparse_qmatmul_pre_t(const SparseRows& x, std::span<const std::int8_t> qt,
                          std::span<const float> scales, Matrix& out,
                          bool accumulate = false);

}  // namespace pelican::nn
