// Inverted dropout over sequence activations. Active only in training mode;
// at inference it is the identity, so deployed models (and attacks against
// them) see deterministic outputs. The paper uses dropout 0.1 between the
// general model's LSTM layers.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace pelican::nn {

class Dropout final : public SequenceLayer {
 public:
  Dropout() = default;

  /// `rate` in [0, 1): probability of zeroing an activation.
  Dropout(double rate, std::size_t dim, std::uint64_t seed);

  Sequence forward(const Sequence& input, bool training) override;
  Sequence backward(const Sequence& grad_output) override;

  std::vector<Matrix*> parameters() override { return {}; }
  std::vector<Matrix*> gradients() override { return {}; }

  [[nodiscard]] std::size_t input_dim() const override { return dim_; }
  [[nodiscard]] std::size_t output_dim() const override { return dim_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

  [[nodiscard]] std::unique_ptr<SequenceLayer> clone() const override;
  [[nodiscard]] std::string kind() const override { return "dropout"; }

  void save(BinaryWriter& writer) const override;
  static std::unique_ptr<Dropout> load(BinaryReader& reader);

 private:
  double rate_ = 0.0;
  std::size_t dim_ = 0;
  Rng rng_{0};
  Sequence masks_;  // cached keep-masks (scaled) from the last training pass
  bool last_was_training_ = false;
};

}  // namespace pelican::nn
