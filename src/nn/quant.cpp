#include "nn/quant.hpp"

#include <cmath>
#include <stdexcept>

namespace pelican::nn {

namespace {

// ap[j] += xv * panel[j] over a contiguous int8 panel row. The explicit
// vector helpers (nn/simd.hpp) lose here: SSE2 has no lane-wise int8
// sign-extend, so __builtin_convertvector at float width scalarizes with
// store/reload traffic. GCC's own vectorizer emits the efficient
// unpack + cvtdq2ps sequence once the dynamic cost model is allowed to
// look at this runtime-width loop (the default -O2 model refuses it), so
// the pragma-equivalent attribute is the fastest portable form — ~3x over
// the plain scalar loop. Per-element op chain is unchanged: the int8->fp32
// convert is exact and each j is an independent chain, so bits match the
// scalar form.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("tree-vectorize"),
               optimize("vect-cost-model=dynamic")))
#endif
void i8_axpy(float* __restrict ap, const std::int8_t* __restrict panel,
             float xv, std::size_t n) noexcept {
  for (std::size_t j = 0; j < n; ++j) {
    ap[j] += xv * static_cast<float>(panel[j]);
  }
}

}  // namespace

QuantizedMatrix QuantizedMatrix::quantize_rows(const Matrix& m) {
  QuantizedMatrix q;
  q.rows_ = m.rows();
  q.cols_ = m.cols();
  q.values_.resize(m.size());
  q.scales_.resize(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* src = m.data() + r * m.cols();
    float max_abs = 0.0f;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      max_abs = std::max(max_abs, std::fabs(src[c]));
    }
    const float scale = max_abs / 127.0f;
    q.scales_[r] = scale;
    std::int8_t* dst = q.values_.data() + r * m.cols();
    if (scale == 0.0f) {
      // All-zero row: every element quantizes to 0 exactly.
      for (std::size_t c = 0; c < m.cols(); ++c) dst[c] = 0;
      continue;
    }
    for (std::size_t c = 0; c < m.cols(); ++c) {
      // Round to nearest; the clamp covers the max element rounding to
      // exactly ±127 and any fp wobble around it.
      const float scaled = src[c] / scale;
      const long v = std::lround(scaled);
      dst[c] = static_cast<std::int8_t>(std::min(127L, std::max(-127L, v)));
    }
  }
  return q;
}

Matrix QuantizedMatrix::dequantize() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::int8_t* src = values_.data() + r * cols_;
    float* dst = m.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) {
      dst[c] = static_cast<float>(src[c]) * scales_[r];
    }
  }
  return m;
}

void QuantizedMatrix::save(BinaryWriter& writer) const {
  writer.write_u64(rows_);
  writer.write_u64(cols_);
  writer.write_i8_span(values_);
  writer.write_f32_span(scales_);
}

QuantizedMatrix QuantizedMatrix::load(BinaryReader& reader) {
  QuantizedMatrix q;
  q.rows_ = reader.read_u64();
  q.cols_ = reader.read_u64();
  q.values_ = reader.read_i8_vector();
  q.scales_ = reader.read_f32_vector();
  if (q.values_.size() != q.rows_ * q.cols_ ||
      q.scales_.size() != q.rows_) {
    throw SerializeError("QuantizedMatrix::load: size mismatch");
  }
  return q;
}

std::vector<std::int8_t> transposed_values(const QuantizedMatrix& q) {
  std::vector<std::int8_t> t(q.rows() * q.cols());
  for (std::size_t r = 0; r < q.rows(); ++r) {
    const std::int8_t* src = q.values().data() + r * q.cols();
    for (std::size_t c = 0; c < q.cols(); ++c) {
      t[c * q.rows() + r] = src[c];
    }
  }
  return t;
}

void qmatmul_bt(const Matrix& x, const QuantizedMatrix& q, Matrix& out,
                bool accumulate) {
  if (x.cols() != q.cols()) {
    throw std::invalid_argument("qmatmul_bt: inner dimension mismatch");
  }
  if (!accumulate) {
    out.resize(x.rows(), q.rows());
  } else if (out.rows() != x.rows() || out.cols() != q.rows()) {
    throw std::invalid_argument("qmatmul_bt: accumulate shape mismatch");
  }
  const std::size_t k = x.cols();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const float* xr = x.data() + r * k;
    float* dst = out.data() + r * q.rows();
    for (std::size_t j = 0; j < q.rows(); ++j) {
      const std::int8_t* wr = q.values().data() + j * k;
      // Ascending-k single chain from +0 (the matrix.hpp contract); the
      // int8 -> fp32 convert is exact, so the chain is as deterministic as
      // the fp32 kernel's.
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += xr[kk] * static_cast<float>(wr[kk]);
      }
      const float v = acc * q.scale(j);
      if (accumulate) {
        dst[j] += v;
      } else {
        dst[j] = v;
      }
    }
  }
}

void qmatmul_pre_t(const Matrix& x, std::span<const std::int8_t> qt,
                   std::span<const float> scales, Matrix& out,
                   bool accumulate) {
  const std::size_t n = scales.size();
  const std::size_t k = x.cols();
  if (qt.size() != k * n) {
    throw std::invalid_argument("qmatmul_pre_t: panel size mismatch");
  }
  if (!accumulate) {
    out.resize(x.rows(), n);
  } else if (out.rows() != x.rows() || out.cols() != n) {
    throw std::invalid_argument("qmatmul_pre_t: accumulate shape mismatch");
  }
  // Per output row: ascending-k axpy sweeps over contiguous int8 panel
  // rows into an fp32 chain buffer, then one scale pass. The int8 -> fp32
  // convert in the inner loop is exact, so each out element's chain is
  // term-for-term the chain qmatmul_bt computes.
  std::vector<float> acc(n);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    const float* __restrict xr = x.data() + r * k;
    float* __restrict ap = acc.data();
    for (std::size_t kk = 0; kk < k; ++kk) {
      i8_axpy(ap, qt.data() + kk * n, xr[kk], n);
    }
    float* dst = out.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float v = ap[j] * scales[j];
      if (accumulate) {
        dst[j] += v;
      } else {
        dst[j] = v;
      }
    }
  }
}

void sparse_qmatmul_pre_t(const SparseRows& x, std::span<const std::int8_t> qt,
                          std::span<const float> scales, Matrix& out,
                          bool accumulate) {
  const std::size_t n = scales.size();
  if (qt.size() != x.cols() * n) {
    throw std::invalid_argument("sparse_qmatmul_pre_t: panel size mismatch");
  }
  if (!accumulate) {
    out.resize(x.rows(), n);
  } else if (out.rows() != x.rows() || out.cols() != n) {
    throw std::invalid_argument(
        "sparse_qmatmul_pre_t: accumulate shape mismatch");
  }
  std::vector<float> acc(n);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    float* __restrict ap = acc.data();
    for (const auto& entry : x.row(r)) {
      // One contiguous int8 panel row per hot column — the dequant-free
      // gather. Entries arrive in ascending column order (SparseRows
      // invariant), matching the dense kernel's ascending-k chain.
      i8_axpy(ap, qt.data() + entry.col * n, entry.val, n);
    }
    float* dst = out.data() + r * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float v = acc[j] * scales[j];
      if (accumulate) {
        dst[j] += v;
      } else {
        dst[j] = v;
      }
    }
  }
}

}  // namespace pelican::nn
