#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/activations.hpp"

namespace pelican::nn {

Lstm::Lstm(std::size_t input_dim, std::size_t hidden_dim, Rng& rng)
    : w_ih_(Matrix::xavier(4 * hidden_dim, input_dim, rng)),
      w_hh_(Matrix::xavier(4 * hidden_dim, hidden_dim, rng)),
      bias_(1, 4 * hidden_dim, 0.0f),
      grad_w_ih_(4 * hidden_dim, input_dim, 0.0f),
      grad_w_hh_(4 * hidden_dim, hidden_dim, 0.0f),
      grad_bias_(1, 4 * hidden_dim, 0.0f) {
  // Forget-gate bias starts at 1 so early training does not erase state —
  // standard practice (Jozefowicz et al. 2015).
  const std::size_t h = hidden_dim;
  for (std::size_t j = 0; j < h; ++j) bias_(0, h + j) = 1.0f;
}

template <typename InputProduct>
Sequence Lstm::run_forward(std::size_t steps, std::size_t batch,
                           InputProduct&& input_product) {
  const std::size_t hidden = hidden_dim();

  cache_.clear();
  cache_.resize(steps);
  Sequence output(steps);

  Matrix h_prev(batch, hidden, 0.0f);
  Matrix c_prev(batch, hidden, 0.0f);

  // The recurrence weight is invariant across timesteps, so one pack is
  // shared by every step's product when the total work amortizes it: the
  // packed axpy kernel vectorizes across the 4H gate columns (nn/simd.hpp),
  // where the no-pack dot kernel is one serial chain per column — at batch
  // 1 this product is most of the step time. Very short batch-1 windows
  // stay on matmul_bt's dot kernel, which beats paying the pack. Both forms
  // compute each gate element's product chain from +0 and add it to the
  // input product once — identical bits, the matmul_bt accumulate contract.
  const bool pack_recurrence = batch * steps >= kGemmPackMinRows;
  Matrix w_hh_t;
  if (pack_recurrence) transposed(w_hh_, w_hh_t);
  Matrix hidden_chain;

  for (std::size_t t = 0; t < steps; ++t) {
    StepCache& step = cache_[t];
    step.prev_hidden = h_prev;
    step.prev_cell = c_prev;

    // Pre-activations: gates = x W_ih^T + h_prev W_hh^T + b. The input
    // product is supplied by the caller (dense GEMM or sparse gather);
    // both leave gates with identical bits, so everything downstream is
    // shared.
    Matrix gates;
    input_product(t, step, gates);
    if (pack_recurrence) {
      matmul(h_prev, w_hh_t, hidden_chain);
      gates += hidden_chain;
    } else {
      matmul_bt(h_prev, w_hh_, gates, /*accumulate=*/true);
    }

    step.cell.resize(batch, hidden);
    step.tanh_cell.resize(batch, hidden);
    Matrix h_next(batch, hidden);

    // Bias add, gate activations, and the cell update in ONE sweep over the
    // gates buffer (nn/activations.hpp). Exact mode (the default) performs
    // the identical per-element operation chain the unfused loop did.
    const float* bias = bias_.row(0).data();
    for (std::size_t r = 0; r < batch; ++r) {
      lstm_gate_pass(gates.data() + r * 4 * hidden, bias,
                     c_prev.data() + r * hidden,
                     step.cell.data() + r * hidden,
                     step.tanh_cell.data() + r * hidden,
                     h_next.data() + r * hidden, hidden, mode_);
    }

    step.gates = std::move(gates);
    h_prev = h_next;
    c_prev = step.cell;
    output[t] = std::move(h_next);
  }
  return output;
}

Sequence Lstm::forward(const Sequence& input, bool /*training*/) {
  if (input.empty()) throw std::invalid_argument("Lstm::forward: empty input");
  const std::size_t batch = input[0].rows();
  // Hoist the input-weight pack out of the timestep loop when the total
  // work amortizes it (matmul_bt would otherwise re-transpose w_ih_ every
  // step, and its small-batch fallback is the serial dot kernel); same bits
  // either way.
  Matrix w_ih_t;
  if (batch * input.size() >= kGemmPackMinRows) transposed(w_ih_, w_ih_t);
  return run_forward(input.size(), batch,
                     [&](std::size_t t, StepCache& step, Matrix& gates) {
                       const Matrix& x = input[t];
                       if (x.cols() != input_dim() || x.rows() != batch) {
                         throw std::invalid_argument(
                             "Lstm::forward: input shape mismatch");
                       }
                       step.input = x;
                       if (w_ih_t.empty()) {
                         matmul_bt(x, w_ih_, gates);
                       } else {
                         matmul(x, w_ih_t, gates);
                       }
                     });
}

Sequence Lstm::forward_sparse(const SparseSequence& input, bool /*training*/) {
  if (input.empty()) {
    throw std::invalid_argument("Lstm::forward_sparse: empty input");
  }
  const std::size_t batch = input[0].rows();
  // One packed W_ih^T is shared by every timestep's gather when the total
  // gathered work amortizes it; tiny batches gather strided columns of
  // W_ih directly instead (sparse_matmul_bt makes the same choice per call,
  // but could not share the pack across timesteps).
  std::size_t total_nnz = 0;
  for (const SparseRows& x : input) total_nnz += x.nnz();
  Matrix w_ih_t;
  if (total_nnz >= input_dim()) w_ih_t = transposed(w_ih_);

  return run_forward(input.size(), batch,
                     [&](std::size_t t, StepCache& step, Matrix& gates) {
                       const SparseRows& x = input[t];
                       if (x.cols() != input_dim() || x.rows() != batch) {
                         throw std::invalid_argument(
                             "Lstm::forward_sparse: input shape mismatch");
                       }
                       step.sparse_input = x;
                       if (w_ih_t.empty()) {
                         sparse_matmul_bt(x, w_ih_, gates);
                       } else {
                         sparse_matmul_pre_t(x, w_ih_t, gates);
                       }
                     });
}

Sequence Lstm::backward(const Sequence& grad_output) {
  if (grad_output.size() != cache_.size() || cache_.empty()) {
    throw std::invalid_argument("Lstm::backward: no matching forward cache");
  }
  const std::size_t steps = cache_.size();
  const std::size_t batch = cache_[0].gates.rows();
  const std::size_t hidden = hidden_dim();

  Sequence grad_input(steps);
  Matrix dh_next(batch, hidden, 0.0f);  // dL/dh_t carried from t+1
  Matrix dc_next(batch, hidden, 0.0f);  // dL/dc_t carried from t+1
  Matrix dgates(batch, 4 * hidden);

  for (std::size_t ti = steps; ti-- > 0;) {
    const StepCache& step = cache_[ti];

    // Total gradient on h_t: from this timestep's output plus recurrence.
    Matrix dh = grad_output[ti];
    if (dh.empty()) dh = Matrix(batch, hidden, 0.0f);
    dh += dh_next;

    for (std::size_t r = 0; r < batch; ++r) {
      const float* g = step.gates.data() + r * 4 * hidden;
      const float* tc = step.tanh_cell.data() + r * hidden;
      const float* cp = step.prev_cell.data() + r * hidden;
      const float* dh_row = dh.data() + r * hidden;
      float* dc_row = dc_next.data() + r * hidden;
      float* dg = dgates.data() + r * 4 * hidden;
      for (std::size_t j = 0; j < hidden; ++j) {
        const float gi = g[j];
        const float gf = g[hidden + j];
        const float gg = g[2 * hidden + j];
        const float go = g[3 * hidden + j];
        const float dho = dh_row[j];
        // dL/dc_t = carried dc + dh * o * (1 - tanh(c)^2)
        const float dc = dc_row[j] + dho * go * (1.0f - tc[j] * tc[j]);
        const float di = dc * gg;
        const float df = dc * cp[j];
        const float dgg = dc * gi;
        const float dgo = dho * tc[j];
        // Through gate nonlinearities to pre-activations.
        dg[j] = di * gi * (1.0f - gi);
        dg[hidden + j] = df * gf * (1.0f - gf);
        dg[2 * hidden + j] = dgg * (1.0f - gg * gg);
        dg[3 * hidden + j] = dgo * go * (1.0f - go);
        dc_row[j] = dc * gf;  // becomes dc_{t-1}
      }
    }

    // Parameter gradients accumulate across timesteps and minibatches.
    // The input-weight gradient reads whichever encoding the forward
    // cached; the sparse update touches only the nnz active columns.
    if (step.input.empty() && !step.sparse_input.empty()) {
      sparse_matmul_at(dgates, step.sparse_input, grad_w_ih_,
                       /*accumulate=*/true);
    } else {
      matmul_at(dgates, step.input, grad_w_ih_, /*accumulate=*/true);
    }
    matmul_at(dgates, step.prev_hidden, grad_w_hh_, /*accumulate=*/true);
    column_sums(dgates, grad_bias_.row(0));

    matmul(dgates, w_ih_, grad_input[ti]);
    matmul(dgates, w_hh_, dh_next);
  }
  return grad_input;
}

std::unique_ptr<SequenceLayer> Lstm::clone() const {
  auto copy = std::make_unique<Lstm>();
  copy->w_ih_ = w_ih_;
  copy->w_hh_ = w_hh_;
  copy->bias_ = bias_;
  copy->grad_w_ih_ = Matrix(w_ih_.rows(), w_ih_.cols());
  copy->grad_w_hh_ = Matrix(w_hh_.rows(), w_hh_.cols());
  copy->grad_bias_ = Matrix(1, bias_.cols());
  copy->set_trainable(trainable());
  copy->mode_ = mode_;
  return copy;
}

void Lstm::save(BinaryWriter& writer) const {
  writer.write_string(kind());
  writer.write_u64(input_dim());
  writer.write_u64(hidden_dim());
  writer.write_f32_span(w_ih_.flat());
  writer.write_f32_span(w_hh_.flat());
  writer.write_f32_span(bias_.flat());
  writer.write_u8(trainable() ? 1 : 0);
}

std::unique_ptr<Lstm> Lstm::load(BinaryReader& reader) {
  const std::uint64_t input_dim = reader.read_u64();
  const std::uint64_t hidden = reader.read_u64();
  auto layer = std::make_unique<Lstm>();
  layer->w_ih_.resize(4 * hidden, input_dim);
  layer->w_hh_.resize(4 * hidden, hidden);
  layer->bias_.resize(1, 4 * hidden);

  auto load_into = [](Matrix& m, const std::vector<float>& src,
                      const char* what) {
    if (src.size() != m.size()) {
      throw SerializeError(std::string("Lstm::load size mismatch: ") + what);
    }
    std::copy(src.begin(), src.end(), m.data());
  };
  load_into(layer->w_ih_, reader.read_f32_vector(), "w_ih");
  load_into(layer->w_hh_, reader.read_f32_vector(), "w_hh");
  load_into(layer->bias_, reader.read_f32_vector(), "bias");

  layer->grad_w_ih_.resize(4 * hidden, input_dim);
  layer->grad_w_hh_.resize(4 * hidden, hidden);
  layer->grad_bias_.resize(1, 4 * hidden);
  layer->set_trainable(reader.read_u8() != 0);
  return layer;
}

}  // namespace pelican::nn
