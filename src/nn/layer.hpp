// Layer abstraction for sequence models.
//
// A Sequence is a time-major list of (batch x dim) matrices. Layers cache
// whatever they need during forward() and consume it in backward().
// backward() always produces gradients with respect to the layer input —
// even for frozen layers — because the model-inversion attack (paper
// Section III-B2) differentiates the loss all the way down to the input
// encoding. Freezing only affects whether the optimizer updates parameters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "nn/activations.hpp"
#include "nn/matrix.hpp"
#include "nn/sparse.hpp"

namespace pelican::nn {

/// Time-major minibatch: seq[t] is the (batch x dim) input at timestep t.
using Sequence = std::vector<Matrix>;

class SequenceLayer {
 public:
  virtual ~SequenceLayer() = default;

  /// Maps an input sequence to an output sequence of the same length.
  /// `training` toggles stochastic behavior (dropout).
  virtual Sequence forward(const Sequence& input, bool training) = 0;

  /// Sparse-input forward for one-hot encodings. The default densifies and
  /// delegates; layers with a real fast path (Lstm) override. Guaranteed
  /// bit-identical to forward(to_dense(input), training) — see
  /// nn/sparse.hpp for why — so callers may pick the encoding freely.
  virtual Sequence forward_sparse(const SparseSequence& input, bool training) {
    return forward(to_dense(input), training);
  }

  /// Backpropagates through the most recent forward() call. Accumulates
  /// parameter gradients and returns gradients w.r.t. the layer input.
  virtual Sequence backward(const Sequence& grad_output) = 0;

  /// Trainable tensors, paired index-for-index with gradients().
  virtual std::vector<Matrix*> parameters() = 0;
  virtual std::vector<Matrix*> gradients() = 0;

  void zero_grad() {
    for (Matrix* g : gradients()) g->zero();
  }

  /// Selects the pointwise-activation execution mode (nn/activations.hpp)
  /// for layers that have one (Lstm, QuantizedLstm); a no-op elsewhere.
  /// kExact is every layer's default; kFastApprox is the opt-in
  /// bounded-error vectorized path.
  virtual void set_activation_mode(ActivationMode /*mode*/) noexcept {}

  /// Frozen layers still compute input gradients but are skipped by the
  /// optimizer (used by transfer-learning personalization, Fig. 1b/1c).
  void set_trainable(bool trainable) noexcept { trainable_ = trainable; }
  [[nodiscard]] bool trainable() const noexcept { return trainable_; }

  [[nodiscard]] virtual std::size_t input_dim() const = 0;
  [[nodiscard]] virtual std::size_t output_dim() const = 0;

  /// Deep copy, including weights; gradients and caches reset.
  [[nodiscard]] virtual std::unique_ptr<SequenceLayer> clone() const = 0;

  /// Stable type tag used by serialization ("lstm", "dropout").
  [[nodiscard]] virtual std::string kind() const = 0;

  virtual void save(BinaryWriter& writer) const = 0;

 private:
  bool trainable_ = true;
};

/// Reconstructs a layer written by SequenceLayer::save (dispatches on kind).
[[nodiscard]] std::unique_ptr<SequenceLayer> load_layer(BinaryReader& reader);

}  // namespace pelican::nn
