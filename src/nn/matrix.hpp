// Dense row-major float matrix plus the handful of BLAS-like kernels the
// library needs (GEMM with optional transposes, bias broadcast, reductions).
//
// This is the numeric core under every model in the repository: the LSTM
// and Linear layers, the optimizer state, and the batched black-box queries
// issued by the inversion attacks. Kernels are written as cache-friendly
// loops and split across the process thread pool when large enough.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace pelican::nn {

class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  float& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  void fill(float v) noexcept {
    for (auto& x : data_) x = v;
  }
  void zero() noexcept { fill(0.0f); }

  /// Resizes without preserving contents; reuses capacity when possible.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float scalar) noexcept;

  /// Frobenius-norm squared. Accumulated in double for stability.
  [[nodiscard]] double squared_norm() const noexcept;

  bool operator==(const Matrix& other) const = default;

  /// Entries ~ N(0, stddev^2). Deterministic given rng state.
  static Matrix randn(std::size_t rows, std::size_t cols, float stddev,
                      Rng& rng);

  /// Entries ~ U(-limit, limit).
  static Matrix uniform(std::size_t rows, std::size_t cols, float limit,
                        Rng& rng);

  /// Xavier/Glorot uniform init for a (fan_out x fan_in) weight.
  static Matrix xavier(std::size_t fan_out, std::size_t fan_in, Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Dense transpose; also the pack step of the GEMM kernels (a (n x k)
/// operand becomes a contiguous (k x n) panel the axpy kernel streams).
[[nodiscard]] Matrix transposed(const Matrix& m);

/// Transpose into a caller-owned buffer (blocked for cache locality).
/// Callers that re-pack the same weight every forward (the LSTM recurrence)
/// keep one scratch Matrix alive instead of allocating per call.
void transposed(const Matrix& m, Matrix& out);

/// Row count below which matmul_bt's per-call pack cannot amortize (it uses
/// a contiguous dot kernel instead). Exported so callers that sweep one
/// weight across many products (the LSTM timestep loop) can hoist a single
/// pack above this threshold and call matmul against the packed panel.
inline constexpr std::size_t kGemmPackMinRows = 4;

// Determinism contract shared by all three products (regression-tested by
// the serve-layer batch invariance and the sparse/dense equivalence tests):
// every output element accumulates its k terms in ascending-k order in a
// single chain, regardless of batch size, blocking, or how the thread pool
// splits rows/columns (matmul_bt with accumulate=true computes that chain
// from +0.0f and adds it to the existing value once). Threads only ever own
// disjoint output ranges, so results are bit-identical across thread
// counts and batch compositions. The kernels are branch-free in the dense
// path — one-hot inputs go through nn/sparse.hpp instead of a per-element
// zero test.

/// out = a * b. Shapes: (m x k)(k x n) -> (m x n). When `accumulate` is
/// true, adds into `out` instead of overwriting. `out` must not alias inputs.
void matmul(const Matrix& a, const Matrix& b, Matrix& out,
            bool accumulate = false);

/// out = a * b^T. Shapes: (m x k)(n x k)^T -> (m x n). Large operands are
/// packed into a transposed panel so the inner loop is a contiguous axpy.
void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out,
               bool accumulate = false);

/// out = a^T * b. Shapes: (k x m)^T(k x n) -> (m x n). Parallelizes by
/// chunking the m (output-row) dimension, so training backprop's gradient
/// products also use the pool.
void matmul_at(const Matrix& a, const Matrix& b, Matrix& out,
               bool accumulate = false);

/// Adds `bias` (length = m.cols()) to every row of m.
void add_row_broadcast(Matrix& m, std::span<const float> bias);

/// out[c] += sum over rows of m(r, c). out must have length m.cols().
void column_sums(const Matrix& m, std::span<float> out);

/// Elementwise out = a ⊙ b (Hadamard). Shapes must match.
void hadamard(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace pelican::nn
