#include "nn/linear.hpp"

#include <stdexcept>

namespace pelican::nn {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weight_(Matrix::xavier(out_dim, in_dim, rng)),
      bias_(1, out_dim, 0.0f),
      grad_weight_(out_dim, in_dim, 0.0f),
      grad_bias_(1, out_dim, 0.0f) {}

Matrix Linear::forward(const Matrix& x) {
  if (x.cols() != input_dim()) {
    throw std::invalid_argument("Linear::forward: input width mismatch");
  }
  Matrix y;
  if (is_quantized()) {
    // Inference-only: no input cache (backward throws anyway).
    qmatmul_bt(x, qweight_, y);
    add_row_broadcast(y, bias_.row(0));
    return y;
  }
  cached_input_ = x;
  cached_sparse_ = SparseRows();
  matmul_bt(x, weight_, y);
  add_row_broadcast(y, bias_.row(0));
  return y;
}

Matrix Linear::forward(const SparseRows& x) {
  if (x.cols() != input_dim()) {
    throw std::invalid_argument("Linear::forward: input width mismatch");
  }
  Matrix y;
  if (is_quantized()) {
    // Strided int8 column gather (a quantized head rarely sees sparse
    // input — only models with no sequence layers — so no transposed
    // panel is kept for it). Same ascending-column chain as the dense
    // kernel; scale applied once per output.
    y.resize(x.rows(), qweight_.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) {
      float* dst = y.data() + r * qweight_.rows();
      for (std::size_t j = 0; j < qweight_.rows(); ++j) {
        float acc = 0.0f;
        for (const auto& entry : x.row(r)) {
          acc += entry.val * static_cast<float>(qweight_.value(j, entry.col));
        }
        dst[j] = acc * qweight_.scale(j);
      }
    }
    add_row_broadcast(y, bias_.row(0));
    return y;
  }
  cached_input_ = Matrix();
  cached_sparse_ = x;
  sparse_matmul_bt(x, weight_, y);
  add_row_broadcast(y, bias_.row(0));
  return y;
}

Linear Linear::quantized() const {
  if (is_quantized()) return *this;
  Linear q;
  q.qweight_ = QuantizedMatrix::quantize_rows(weight_);
  q.bias_ = bias_;
  q.trainable_ = false;
  return q;
}

Matrix Linear::backward(const Matrix& grad_output) {
  if (is_quantized()) {
    throw std::logic_error(
        "Linear::backward: quantized heads are inference-only; train the "
        "fp32 original and re-publish");
  }
  const bool sparse = cached_input_.empty() && !cached_sparse_.empty();
  const std::size_t cached_rows =
      sparse ? cached_sparse_.rows() : cached_input_.rows();
  if (grad_output.rows() != cached_rows ||
      grad_output.cols() != weight_.rows()) {
    throw std::invalid_argument("Linear::backward: grad shape mismatch");
  }
  if (sparse) {
    sparse_matmul_at(grad_output, cached_sparse_, grad_weight_,
                     /*accumulate=*/true);
  } else {
    matmul_at(grad_output, cached_input_, grad_weight_, /*accumulate=*/true);
  }
  column_sums(grad_output, grad_bias_.row(0));
  Matrix dx;
  matmul(grad_output, weight_, dx);
  return dx;
}

// Checkpoint section (model format v2): a leading storage-format byte
// distinguishes fp32 (0) from int8 (1) heads; the file header CRC covers
// both layouts.
void Linear::save(BinaryWriter& writer) const {
  writer.write_u8(is_quantized() ? 1 : 0);
  if (is_quantized()) {
    qweight_.save(writer);
    writer.write_f32_span(bias_.flat());
    return;
  }
  writer.write_u64(weight_.rows());
  writer.write_u64(weight_.cols());
  writer.write_f32_span(weight_.flat());
  writer.write_f32_span(bias_.flat());
  writer.write_u8(trainable_ ? 1 : 0);
}

Linear Linear::load(BinaryReader& reader) {
  const std::uint8_t format = reader.read_u8();
  if (format == 1) {
    Linear layer;
    layer.qweight_ = QuantizedMatrix::load(reader);
    layer.bias_.resize(1, layer.qweight_.rows());
    const auto b = reader.read_f32_vector();
    if (b.size() != layer.bias_.size()) {
      throw SerializeError("Linear::load: bias size mismatch");
    }
    std::copy(b.begin(), b.end(), layer.bias_.data());
    layer.trainable_ = false;
    return layer;
  }
  if (format != 0) {
    throw SerializeError("Linear::load: unknown storage format " +
                         std::to_string(format));
  }
  const std::uint64_t out_dim = reader.read_u64();
  const std::uint64_t in_dim = reader.read_u64();
  Linear layer;
  layer.weight_.resize(out_dim, in_dim);
  const auto w = reader.read_f32_vector();
  if (w.size() != layer.weight_.size()) {
    throw SerializeError("Linear::load: weight size mismatch");
  }
  std::copy(w.begin(), w.end(), layer.weight_.data());
  layer.bias_.resize(1, out_dim);
  const auto b = reader.read_f32_vector();
  if (b.size() != layer.bias_.size()) {
    throw SerializeError("Linear::load: bias size mismatch");
  }
  std::copy(b.begin(), b.end(), layer.bias_.data());
  layer.grad_weight_.resize(out_dim, in_dim);
  layer.grad_bias_.resize(1, out_dim);
  layer.trainable_ = reader.read_u8() != 0;
  return layer;
}

}  // namespace pelican::nn
