#include "nn/linear.hpp"

#include <stdexcept>

namespace pelican::nn {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : weight_(Matrix::xavier(out_dim, in_dim, rng)),
      bias_(1, out_dim, 0.0f),
      grad_weight_(out_dim, in_dim, 0.0f),
      grad_bias_(1, out_dim, 0.0f) {}

Matrix Linear::forward(const Matrix& x) {
  if (x.cols() != weight_.cols()) {
    throw std::invalid_argument("Linear::forward: input width mismatch");
  }
  cached_input_ = x;
  cached_sparse_ = SparseRows();
  Matrix y;
  matmul_bt(x, weight_, y);
  add_row_broadcast(y, bias_.row(0));
  return y;
}

Matrix Linear::forward(const SparseRows& x) {
  if (x.cols() != weight_.cols()) {
    throw std::invalid_argument("Linear::forward: input width mismatch");
  }
  cached_input_ = Matrix();
  cached_sparse_ = x;
  Matrix y;
  sparse_matmul_bt(x, weight_, y);
  add_row_broadcast(y, bias_.row(0));
  return y;
}

Matrix Linear::backward(const Matrix& grad_output) {
  const bool sparse = cached_input_.empty() && !cached_sparse_.empty();
  const std::size_t cached_rows =
      sparse ? cached_sparse_.rows() : cached_input_.rows();
  if (grad_output.rows() != cached_rows ||
      grad_output.cols() != weight_.rows()) {
    throw std::invalid_argument("Linear::backward: grad shape mismatch");
  }
  if (sparse) {
    sparse_matmul_at(grad_output, cached_sparse_, grad_weight_,
                     /*accumulate=*/true);
  } else {
    matmul_at(grad_output, cached_input_, grad_weight_, /*accumulate=*/true);
  }
  column_sums(grad_output, grad_bias_.row(0));
  Matrix dx;
  matmul(grad_output, weight_, dx);
  return dx;
}

void Linear::save(BinaryWriter& writer) const {
  writer.write_u64(weight_.rows());
  writer.write_u64(weight_.cols());
  writer.write_f32_span(weight_.flat());
  writer.write_f32_span(bias_.flat());
  writer.write_u8(trainable_ ? 1 : 0);
}

Linear Linear::load(BinaryReader& reader) {
  const std::uint64_t out_dim = reader.read_u64();
  const std::uint64_t in_dim = reader.read_u64();
  Linear layer;
  layer.weight_.resize(out_dim, in_dim);
  const auto w = reader.read_f32_vector();
  if (w.size() != layer.weight_.size()) {
    throw SerializeError("Linear::load: weight size mismatch");
  }
  std::copy(w.begin(), w.end(), layer.weight_.data());
  layer.bias_.resize(1, out_dim);
  const auto b = reader.read_f32_vector();
  if (b.size() != layer.bias_.size()) {
    throw SerializeError("Linear::load: bias size mismatch");
  }
  std::copy(b.begin(), b.end(), layer.bias_.data());
  layer.grad_weight_.resize(out_dim, in_dim);
  layer.grad_bias_.resize(1, out_dim);
  layer.trainable_ = reader.read_u8() != 0;
  return layer;
}

}  // namespace pelican::nn
