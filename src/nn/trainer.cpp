#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"

namespace pelican::nn {

TrainReport train(SequenceClassifier& model, const BatchSource& data,
                  const TrainConfig& config, const BatchSource* validation) {
  if (data.size() == 0) {
    throw std::invalid_argument("train: empty dataset");
  }
  if (config.batch_size == 0) {
    throw std::invalid_argument("train: batch_size must be > 0");
  }

  Adam optimizer(config.lr, config.weight_decay);
  Rng rng(config.seed);
  TrainReport report;

  std::vector<std::uint32_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  const bool early_stopping = validation != nullptr && config.patience > 0;
  double best_val = -1.0;
  std::size_t epochs_since_best = 0;
  std::optional<SequenceClassifier> best_model;

  // forward_batch picks the source's preferred encoding — one-hot sources
  // take the sparse fast path with bit-identical logits and gradients
  // (nn/sparse.hpp), so the training trajectory is unchanged; only the
  // input products shrink to nnz row gathers.
  std::vector<std::int32_t> y;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) rng.shuffle(order);

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config.batch_size);
      const std::span<const std::uint32_t> indices(order.data() + start,
                                                   end - start);

      model.zero_grad();
      const Matrix logits =
          forward_batch(model, data, indices, y, /*training=*/true);
      const LossResult loss = softmax_cross_entropy(logits, y);
      (void)model.backward(loss.grad_logits);

      const auto params = model.trainable_params();
      if (config.grad_clip > 0.0) {
        clip_gradient_norm(params, config.grad_clip);
      }
      optimizer.step(params);

      epoch_loss += loss.loss;
      ++batches;
    }
    report.epoch_loss.push_back(epoch_loss / static_cast<double>(batches));
    ++report.epochs_run;

    if (validation != nullptr) {
      const double val_top1 = topk_accuracy(model, *validation, 1);
      report.validation_top1.push_back(val_top1);
      if (early_stopping) {
        if (val_top1 > best_val) {
          best_val = val_top1;
          epochs_since_best = 0;
          best_model = model.clone();
        } else if (++epochs_since_best >= config.patience) {
          report.early_stopped = true;
          break;
        }
      }
    }

    if (config.lr_decay != 1.0) {
      optimizer.set_lr(optimizer.lr() * config.lr_decay);
    }
  }

  if (early_stopping && best_model.has_value()) {
    model = std::move(*best_model);
  }
  return report;
}

double evaluate_loss(SequenceClassifier& model, const BatchSource& data,
                     std::size_t batch_size) {
  if (data.size() == 0) return 0.0;
  std::vector<std::int32_t> y;
  std::vector<std::uint32_t> indices;
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(data.size(), start + batch_size);
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(),
              static_cast<std::uint32_t>(start));
    const Matrix logits =
        forward_batch(model, data, indices, y, /*training=*/false);
    const LossResult loss = softmax_cross_entropy(logits, y);
    total += loss.loss * static_cast<double>(end - start);
    count += end - start;
  }
  return total / static_cast<double>(count);
}

}  // namespace pelican::nn
