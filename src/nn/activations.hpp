// Pointwise activation kernels (ISSUE 6): the single shared definition of
// sigmoid/tanh for the whole library, an in-place vectorized form of each,
// and the fused LSTM gate-activation + cell-update pass that Lstm::forward
// and QuantizedLstm::forward run per row.
//
// Two execution modes, selected per call (layers default to kExact):
//
//   kExact      — scalar std::exp / std::tanh, exactly the arithmetic the
//       seed's gate loop performed. Bit-identical to the historical forward
//       for every input; this is the default and the mode the serving
//       bit-identity contract (nn/matrix.hpp) extends over.
//   kFastApprox — SIMD-vectorized polynomial approximations (opt-in). The
//       width is probed at compile time (kSimdWidth below); trailing
//       elements run the same arithmetic scalar-wise, so a value's bits
//       never depend on whether it fell in a full vector or the tail.
//       Bounded error vs the exact mode, measured over [-30, 30] and
//       regression-tested in tests/nn/activations_test.cpp:
//         |fast_sigmoid - sigmoid| <= 4e-7 absolute
//         |fast_tanh   - tanh|     <= 8e-7 absolute
//       Downstream top-k CAN differ from exact mode when two logits sit
//       closer than the propagated error — which is why fast mode is opt-in
//       per layer/model (SequenceClassifier::set_activation_mode) and never
//       the default on a serving path.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace pelican::nn {

enum class ActivationMode : std::uint8_t { kExact = 0, kFastApprox = 1 };

[[nodiscard]] constexpr const char* to_string(ActivationMode mode) noexcept {
  return mode == ActivationMode::kExact ? "exact" : "fast_approx";
}

/// Float lanes per vector in the fast-mode kernels, probed from what the
/// compiler was actually allowed to emit (not from what the build host
/// supports at runtime): 16 under AVX-512, 8 under AVX/AVX2, 4 under SSE2
/// or NEON, 1 otherwise (pure scalar fallback, still bounded-error).
#if defined(__AVX512F__)
inline constexpr std::size_t kSimdWidth = 16;
#elif defined(__AVX__)
inline constexpr std::size_t kSimdWidth = 8;
#elif defined(__SSE2__) || defined(__ARM_NEON)
inline constexpr std::size_t kSimdWidth = 4;
#else
inline constexpr std::size_t kSimdWidth = 1;
#endif

/// THE logistic sigmoid — hoisted out of lstm.cpp so there is exactly one
/// definition (and one test) in the library. Exact mode everywhere.
[[nodiscard]] inline float sigmoid(float x) noexcept {
  return 1.0f / (1.0f + std::exp(-x));
}

/// Scalar forms of the fast-mode approximations. These perform the SAME
/// primitive operations, in the same order, as one lane of the vector
/// kernels — the tail-handling contract above depends on it.
[[nodiscard]] float fast_exp(float x) noexcept;
[[nodiscard]] float fast_sigmoid(float x) noexcept;
[[nodiscard]] float fast_tanh(float x) noexcept;

/// In-place pointwise kernels over a contiguous span.
void sigmoid_inplace(float* x, std::size_t n, ActivationMode mode);
void tanh_inplace(float* x, std::size_t n, ActivationMode mode);

/// Fused LSTM gate pass for ONE row of a (batch x 4H) pre-activation
/// buffer: consumes gates laid out [i | f | g | o] (each `hidden` wide),
/// adds `bias` (length 4H) during the activation sweep — fusing what used
/// to be a separate add_row_broadcast pass over the whole gates buffer —
/// and writes the cell update in the same sweep:
///
///   i = sigmoid(g_i + b_i)   f = sigmoid(g_f + b_f)
///   g = tanh(g_g + b_g)      o = sigmoid(g_o + b_o)
///   c = f * c_prev + i * g   tanh_c = tanh(c)   h = o * tanh_c
///
/// `gates` is overwritten with the post-activation values (what backward
/// consumes). In kExact mode this is bit-identical to the unfused
/// bias-then-activate sequence: g + b is the identical float add, and each
/// element's operation chain is unchanged — only the number of sweeps over
/// memory drops.
void lstm_gate_pass(float* gates, const float* bias, const float* c_prev,
                    float* c_out, float* tanh_c_out, float* h_out,
                    std::size_t hidden, ActivationMode mode);

}  // namespace pelican::nn
