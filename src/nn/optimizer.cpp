#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace pelican::nn {

double clip_gradient_norm(std::span<const ParamRef> params, double max_norm) {
  double total = 0.0;
  for (const auto& p : params) total += p.grad->squared_norm();
  const double norm = std::sqrt(total);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (const auto& p : params) *p.grad *= scale;
  }
  return norm;
}

namespace {

void ensure_state(std::vector<std::vector<float>>& state,
                  std::span<const ParamRef> params) {
  if (state.size() == params.size()) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (state[i].size() != params[i].value->size()) {
        throw std::invalid_argument(
            "optimizer: parameter set changed; call reset()");
      }
    }
    return;
  }
  if (!state.empty()) {
    throw std::invalid_argument(
        "optimizer: parameter set changed; call reset()");
  }
  state.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    state[i].assign(params[i].value->size(), 0.0f);
  }
}

}  // namespace

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd: lr must be > 0");
}

void Sgd::step(std::span<const ParamRef> params) {
  ensure_state(velocity_, params);
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* value = params[i].value->data();
    const float* grad = params[i].grad->data();
    float* vel = velocity_[i].data();
    const std::size_t n = params[i].value->size();
    for (std::size_t j = 0; j < n; ++j) {
      vel[j] = mu * vel[j] + grad[j];
      value[j] -= lr * (vel[j] + wd * value[j]);
    }
  }
}

Adam::Adam(double lr, double weight_decay, double beta1, double beta2,
           double epsilon)
    : lr_(lr),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr must be > 0");
}

void Adam::step(std::span<const ParamRef> params) {
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(epsilon_);
  const auto wd = static_cast<float>(weight_decay_);
  const auto step_size = static_cast<float>(lr_ / bias1);
  const auto inv_bias2 = static_cast<float>(1.0 / bias2);
  const auto lr = static_cast<float>(lr_);

  for (std::size_t i = 0; i < params.size(); ++i) {
    float* value = params[i].value->data();
    const float* grad = params[i].grad->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const std::size_t n = params[i].value->size();
    for (std::size_t j = 0; j < n; ++j) {
      const float g = grad[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      const float v_hat = v[j] * inv_bias2;
      value[j] -= step_size * m[j] / (std::sqrt(v_hat) + eps) +
                  lr * wd * value[j];
    }
  }
}

}  // namespace pelican::nn
