// SequenceClassifier: a stack of sequence layers (LSTM/Dropout) with a
// Linear classification head over the final timestep — the architecture
// family of Fig. 1a-1c. Supports cloning (personalization starts from a copy
// of the general model), layer freezing, (de)serialization ("download the
// model from the cloud"), and backpropagation to the input encoding (used by
// the gradient-descent inversion attack).
#pragma once

#include <memory>
#include <vector>

#include "common/serialize.hpp"
#include "nn/layer.hpp"
#include "nn/linear.hpp"
#include "nn/optimizer.hpp"

namespace pelican::nn {

class SequenceClassifier {
 public:
  SequenceClassifier() = default;

  // Movable, non-copyable (use clone() for deep copies).
  SequenceClassifier(SequenceClassifier&&) = default;
  SequenceClassifier& operator=(SequenceClassifier&&) = default;
  SequenceClassifier(const SequenceClassifier&) = delete;
  SequenceClassifier& operator=(const SequenceClassifier&) = delete;

  /// Appends a sequence layer (takes ownership).
  void add_layer(std::unique_ptr<SequenceLayer> layer);

  /// Inserts a layer before position `index` (0 = first). Used by TL feature
  /// extraction, which stacks a new LSTM between the frozen base and head.
  void insert_layer(std::size_t index, std::unique_ptr<SequenceLayer> layer);

  void set_head(Linear head) { head_ = std::move(head); }

  [[nodiscard]] std::size_t layer_count() const noexcept {
    return layers_.size();
  }
  [[nodiscard]] SequenceLayer& layer(std::size_t i) { return *layers_[i]; }
  [[nodiscard]] const SequenceLayer& layer(std::size_t i) const {
    return *layers_[i];
  }
  [[nodiscard]] Linear& head() noexcept { return head_; }
  [[nodiscard]] const Linear& head() const noexcept { return head_; }

  [[nodiscard]] std::size_t input_dim() const;
  [[nodiscard]] std::size_t num_classes() const { return head_.output_dim(); }

  /// Runs the stack and the head on the last timestep; returns logits
  /// (batch x classes). Caches activations for backward().
  [[nodiscard]] Matrix forward(const Sequence& input, bool training = false);

  /// One-hot fast path: the first layer consumes the sparse encoding
  /// directly (Lstm gathers rows of W_ih^T instead of a dense product);
  /// everything above it is dense. Bit-identical to
  /// forward(to_dense(input), training) — the serving and attack layers
  /// rely on this to switch encodings freely.
  [[nodiscard]] Matrix forward(const SparseSequence& input,
                               bool training = false);

  /// Backpropagates from dL/dlogits; accumulates parameter gradients and
  /// returns dL/dinput (full sequence), enabling input-space attacks.
  [[nodiscard]] Sequence backward(const Matrix& grad_logits);

  /// Convenience: forward + temperature-scaled softmax, inference mode.
  [[nodiscard]] Matrix predict_proba(const Sequence& input,
                                     double temperature = 1.0);
  [[nodiscard]] Matrix predict_proba(const SparseSequence& input,
                                     double temperature = 1.0);

  void zero_grad();

  /// (parameter, gradient) pairs of trainable layers only — what the
  /// optimizer is allowed to update.
  [[nodiscard]] std::vector<ParamRef> trainable_params();

  /// All parameters, frozen or not (for tests/serialization checks).
  [[nodiscard]] std::vector<ParamRef> all_params();

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t parameter_count() const;

  [[nodiscard]] SequenceClassifier clone() const;

  /// Forwards to every layer (nn/activations.hpp): kExact (default) keeps
  /// the bit-exact libm activations; kFastApprox opts this model instance
  /// into the bounded-error vectorized kernels. Not serialized.
  void set_activation_mode(ActivationMode mode) noexcept;

  void save(BinaryWriter& writer) const;
  void save_file(const std::filesystem::path& path) const;
  static SequenceClassifier load(BinaryReader& reader);
  static SequenceClassifier load_file(const std::filesystem::path& path);

 private:
  std::vector<std::unique_ptr<SequenceLayer>> layers_;
  Linear head_;
  std::size_t cached_batch_ = 0;
  std::size_t cached_steps_ = 0;
};

/// Builds the paper's general next-location model (Fig. 1a): two LSTM layers
/// with dropout in between, followed by a linear head.
[[nodiscard]] SequenceClassifier make_two_layer_lstm(
    std::size_t input_dim, std::size_t hidden_dim, std::size_t num_classes,
    double dropout_rate, Rng& rng);

/// Builds the single-layer LSTM baseline used in Table III/IV.
[[nodiscard]] SequenceClassifier make_one_layer_lstm(
    std::size_t input_dim, std::size_t hidden_dim, std::size_t num_classes,
    double dropout_rate, Rng& rng);

/// Serving-time int8 quantization (nn/quant.hpp): every Lstm becomes a
/// QuantizedLstm and the head becomes its int8 copy, both with per-row
/// scales; other layers (Dropout) are cloned unchanged. The result is
/// inference-only — backward() throws — and serializes as model-format-v2
/// sections under the same CRC-covered checkpoint container as fp32 models.
/// Outputs track the fp32 original within the quantization tolerance
/// documented in quant.hpp (NOT bit-identical).
[[nodiscard]] SequenceClassifier quantize_for_serving(
    const SequenceClassifier& model);

/// True if any layer or the head carries int8 weights (i.e. the model came
/// from quantize_for_serving, directly or via a checkpoint round-trip).
[[nodiscard]] bool is_quantized(const SequenceClassifier& model);

}  // namespace pelican::nn
