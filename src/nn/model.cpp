#include "nn/model.hpp"

#include <stdexcept>

#include "nn/dropout.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/quant_lstm.hpp"

namespace pelican::nn {

namespace {
// v2: Linear sections gained a leading storage-format byte (fp32 vs int8)
// and the "qlstm" layer kind exists. v1 checkpoints are rejected at the
// header version check; every writer of persistent checkpoints (the model
// store, the bench pipeline cache) retrains/re-publishes on load failure.
constexpr std::uint32_t kModelFormatVersion = 2;
}  // namespace

void SequenceClassifier::add_layer(std::unique_ptr<SequenceLayer> layer) {
  layers_.push_back(std::move(layer));
}

void SequenceClassifier::insert_layer(std::size_t index,
                                      std::unique_ptr<SequenceLayer> layer) {
  if (index > layers_.size()) {
    throw std::out_of_range("insert_layer: index out of range");
  }
  layers_.insert(layers_.begin() + static_cast<std::ptrdiff_t>(index),
                 std::move(layer));
}

std::size_t SequenceClassifier::input_dim() const {
  if (layers_.empty()) return head_.input_dim();
  return layers_.front()->input_dim();
}

Matrix SequenceClassifier::forward(const Sequence& input, bool training) {
  if (input.empty()) {
    throw std::invalid_argument("SequenceClassifier::forward: empty input");
  }
  cached_batch_ = input[0].rows();
  cached_steps_ = input.size();

  Sequence activations = input;
  for (const auto& layer : layers_) {
    activations = layer->forward(activations, training);
  }
  return head_.forward(activations.back());
}

Sequence SequenceClassifier::backward(const Matrix& grad_logits) {
  if (grad_logits.rows() != cached_batch_) {
    throw std::invalid_argument(
        "SequenceClassifier::backward: batch mismatch with last forward");
  }
  const Matrix grad_last = head_.backward(grad_logits);

  // Only the final timestep receives gradient from the head; earlier steps
  // start empty (treated as zero by the layers).
  Sequence grads(cached_steps_);
  grads.back() = grad_last;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grads = (*it)->backward(grads);
  }
  return grads;
}

Matrix SequenceClassifier::forward(const SparseSequence& input,
                                   bool training) {
  if (input.empty()) {
    throw std::invalid_argument("SequenceClassifier::forward: empty input");
  }
  cached_batch_ = input[0].rows();
  cached_steps_ = input.size();

  if (layers_.empty()) return head_.forward(input.back());
  Sequence activations = layers_.front()->forward_sparse(input, training);
  for (std::size_t i = 1; i < layers_.size(); ++i) {
    activations = layers_[i]->forward(activations, training);
  }
  return head_.forward(activations.back());
}

Matrix SequenceClassifier::predict_proba(const Sequence& input,
                                         double temperature) {
  return softmax(forward(input, /*training=*/false), temperature);
}

Matrix SequenceClassifier::predict_proba(const SparseSequence& input,
                                         double temperature) {
  return softmax(forward(input, /*training=*/false), temperature);
}

void SequenceClassifier::zero_grad() {
  for (const auto& layer : layers_) layer->zero_grad();
  head_.zero_grad();
}

std::vector<ParamRef> SequenceClassifier::trainable_params() {
  std::vector<ParamRef> refs;
  for (const auto& layer : layers_) {
    if (!layer->trainable()) continue;
    const auto params = layer->parameters();
    const auto grads = layer->gradients();
    for (std::size_t i = 0; i < params.size(); ++i) {
      refs.push_back({params[i], grads[i]});
    }
  }
  if (head_.trainable()) {
    const auto params = head_.parameters();
    const auto grads = head_.gradients();
    for (std::size_t i = 0; i < params.size(); ++i) {
      refs.push_back({params[i], grads[i]});
    }
  }
  return refs;
}

std::vector<ParamRef> SequenceClassifier::all_params() {
  std::vector<ParamRef> refs;
  for (const auto& layer : layers_) {
    const auto params = layer->parameters();
    const auto grads = layer->gradients();
    for (std::size_t i = 0; i < params.size(); ++i) {
      refs.push_back({params[i], grads[i]});
    }
  }
  const auto params = head_.parameters();
  const auto grads = head_.gradients();
  for (std::size_t i = 0; i < params.size(); ++i) {
    refs.push_back({params[i], grads[i]});
  }
  return refs;
}

std::size_t SequenceClassifier::parameter_count() const {
  std::size_t total = 0;
  auto& self = const_cast<SequenceClassifier&>(*this);
  for (const auto& ref : self.all_params()) total += ref.value->size();
  return total;
}

SequenceClassifier SequenceClassifier::clone() const {
  SequenceClassifier copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
  copy.head_ = head_;
  return copy;
}

void SequenceClassifier::save(BinaryWriter& writer) const {
  writer.write_u64(layers_.size());
  for (const auto& layer : layers_) layer->save(writer);
  head_.save(writer);
}

void SequenceClassifier::save_file(const std::filesystem::path& path) const {
  BinaryWriter writer(path, kModelFormatVersion);
  save(writer);
  writer.finish();
}

SequenceClassifier SequenceClassifier::load(BinaryReader& reader) {
  SequenceClassifier model;
  const std::uint64_t count = reader.read_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    model.layers_.push_back(load_layer(reader));
  }
  model.head_ = Linear::load(reader);
  return model;
}

SequenceClassifier SequenceClassifier::load_file(
    const std::filesystem::path& path) {
  BinaryReader reader(path, kModelFormatVersion);
  return load(reader);
}

std::unique_ptr<SequenceLayer> load_layer(BinaryReader& reader) {
  const std::string kind = reader.read_string();
  if (kind == "lstm") return Lstm::load(reader);
  if (kind == "qlstm") return QuantizedLstm::load(reader);
  if (kind == "dropout") return Dropout::load(reader);
  throw SerializeError("load_layer: unknown layer kind '" + kind + "'");
}

void SequenceClassifier::set_activation_mode(ActivationMode mode) noexcept {
  for (const auto& layer : layers_) layer->set_activation_mode(mode);
}

SequenceClassifier quantize_for_serving(const SequenceClassifier& model) {
  SequenceClassifier quantized;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    const SequenceLayer& layer = model.layer(i);
    if (const auto* lstm = dynamic_cast<const Lstm*>(&layer)) {
      quantized.add_layer(std::make_unique<QuantizedLstm>(
          QuantizedMatrix::quantize_rows(lstm->w_ih()),
          QuantizedMatrix::quantize_rows(lstm->w_hh()), lstm->bias()));
    } else {
      // Dropout (inference no-op) and already-quantized layers pass
      // through; anything trainable keeps its fp32 weights — only the
      // LSTM/head products dominate bytes and serving FLOPs.
      quantized.add_layer(layer.clone());
    }
  }
  quantized.set_head(model.head().quantized());
  return quantized;
}

bool is_quantized(const SequenceClassifier& model) {
  if (model.head().is_quantized()) return true;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    if (model.layer(i).kind() == "qlstm") return true;
  }
  return false;
}

SequenceClassifier make_two_layer_lstm(std::size_t input_dim,
                                       std::size_t hidden_dim,
                                       std::size_t num_classes,
                                       double dropout_rate, Rng& rng) {
  SequenceClassifier model;
  model.add_layer(std::make_unique<Lstm>(input_dim, hidden_dim, rng));
  if (dropout_rate > 0.0) {
    model.add_layer(
        std::make_unique<Dropout>(dropout_rate, hidden_dim, rng.fork(11)()));
  }
  model.add_layer(std::make_unique<Lstm>(hidden_dim, hidden_dim, rng));
  model.set_head(Linear(hidden_dim, num_classes, rng));
  return model;
}

SequenceClassifier make_one_layer_lstm(std::size_t input_dim,
                                       std::size_t hidden_dim,
                                       std::size_t num_classes,
                                       double dropout_rate, Rng& rng) {
  SequenceClassifier model;
  model.add_layer(std::make_unique<Lstm>(input_dim, hidden_dim, rng));
  if (dropout_rate > 0.0) {
    model.add_layer(
        std::make_unique<Dropout>(dropout_rate, hidden_dim, rng.fork(13)()));
  }
  model.set_head(Linear(hidden_dim, num_classes, rng));
  return model;
}

}  // namespace pelican::nn
