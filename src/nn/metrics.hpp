// Top-k accuracy — the paper's sole efficacy metric ("identify the top-k
// most likely locations from the model output and assess whether the true
// location is a subset of that", Section IV-A).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/data.hpp"
#include "nn/model.hpp"

namespace pelican::nn {

/// Materializes the indexed batch in the source's preferred encoding
/// (sparse one-hot when BatchSource::sparse(), dense otherwise), runs a
/// forward pass, and fills `y`. The single dispatch point shared by the
/// train/eval loops — logits are bit-identical across encodings.
[[nodiscard]] Matrix forward_batch(SequenceClassifier& model,
                                   const BatchSource& data,
                                   std::span<const std::uint32_t> indices,
                                   std::vector<std::int32_t>& y,
                                   bool training);

/// Fraction of samples whose label is among the k highest logits.
[[nodiscard]] double topk_accuracy(SequenceClassifier& model,
                                   const BatchSource& data, std::size_t k,
                                   std::size_t batch_size = 256);

/// Evaluates several k values in one pass over the data.
[[nodiscard]] std::vector<double> topk_accuracies(
    SequenceClassifier& model, const BatchSource& data,
    std::span<const std::size_t> ks, std::size_t batch_size = 256);

/// Top-k hit test on a single score row.
[[nodiscard]] bool topk_hit(std::span<const float> scores, std::size_t label,
                            std::size_t k);

}  // namespace pelican::nn
