// Fully-connected layer y = x W^T + b operating on single (batch x dim)
// matrices. Used as the classification head over the last LSTM timestep
// (Fig. 1a-c all end in a Linear layer).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "nn/matrix.hpp"
#include "nn/quant.hpp"
#include "nn/sparse.hpp"

namespace pelican::nn {

class Linear {
 public:
  Linear() = default;

  /// Xavier-initialized weight (out_dim x in_dim), zero bias.
  Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  /// y = x W^T + b. Caches x for backward.
  [[nodiscard]] Matrix forward(const Matrix& x);

  /// One-hot fast path: x W^T as nnz row gathers of W^T. Bit-identical to
  /// forward(x.to_dense()) for finite weights (nn/sparse.hpp); backward()
  /// works after either forward.
  [[nodiscard]] Matrix forward(const SparseRows& x);

  /// Accumulates dW, db; returns dx. Throws std::logic_error on a
  /// quantized (inference-only) layer.
  [[nodiscard]] Matrix backward(const Matrix& grad_output);

  /// Int8-quantized copy for serving (per-row scales, nn/quant.hpp): the
  /// copy stores no fp32 weight, forwards through the int8 kernels, and is
  /// untrainable. Bias stays fp32 (out_dim floats). Like QuantizedLstm,
  /// quantized heads serialize as their own checkpoint section.
  [[nodiscard]] Linear quantized() const;
  [[nodiscard]] bool is_quantized() const noexcept {
    return !qweight_.empty();
  }
  [[nodiscard]] const QuantizedMatrix& qweight() const noexcept {
    return qweight_;
  }

  [[nodiscard]] std::vector<Matrix*> parameters() { return {&weight_, &bias_}; }
  [[nodiscard]] std::vector<Matrix*> gradients() {
    return {&grad_weight_, &grad_bias_};
  }
  void zero_grad() {
    grad_weight_.zero();
    grad_bias_.zero();
  }

  void set_trainable(bool trainable) noexcept { trainable_ = trainable; }
  [[nodiscard]] bool trainable() const noexcept { return trainable_; }

  [[nodiscard]] std::size_t input_dim() const noexcept {
    return is_quantized() ? qweight_.cols() : weight_.cols();
  }
  [[nodiscard]] std::size_t output_dim() const noexcept {
    return is_quantized() ? qweight_.rows() : weight_.rows();
  }

  [[nodiscard]] Matrix& weight() noexcept { return weight_; }
  [[nodiscard]] const Matrix& weight() const noexcept { return weight_; }
  [[nodiscard]] Matrix& bias() noexcept { return bias_; }
  [[nodiscard]] const Matrix& bias() const noexcept { return bias_; }

  void save(BinaryWriter& writer) const;
  static Linear load(BinaryReader& reader);

 private:
  Matrix weight_;            // out_dim x in_dim (fp32 mode; empty when int8)
  QuantizedMatrix qweight_;  // int8 mode (empty in fp32 mode)
  Matrix bias_;              // 1 x out_dim, always fp32
  Matrix grad_weight_;  // same shape as weight_
  Matrix grad_bias_;
  // Input cached by the last forward(); exactly one is populated.
  Matrix cached_input_;
  SparseRows cached_sparse_;
  bool trainable_ = true;
};

}  // namespace pelican::nn
