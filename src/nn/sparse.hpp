// Row-sparse inputs for the one-hot fast path.
//
// models::encode_window produces rows with exactly a handful of ones
// (entry bin, duration bin, location, day-of-week) in an input_dim that can
// reach AP scale (thousands of columns). Materializing those rows densely
// makes the LSTM's input product x·W_ihᵀ an input_dim × 4·hidden GEMM per
// timestep even though only nnz columns contribute. SparseRows keeps the
// (column, weight) pairs instead, and sparse_matmul_bt computes the product
// as nnz row gathers — an embedding lookup.
//
// Bit-identity contract (load-bearing, regression-tested): for finite
// weights, sparse_matmul_bt(x, w, out) is bit-identical to
// matmul_bt(x.to_dense(), w, out). Both kernels accumulate each output
// element in ascending-column order from the same starting value, and the
// zero terms the dense kernel adds are exact ±0.0f contributions that can
// never perturb the accumulation chain (the chain starts at +0.0f and
// s + ±0.0f == s for every value s the chain can reach). The same argument
// makes sparse_matmul_at match matmul_at. This is what lets the serving and
// attack layers switch between sparse and dense encodings without changing
// a single served prediction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace pelican::nn {

/// CSR-style row-sparse float matrix. Rows must be appended in
/// nondecreasing row order and, within a row, strictly ascending column
/// order — the same order the dense kernels accumulate in, which is what
/// keeps the sparse and dense paths bit-identical.
class SparseRows {
 public:
  struct Entry {
    std::uint32_t col = 0;
    float val = 0.0f;
  };

  SparseRows() = default;

  SparseRows(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
    row_start_.reserve(rows + 1);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  void reserve(std::size_t entries) { entries_.reserve(entries); }

  /// Appends one entry. Throws if ordering or bounds are violated.
  void add(std::size_t row, std::size_t col, float val);

  /// Entries of row r, ascending by column. Empty for untouched rows.
  [[nodiscard]] std::span<const Entry> row(std::size_t r) const noexcept {
    if (r >= row_start_.size()) return {};
    const std::size_t begin = row_start_[r];
    const std::size_t end =
        (r + 1 < row_start_.size()) ? row_start_[r + 1] : entries_.size();
    return {entries_.data() + begin, end - begin};
  }

  [[nodiscard]] Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // row_start_[r] = index of row r's first entry, for every row that has
  // been reached by add(); trailing rows are implicitly empty.
  std::vector<std::uint32_t> row_start_;
  std::vector<Entry> entries_;
};

/// Time-major sparse minibatch, mirroring nn::Sequence (which is
/// std::vector<Matrix>, declared one header up in nn/layer.hpp).
using SparseSequence = std::vector<SparseRows>;

[[nodiscard]] std::vector<Matrix> to_dense(const SparseSequence& sparse);

/// out = x * w^T, with w (n x k) row-major exactly as in matmul_bt. When
/// `accumulate` is true, adds into `out`. Cost is nnz * n multiply-adds
/// instead of rows * k * n. Bit-identical to matmul_bt(x.to_dense(), w, out)
/// for finite w (see the header comment).
void sparse_matmul_bt(const SparseRows& x, const Matrix& w, Matrix& out,
                      bool accumulate = false);

/// Same product against an ALREADY transposed weight panel wt (k x n,
/// row-major): each entry becomes a contiguous axpy of row wt[col]. Callers
/// that reuse one weight across many products (the LSTM sweeping timesteps)
/// pack once and call this.
void sparse_matmul_pre_t(const SparseRows& x, const Matrix& wt, Matrix& out,
                         bool accumulate = false);

/// out += dy^T * x for sparse x: the input-weight gradient of a layer whose
/// forward consumed SparseRows. Shapes: dy (B x m), x sparse (B x n),
/// out (m x n). Matches matmul_at(dy, x.to_dense(), out, accumulate) for
/// finite values, by the same ±0 argument.
void sparse_matmul_at(const Matrix& dy, const SparseRows& x, Matrix& out,
                      bool accumulate = false);

}  // namespace pelican::nn
