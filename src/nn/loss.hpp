// Softmax, temperature-scaled softmax (Equation 1 of the paper) and
// cross-entropy loss.
//
// All softmax math runs in double precision with the max subtracted, so the
// privacy layer's extreme temperatures (T down to 1e-5) saturate cleanly to
// {0, 1} instead of producing NaNs, and the confidence *ordering* is exactly
// preserved — the invariant that lets Pelican keep model accuracy unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace pelican::nn {

/// Row-wise softmax with temperature: p_i = exp(z_i / T) / sum exp(z_j / T).
/// T = 1 is the standard softmax. Requires T > 0.
[[nodiscard]] Matrix softmax(const Matrix& logits, double temperature = 1.0);

/// Row-wise log-softmax (T = 1), numerically stable.
[[nodiscard]] Matrix log_softmax(const Matrix& logits);

/// Mean cross-entropy over the batch plus dL/dlogits.
struct LossResult {
  double loss = 0.0;
  Matrix grad_logits;  // batch x classes, already divided by batch size
};

/// labels[r] in [0, logits.cols()).
[[nodiscard]] LossResult softmax_cross_entropy(
    const Matrix& logits, std::span<const std::int32_t> labels);

/// Indices of the k largest values in `scores`, ordered descending.
/// Deterministic tie-break: lower index wins.
[[nodiscard]] std::vector<std::size_t> topk_indices(
    std::span<const float> scores, std::size_t k);
[[nodiscard]] std::vector<std::size_t> topk_indices(
    std::span<const double> scores, std::size_t k);

/// Per-row top-k over a (batch x classes) score matrix: row r of the result
/// equals topk_indices(scores.row(r), k). The reduction is strictly per-row,
/// so a batched forward followed by topk_rows produces exactly the results
/// of the corresponding single-row queries — the invariant the serving
/// engine's request coalescing relies on.
[[nodiscard]] std::vector<std::vector<std::size_t>> topk_rows(
    const Matrix& scores, std::size_t k);

}  // namespace pelican::nn
