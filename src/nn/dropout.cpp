#include "nn/dropout.hpp"

#include <stdexcept>

namespace pelican::nn {

Dropout::Dropout(double rate, std::size_t dim, std::uint64_t seed)
    : rate_(rate), dim_(dim), rng_(seed) {
  if (rate < 0.0 || rate >= 1.0) {
    throw std::invalid_argument("Dropout: rate must be in [0, 1)");
  }
}

Sequence Dropout::forward(const Sequence& input, bool training) {
  last_was_training_ = training && rate_ > 0.0;
  if (!last_was_training_) return input;

  const float scale = static_cast<float>(1.0 / (1.0 - rate_));
  masks_.clear();
  masks_.reserve(input.size());
  Sequence output(input.size());
  for (std::size_t t = 0; t < input.size(); ++t) {
    Matrix mask(input[t].rows(), input[t].cols());
    for (auto& m : mask.flat()) m = rng_.chance(rate_) ? 0.0f : scale;
    hadamard(input[t], mask, output[t]);
    masks_.push_back(std::move(mask));
  }
  return output;
}

Sequence Dropout::backward(const Sequence& grad_output) {
  if (!last_was_training_) return grad_output;
  if (grad_output.size() != masks_.size()) {
    throw std::invalid_argument("Dropout::backward: no matching forward");
  }
  Sequence grad_input(grad_output.size());
  for (std::size_t t = 0; t < grad_output.size(); ++t) {
    if (grad_output[t].empty()) continue;  // empty means zero gradient
    hadamard(grad_output[t], masks_[t], grad_input[t]);
  }
  return grad_input;
}

std::unique_ptr<SequenceLayer> Dropout::clone() const {
  auto copy = std::make_unique<Dropout>();
  copy->rate_ = rate_;
  copy->dim_ = dim_;
  copy->rng_ = rng_;
  copy->set_trainable(trainable());
  return copy;
}

void Dropout::save(BinaryWriter& writer) const {
  writer.write_string(kind());
  writer.write_f64(rate_);
  writer.write_u64(dim_);
  writer.write_u8(trainable() ? 1 : 0);
}

std::unique_ptr<Dropout> Dropout::load(BinaryReader& reader) {
  auto layer = std::make_unique<Dropout>();
  layer->rate_ = reader.read_f64();
  layer->dim_ = reader.read_u64();
  layer->set_trainable(reader.read_u8() != 0);
  return layer;
}

}  // namespace pelican::nn
