#include "nn/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "nn/loss.hpp"

namespace pelican::nn {

Matrix forward_batch(SequenceClassifier& model, const BatchSource& data,
                     std::span<const std::uint32_t> indices,
                     std::vector<std::int32_t>& y, bool training) {
  if (data.sparse()) {
    SparseSequence sx;
    data.materialize_sparse(indices, sx, y);
    return model.forward(sx, training);
  }
  Sequence x;
  data.materialize(indices, x, y);
  return model.forward(x, training);
}

bool topk_hit(std::span<const float> scores, std::size_t label,
              std::size_t k) {
  const float label_score = scores[label];
  // Count entries strictly greater, and equal entries with a smaller index
  // (the deterministic tie-break used by topk_indices).
  std::size_t rank = 0;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (scores[c] > label_score || (scores[c] == label_score && c < label)) {
      if (++rank >= k) return false;
    }
  }
  return true;
}

std::vector<double> topk_accuracies(SequenceClassifier& model,
                                    const BatchSource& data,
                                    std::span<const std::size_t> ks,
                                    std::size_t batch_size) {
  std::vector<double> hits(ks.size(), 0.0);
  if (data.size() == 0) return hits;

  std::vector<std::int32_t> y;
  std::vector<std::uint32_t> indices;
  for (std::size_t start = 0; start < data.size(); start += batch_size) {
    const std::size_t end = std::min(data.size(), start + batch_size);
    indices.resize(end - start);
    std::iota(indices.begin(), indices.end(),
              static_cast<std::uint32_t>(start));
    const Matrix logits =
        forward_batch(model, data, indices, y, /*training=*/false);
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      for (std::size_t ki = 0; ki < ks.size(); ++ki) {
        if (topk_hit(logits.row(r), static_cast<std::size_t>(y[r]), ks[ki])) {
          hits[ki] += 1.0;
        }
      }
    }
  }
  for (auto& h : hits) h /= static_cast<double>(data.size());
  return hits;
}

double topk_accuracy(SequenceClassifier& model, const BatchSource& data,
                     std::size_t k, std::size_t batch_size) {
  const std::size_t ks[] = {k};
  return topk_accuracies(model, data, ks, batch_size)[0];
}

}  // namespace pelican::nn
