// Internal explicit-SIMD helpers shared by the nn kernels (matrix.cpp,
// quant.cpp, activations.cpp). GCC/Clang generic vector extensions, width
// probed at compile time (nn/activations.hpp kSimdWidth).
//
// Why explicit vectors instead of trusting the auto-vectorizer: the default
// -O2 cost model refuses runtime-trip-count loops, so the axpy kernels'
// inner j loops stay scalar exactly where the serving path needs them
// vectorized. These helpers force the issue without changing semantics.
//
// Determinism: every helper applies the SAME per-element operation chain as
// the scalar loop it replaces — lanes are independent elements, nothing
// reassociates across k — so vectorized kernels stay bit-identical to their
// scalar forms and the matrix.hpp contract is unaffected.
#pragma once

#include <cstdint>
#include <cstring>

#include "nn/activations.hpp"  // kSimdWidth

namespace pelican::nn::simd {

#if defined(__GNUC__) && (defined(__SSE2__) || defined(__AVX__) || \
                          defined(__AVX512F__) || defined(__ARM_NEON))
#define PELICAN_SIMD_KERNELS 1

using vfloat
    __attribute__((vector_size(kSimdWidth * sizeof(float)))) = float;
using vint
    __attribute__((vector_size(kSimdWidth * sizeof(std::int32_t)))) =
        std::int32_t;

inline vfloat broadcast(float x) noexcept {
  vfloat v;
  for (std::size_t i = 0; i < kSimdWidth; ++i) v[i] = x;
  return v;
}

inline vfloat load(const float* p) noexcept {
  vfloat v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store(float* p, vfloat v) noexcept { std::memcpy(p, &v, sizeof(v)); }

// NOTE: no int8 load helper on purpose. SSE2 has no lane-wise int8 sign
// extend, so a float-width __builtin_convertvector scalarizes badly; the
// int8 kernels (nn/quant.cpp) instead re-enable GCC's own vectorizer per
// function, which emits the efficient unpack sequence.

#else
#define PELICAN_SIMD_KERNELS 0
#endif

}  // namespace pelican::nn::simd
