#include "nn/matrix.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace pelican::nn {

namespace {

/// Below this many multiply-adds the parallel split costs more than it saves.
constexpr std::size_t kParallelFlopThreshold = 1u << 21;

void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace

Matrix& Matrix::operator+=(const Matrix& other) {
  check(rows_ == other.rows_ && cols_ == other.cols_, "Matrix+=: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check(rows_ == other.rows_ && cols_ == other.cols_, "Matrix-=: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) noexcept {
  for (auto& x : data_) x *= scalar;
  return *this;
}

double Matrix::squared_norm() const noexcept {
  double total = 0.0;
  for (const float x : data_) total += static_cast<double>(x) * x;
  return total;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, float stddev,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = static_cast<float>(rng.normal(0.0, stddev));
  return m;
}

Matrix Matrix::uniform(std::size_t rows, std::size_t cols, float limit,
                       Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = static_cast<float>(rng.uniform(-limit, limit));
  return m;
}

Matrix Matrix::xavier(std::size_t fan_out, std::size_t fan_in, Rng& rng) {
  const float limit = std::sqrt(
      6.0f / static_cast<float>(fan_in + fan_out));
  return uniform(fan_out, fan_in, limit, rng);
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out, bool accumulate) {
  check(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (!accumulate || out.rows() != m || out.cols() != n) {
    out.resize(m, n);
  }

  auto row_range = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* out_row = out.data() + i * n;
      const float* a_row = a.data() + i * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = a_row[kk];
        if (av == 0.0f) continue;  // one-hot inputs are mostly zero
        const float* b_row = b.data() + kk * n;
        for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  };

  if (m * k * n >= kParallelFlopThreshold && m > 1) {
    const std::size_t chunks = std::min<std::size_t>(m, 8);
    parallel_for(chunks, [&](std::size_t c) {
      const std::size_t lo = m * c / chunks;
      const std::size_t hi = m * (c + 1) / chunks;
      row_range(lo, hi);
    });
  } else {
    row_range(0, m);
  }
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out,
               bool accumulate) {
  check(a.cols() == b.cols(), "matmul_bt: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (!accumulate || out.rows() != m || out.cols() != n) {
    out.resize(m, n);
  }

  auto row_range = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* a_row = a.data() + i * k;
      float* out_row = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        const float* b_row = b.data() + j * k;
        float dot = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) dot += a_row[kk] * b_row[kk];
        out_row[j] += dot;
      }
    }
  };

  if (m * k * n >= kParallelFlopThreshold && m > 1) {
    const std::size_t chunks = std::min<std::size_t>(m, 8);
    parallel_for(chunks, [&](std::size_t c) {
      const std::size_t lo = m * c / chunks;
      const std::size_t hi = m * (c + 1) / chunks;
      row_range(lo, hi);
    });
  } else {
    row_range(0, m);
  }
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out,
               bool accumulate) {
  check(a.rows() == b.rows(), "matmul_at: inner dimension mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (!accumulate || out.rows() != m || out.cols() != n) {
    out.resize(m, n);
  }
  // Rank-1 update per shared row; serial because rows of `out` are written
  // by every iteration (the k dimension is the batch, typically <= 256).
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a.data() + kk * m;
    const float* b_row = b.data() + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = a_row[i];
      if (av == 0.0f) continue;
      float* out_row = out.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void add_row_broadcast(Matrix& m, std::span<const float> bias) {
  check(bias.size() == m.cols(), "add_row_broadcast: width mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void column_sums(const Matrix& m, std::span<float> out) {
  check(out.size() == m.cols(), "column_sums: width mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c];
  }
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard: shape");
  out.resize(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
}

}  // namespace pelican::nn
