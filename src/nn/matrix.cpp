#include "nn/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "nn/simd.hpp"

namespace pelican::nn {

namespace {

/// Below this many multiply-adds the parallel split costs more than it saves.
constexpr std::size_t kParallelFlopThreshold = 1u << 21;


/// Output rows processed per block of the axpy kernel: the block's out rows
/// stay hot while each panel row is streamed once per block.
constexpr std::size_t kRowBlock = 8;

/// Column tile of the axpy kernel (floats); keeps the active out tile and
/// panel segment L1-resident when n is large.
constexpr std::size_t kColBlock = 512;

void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(what);
}

/// The shared inner kernel: out[i0..i1) x [j0..j1) += a * panel, where
/// `panel` is a contiguous (k x n) row-major operand. Branch-free and
/// restrict-qualified so the j loop auto-vectorizes; every out element
/// accumulates its k terms in ascending order in one chain, which is the
/// determinism contract of this file (see matrix.hpp).
void gemm_panel(const float* __restrict a, std::size_t lda,
                const float* __restrict panel, std::size_t ldp,
                float* __restrict out, std::size_t ldo, std::size_t k,
                std::size_t i0, std::size_t i1, std::size_t j0,
                std::size_t j1) {
  for (std::size_t jb = j0; jb < j1; jb += kColBlock) {
    const std::size_t je = std::min(j1, jb + kColBlock);
    const std::size_t width = je - jb;
    for (std::size_t ib = i0; ib < i1; ib += kRowBlock) {
      const std::size_t ie = std::min(i1, ib + kRowBlock);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* __restrict panel_row = panel + kk * ldp + jb;
        for (std::size_t i = ib; i < ie; ++i) {
          const float av = a[i * lda + kk];
          float* __restrict out_row = out + i * ldo + jb;
          // Explicit vectors (nn/simd.hpp): the default -O2 cost model
          // leaves this runtime-width loop scalar. Lanes are independent
          // output elements performing the same multiply-add as the scalar
          // tail, so bits are unchanged.
          std::size_t j = 0;
#if PELICAN_SIMD_KERNELS
          const simd::vfloat avv = simd::broadcast(av);
          for (; j + kSimdWidth <= width; j += kSimdWidth) {
            simd::store(out_row + j,
                        simd::load(out_row + j) + avv * simd::load(panel_row + j));
          }
#endif
          for (; j < width; ++j) {
            out_row[j] += av * panel_row[j];
          }
        }
      }
    }
  }
}

/// Splits [0, extent) into `chunks` contiguous ranges across the pool.
template <typename Fn>
void parallel_ranges(std::size_t extent, std::size_t chunks, Fn&& fn) {
  chunks = std::max<std::size_t>(1, std::min(chunks, extent));
  if (chunks == 1) {
    fn(std::size_t{0}, extent);
    return;
  }
  parallel_for(chunks, [&](std::size_t c) {
    fn(extent * c / chunks, extent * (c + 1) / chunks);
  });
}

/// Runs the panel kernel over the whole output, threading over rows when
/// the batch allows it and over columns otherwise — the batch-1 forwards
/// that used to be entirely serial split their single wide output row.
void gemm_dispatch(const float* a, std::size_t lda, const float* panel,
                   std::size_t ldp, float* out, std::size_t ldo,
                   std::size_t m, std::size_t k, std::size_t n) {
  const bool parallel = m * k * n >= kParallelFlopThreshold;
  if (parallel && m > 1) {
    parallel_ranges(m, 8, [&](std::size_t i0, std::size_t i1) {
      gemm_panel(a, lda, panel, ldp, out, ldo, k, i0, i1, 0, n);
    });
  } else if (parallel && n >= 2 * kColBlock) {
    parallel_ranges(n, 8, [&](std::size_t j0, std::size_t j1) {
      gemm_panel(a, lda, panel, ldp, out, ldo, k, 0, m, j0, j1);
    });
  } else {
    gemm_panel(a, lda, panel, ldp, out, ldo, k, 0, m, 0, n);
  }
}

}  // namespace

Matrix& Matrix::operator+=(const Matrix& other) {
  check(rows_ == other.rows_ && cols_ == other.cols_, "Matrix+=: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  check(rows_ == other.rows_ && cols_ == other.cols_, "Matrix-=: shape");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float scalar) noexcept {
  for (auto& x : data_) x *= scalar;
  return *this;
}

double Matrix::squared_norm() const noexcept {
  double total = 0.0;
  for (const float x : data_) total += static_cast<double>(x) * x;
  return total;
}

Matrix Matrix::randn(std::size_t rows, std::size_t cols, float stddev,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = static_cast<float>(rng.normal(0.0, stddev));
  return m;
}

Matrix Matrix::uniform(std::size_t rows, std::size_t cols, float limit,
                       Rng& rng) {
  Matrix m(rows, cols);
  for (auto& x : m.data_) x = static_cast<float>(rng.uniform(-limit, limit));
  return m;
}

Matrix Matrix::xavier(std::size_t fan_out, std::size_t fan_in, Rng& rng) {
  const float limit = std::sqrt(
      6.0f / static_cast<float>(fan_in + fan_out));
  return uniform(fan_out, fan_in, limit, rng);
}

Matrix transposed(const Matrix& m) {
  Matrix out;
  transposed(m, out);
  return out;
}

void transposed(const Matrix& m, Matrix& out) {
  out.resize(m.cols(), m.rows());
  const float* __restrict src = m.data();
  float* __restrict dst = out.data();
  const std::size_t rows = m.rows(), cols = m.cols();
  // Blocked so both the row-major reads and the column-major writes stay
  // within one cache-resident tile; a naive loop strides the destination
  // across the whole matrix per source row, which is most of the cost of
  // packing a weight per forward call.
  // Inner loop walks the DESTINATION contiguously: for tall-skinny weights
  // (4H x H) the destination row stride is a power-of-two KB, and striding
  // the writes by it maps every store in a tile onto a couple of L1 sets
  // (4K aliasing) — ~20x slower than the read-strided orientation.
  constexpr std::size_t kTile = 32;
  for (std::size_t rb = 0; rb < rows; rb += kTile) {
    const std::size_t re = std::min(rows, rb + kTile);
    for (std::size_t cb = 0; cb < cols; cb += kTile) {
      const std::size_t ce = std::min(cols, cb + kTile);
      for (std::size_t c = cb; c < ce; ++c) {
        float* __restrict drow = dst + c * rows;
        for (std::size_t r = rb; r < re; ++r) {
          drow[r] = src[r * cols + c];
        }
      }
    }
  }
}

void matmul(const Matrix& a, const Matrix& b, Matrix& out, bool accumulate) {
  check(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  if (!accumulate || out.rows() != m || out.cols() != n) {
    out.resize(m, n);
  }
  // b is already the (k x n) panel layout the axpy kernel streams.
  gemm_dispatch(a.data(), k, b.data(), n, out.data(), n, m, k, n);
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out,
               bool accumulate) {
  check(a.cols() == b.cols(), "matmul_bt: inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();

  // Accumulate semantics: the product is computed in its own chain (every
  // element from +0.0f, ascending k) and added to the existing value ONCE —
  // so an element's bits never depend on whether its row was part of a
  // fresh or an accumulating call, and batch-1 calls can use the contiguous
  // dot kernel (both operands' rows are contiguous; no pack needed).
  if (accumulate && out.rows() == m && out.cols() == n) {
    if (m == 1) {
      const float* __restrict a_row = a.data();
      const float* __restrict bp = b.data();
      float* __restrict out_row = out.data();
      for (std::size_t j = 0; j < n; ++j) {
        const float* __restrict b_row = bp + j * k;
        float dot = 0.0f;
        for (std::size_t kk = 0; kk < k; ++kk) dot += a_row[kk] * b_row[kk];
        out_row[j] += dot;
      }
      return;
    }
    // The product chain is materialized in a scratch matrix and added in
    // one pass (an O(m*n) epilogue against the O(m*k*n) product).
    // thread_local so the per-timestep LSTM recurrence reuses the buffer
    // instead of allocating; distinct pool workers get distinct buffers,
    // and the inner non-accumulate call never touches it recursively.
    static thread_local Matrix scratch;
    matmul_bt(a, b, scratch, /*accumulate=*/false);
    out += scratch;
    return;
  }
  out.resize(m, n);

  if (m < kGemmPackMinRows) {
    // Few rows: the plain dot kernel beats paying for a pack. Its single
    // chain from 0.0f is bit-identical to the packed axpy chain below.
    // Batch-1 still splits across the pool, over output columns.
    const float* __restrict ap = a.data();
    const float* __restrict bp = b.data();
    float* __restrict op = out.data();
    auto dot_cols = [&](std::size_t j0, std::size_t j1) {
      for (std::size_t i = 0; i < m; ++i) {
        const float* __restrict a_row = ap + i * k;
        float* __restrict out_row = op + i * n;
        for (std::size_t j = j0; j < j1; ++j) {
          const float* __restrict b_row = bp + j * k;
          float dot = 0.0f;
          for (std::size_t kk = 0; kk < k; ++kk) dot += a_row[kk] * b_row[kk];
          out_row[j] += dot;
        }
      }
    };
    if (m * k * n >= kParallelFlopThreshold && n >= 16) {
      parallel_ranges(n, 8, dot_cols);
    } else {
      dot_cols(0, n);
    }
    return;
  }

  // General case: pack b into a contiguous (k x n) panel once, then run the
  // same axpy kernel as matmul. The pack is O(k*n) against an O(m*k*n)
  // product and turns every inner loop into unit-stride traffic.
  const Matrix bt = transposed(b);
  gemm_dispatch(a.data(), k, bt.data(), n, out.data(), n, m, k, n);
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out,
               bool accumulate) {
  check(a.rows() == b.rows(), "matmul_at: inner dimension mismatch");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  if (!accumulate || out.rows() != m || out.cols() != n) {
    out.resize(m, n);
  }
  const float* __restrict ap = a.data();
  const float* __restrict bp = b.data();
  float* __restrict op = out.data();
  // Rank-1 update per shared row. Chunking over m (output rows) keeps each
  // out element's accumulation in ascending-k order within its chunk while
  // giving training backprop — where m is 4*hidden or num_classes — the
  // pool that the forward products already use.
  auto update_rows = [&](std::size_t i0, std::size_t i1) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* __restrict a_row = ap + kk * m;
      const float* __restrict b_row = bp + kk * n;
      for (std::size_t i = i0; i < i1; ++i) {
        const float av = a_row[i];
        float* __restrict out_row = op + i * n;
        for (std::size_t j = 0; j < n; ++j) out_row[j] += av * b_row[j];
      }
    }
  };
  if (m * k * n >= kParallelFlopThreshold && m >= 16) {
    parallel_ranges(m, 8, update_rows);
  } else {
    update_rows(0, m);
  }
}

void add_row_broadcast(Matrix& m, std::span<const float> bias) {
  check(bias.size() == m.cols(), "add_row_broadcast: width mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) row[c] += bias[c];
  }
}

void column_sums(const Matrix& m, std::span<float> out) {
  check(out.size() == m.cols(), "column_sums: width mismatch");
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c];
  }
}

void hadamard(const Matrix& a, const Matrix& b, Matrix& out) {
  check(a.rows() == b.rows() && a.cols() == b.cols(), "hadamard: shape");
  out.resize(a.rows(), a.cols());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
}

}  // namespace pelican::nn
