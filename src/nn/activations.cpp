#include "nn/activations.hpp"

#include <algorithm>
#include <cstring>

#include "nn/simd.hpp"

namespace pelican::nn {

namespace {

// Cephes-style expf: exp(x) = 2^n * exp(r) with n = floor(x*log2e + 1/2)
// and r = x - n*ln2 (Cody–Waite split so r stays exact), exp(r) by a
// degree-5 polynomial. Max relative error ~2 ulp over the clamped domain.
// The scalar and vector implementations below execute the SAME operation
// chain per element; both are branch-free after the clamp.
constexpr float kExpHi = 88.3762626647949f;   // below overflow of 2^n scale
constexpr float kExpLo = -87.3365478515625f;  // above denormal underflow
constexpr float kLog2e = 1.44269504088896341f;
constexpr float kLn2Hi = 0.693359375f;
constexpr float kLn2Lo = -2.12194440e-4f;
constexpr float kExpP0 = 1.9875691500e-4f;
constexpr float kExpP1 = 1.3981999507e-3f;
constexpr float kExpP2 = 8.3334519073e-3f;
constexpr float kExpP3 = 4.1665795894e-2f;
constexpr float kExpP4 = 1.6666665459e-1f;
constexpr float kExpP5 = 5.0000001201e-1f;

// Vector types and load/store plumbing live in nn/simd.hpp (shared with the
// GEMM and quant kernels); elsewhere the kernels fall back to the scalar
// loop (kSimdWidth=1).
#if PELICAN_SIMD_KERNELS
using simd::vfloat;
using simd::vint;

inline vfloat vbroadcast(float x) noexcept { return simd::broadcast(x); }
inline vfloat vload(const float* p) noexcept { return simd::load(p); }
inline void vstore(float* p, vfloat v) noexcept { simd::store(p, v); }

/// exp over one vector. Mirrors fast_exp() lane for lane.
inline vfloat vexp(vfloat x) noexcept {
  const vfloat hi = vbroadcast(kExpHi);
  const vfloat lo = vbroadcast(kExpLo);
  // Ordered min/max select — identical results to the scalar std::min/max
  // clamp for the finite inputs the gate loop produces.
  x = (x > hi) ? hi : x;
  x = (x < lo) ? lo : x;

  // n = floor(x*log2e + 0.5): truncate toward zero, then step down one
  // where truncation rounded up (negative z). The mask of (n > z) converts
  // to -1.0f exactly, matching the scalar "subtract 1" branch.
  const vfloat z = x * kLog2e + 0.5f;
  const vint zi = __builtin_convertvector(z, vint);
  vfloat n = __builtin_convertvector(zi, vfloat);
  n += __builtin_convertvector(n > z, vfloat);

  vfloat r = x - n * kLn2Hi;
  r = r - n * kLn2Lo;

  vfloat p = vbroadcast(kExpP0);
  p = p * r + kExpP1;
  p = p * r + kExpP2;
  p = p * r + kExpP3;
  p = p * r + kExpP4;
  p = p * r + kExpP5;
  p = p * (r * r) + r;
  p = p + 1.0f;

  // 2^n by exponent-field construction; n is within [-127, 127] after the
  // clamp so the shift cannot wrap.
  const vint biased = (__builtin_convertvector(n, vint) + 127) << 23;
  vfloat scale;
  std::memcpy(&scale, &biased, sizeof(scale));
  return p * scale;
}

inline vfloat vsigmoid(vfloat x) noexcept {
  return vbroadcast(1.0f) / (vexp(-x) + 1.0f);
}

inline vfloat vtanh(vfloat x) noexcept {
  const vfloat e = vexp(x + x);
  return (e - 1.0f) / (e + 1.0f);
}
#endif

}  // namespace

float fast_exp(float x) noexcept {
  x = std::min(x, kExpHi);
  x = std::max(x, kExpLo);

  const float z = x * kLog2e + 0.5f;
  const auto zi = static_cast<std::int32_t>(z);  // truncates toward zero
  float n = static_cast<float>(zi);
  n += (n > z) ? -1.0f : 0.0f;  // floor correction, same op as the mask add

  float r = x - n * kLn2Hi;
  r = r - n * kLn2Lo;

  float p = kExpP0;
  p = p * r + kExpP1;
  p = p * r + kExpP2;
  p = p * r + kExpP3;
  p = p * r + kExpP4;
  p = p * r + kExpP5;
  p = p * (r * r) + r;
  p = p + 1.0f;

  const std::int32_t biased = (static_cast<std::int32_t>(n) + 127) << 23;
  float scale;
  std::memcpy(&scale, &biased, sizeof(scale));
  return p * scale;
}

float fast_sigmoid(float x) noexcept { return 1.0f / (fast_exp(-x) + 1.0f); }

float fast_tanh(float x) noexcept {
  const float e = fast_exp(x + x);
  return (e - 1.0f) / (e + 1.0f);
}

void sigmoid_inplace(float* x, std::size_t n, ActivationMode mode) {
  if (mode == ActivationMode::kExact) {
    for (std::size_t i = 0; i < n; ++i) x[i] = sigmoid(x[i]);
    return;
  }
  std::size_t i = 0;
#if PELICAN_SIMD_KERNELS
  for (; i + kSimdWidth <= n; i += kSimdWidth) {
    vstore(x + i, vsigmoid(vload(x + i)));
  }
#endif
  for (; i < n; ++i) x[i] = fast_sigmoid(x[i]);
}

void tanh_inplace(float* x, std::size_t n, ActivationMode mode) {
  if (mode == ActivationMode::kExact) {
    for (std::size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
    return;
  }
  std::size_t i = 0;
#if PELICAN_SIMD_KERNELS
  for (; i + kSimdWidth <= n; i += kSimdWidth) {
    vstore(x + i, vtanh(vload(x + i)));
  }
#endif
  for (; i < n; ++i) x[i] = fast_tanh(x[i]);
}

void lstm_gate_pass(float* gates, const float* bias, const float* c_prev,
                    float* c_out, float* tanh_c_out, float* h_out,
                    std::size_t hidden, ActivationMode mode) {
  float* gi = gates;
  float* gf = gates + hidden;
  float* gg = gates + 2 * hidden;
  float* go = gates + 3 * hidden;

  if (mode == ActivationMode::kExact) {
    for (std::size_t j = 0; j < hidden; ++j) {
      const float i = sigmoid(gi[j] + bias[j]);
      const float f = sigmoid(gf[j] + bias[hidden + j]);
      const float g = std::tanh(gg[j] + bias[2 * hidden + j]);
      const float o = sigmoid(go[j] + bias[3 * hidden + j]);
      gi[j] = i;
      gf[j] = f;
      gg[j] = g;
      go[j] = o;
      const float c = f * c_prev[j] + i * g;
      const float tc = std::tanh(c);
      c_out[j] = c;
      tanh_c_out[j] = tc;
      h_out[j] = o * tc;
    }
    return;
  }

  std::size_t j = 0;
#if PELICAN_SIMD_KERNELS
  for (; j + kSimdWidth <= hidden; j += kSimdWidth) {
    const vfloat i = vsigmoid(vload(gi + j) + vload(bias + j));
    const vfloat f = vsigmoid(vload(gf + j) + vload(bias + hidden + j));
    const vfloat g = vtanh(vload(gg + j) + vload(bias + 2 * hidden + j));
    const vfloat o = vsigmoid(vload(go + j) + vload(bias + 3 * hidden + j));
    vstore(gi + j, i);
    vstore(gf + j, f);
    vstore(gg + j, g);
    vstore(go + j, o);
    const vfloat c = f * vload(c_prev + j) + i * g;
    const vfloat tc = vtanh(c);
    vstore(c_out + j, c);
    vstore(tanh_c_out + j, tc);
    vstore(h_out + j, o * tc);
  }
#endif
  for (; j < hidden; ++j) {
    const float i = fast_sigmoid(gi[j] + bias[j]);
    const float f = fast_sigmoid(gf[j] + bias[hidden + j]);
    const float g = fast_tanh(gg[j] + bias[2 * hidden + j]);
    const float o = fast_sigmoid(go[j] + bias[3 * hidden + j]);
    gi[j] = i;
    gf[j] = f;
    gg[j] = g;
    go[j] = o;
    const float c = f * c_prev[j] + i * g;
    const float tc = fast_tanh(c);
    c_out[j] = c;
    tanh_c_out[j] = tc;
    h_out[j] = o * tc;
  }
}

}  // namespace pelican::nn
