// Time-series cross-validation and grid search.
//
// The paper selects hyperparameters "on time-series based k-fold cross
// validation" — folds are expanding prefixes so validation data is always
// strictly in the future of its training data (no leakage across time).
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

#include "nn/data.hpp"

namespace pelican::nn {

/// One expanding-window fold: train on [0, train_end), validate on
/// [train_end, validation_end).
struct TimeSeriesFold {
  std::uint32_t train_end = 0;
  std::uint32_t validation_end = 0;
};

/// Splits n time-ordered samples into k expanding folds. The first fold
/// trains on the first 1/(k+1) of the data; each later fold grows the
/// training prefix by one slice and validates on the next slice.
[[nodiscard]] std::vector<TimeSeriesFold> time_series_folds(std::size_t n,
                                                            std::size_t k);

/// Cross-validated score of one hyperparameter configuration: the mean of
/// `score(train_view, validation_view)` over folds. Higher is better.
using FoldScorer =
    std::function<double(const BatchSource& train, const BatchSource& val)>;

[[nodiscard]] double cross_validate(const BatchSource& data,
                                    std::span<const TimeSeriesFold> folds,
                                    const FoldScorer& score);

/// Exhaustive grid search over configurations. `evaluate` returns the score
/// of one configuration (typically via cross_validate). Ties keep the
/// earliest configuration, so grids should be ordered cheapest-first.
template <typename Config>
struct GridSearchResult {
  Config best{};
  double best_score = 0.0;
  std::vector<std::pair<Config, double>> scores;
};

template <typename Config, typename Evaluate>
GridSearchResult<Config> grid_search(std::span<const Config> grid,
                                     Evaluate&& evaluate) {
  if (grid.empty()) {
    throw std::invalid_argument("grid_search: empty grid");
  }
  GridSearchResult<Config> result;
  bool first = true;
  for (const Config& config : grid) {
    const double score = evaluate(config);
    result.scores.emplace_back(config, score);
    if (first || score > result.best_score) {
      result.best = config;
      result.best_score = score;
      first = false;
    }
  }
  return result;
}

}  // namespace pelican::nn
