// Inference-only LSTM over int8-quantized weights (nn/quant.hpp): the
// serving-path counterpart of nn::Lstm, produced by quantize_for_serving()
// at model-publish time.
//
// Same recurrence, same [i f g o] gate layout, same fused gate pass
// (nn/activations.hpp — exact activations by default, fast mode opt-in);
// only the weight products differ: the input product gathers contiguous
// int8 panel rows per one-hot entry (dequant-free — see quant.hpp) and the
// recurrence accumulates fp32 activations against int8 weight rows a
// quarter the size of their fp32 originals.
//
// Inference-only is structural, not a convention: there is no forward
// cache, backward() throws, parameters()/gradients() are empty, and the
// layer constructs untrainable. Training always happens in fp32; a
// quantized artifact is what the store publishes for serving (ModelStore
// PublishFormat::kInt8).
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"
#include "nn/quant.hpp"

namespace pelican::nn {

class QuantizedLstm final : public SequenceLayer {
 public:
  QuantizedLstm() = default;

  /// Takes already-quantized gate weights (w_ih: 4H x I, w_hh: 4H x H, both
  /// with per-row scales) and the fp32 bias (1 x 4H — bias stays fp32: it
  /// is 4H floats total and feeds the fused gate pass directly).
  QuantizedLstm(QuantizedMatrix w_ih, QuantizedMatrix w_hh, Matrix bias);

  Sequence forward(const Sequence& input, bool training) override;
  Sequence forward_sparse(const SparseSequence& input, bool training) override;

  /// Quantized layers are inference-only; the fp32 original is the
  /// trainable artifact.
  Sequence backward(const Sequence& grad_output) override;

  std::vector<Matrix*> parameters() override { return {}; }
  std::vector<Matrix*> gradients() override { return {}; }

  [[nodiscard]] std::size_t input_dim() const override {
    return w_ih_.cols();
  }
  [[nodiscard]] std::size_t output_dim() const override {
    return w_hh_.cols();
  }
  [[nodiscard]] std::size_t hidden_dim() const { return w_hh_.cols(); }

  [[nodiscard]] std::unique_ptr<SequenceLayer> clone() const override;
  [[nodiscard]] std::string kind() const override { return "qlstm"; }

  void set_activation_mode(ActivationMode mode) noexcept override {
    mode_ = mode;
  }
  [[nodiscard]] ActivationMode activation_mode() const noexcept {
    return mode_;
  }

  [[nodiscard]] const QuantizedMatrix& w_ih() const noexcept { return w_ih_; }
  [[nodiscard]] const QuantizedMatrix& w_hh() const noexcept { return w_hh_; }
  [[nodiscard]] const Matrix& bias() const noexcept { return bias_; }

  void save(BinaryWriter& writer) const override;
  static std::unique_ptr<QuantizedLstm> load(BinaryReader& reader);

 private:
  /// Shared recurrence body; `input_product` fills this timestep's
  /// pre-activation gates (dense int8 product or sparse panel gather).
  template <typename InputProduct>
  Sequence run_forward(std::size_t steps, std::size_t batch,
                       InputProduct&& input_product);

  QuantizedMatrix w_ih_;              // 4H x I, per-row scales
  QuantizedMatrix w_hh_;              // 4H x H, per-row scales
  // Transposed panels for the axpy kernels (quant.hpp), packed once at
  // construction — the weights are immutable — and never serialized:
  std::vector<std::int8_t> w_ih_t_;   // I x 4H (sparse gather + dense input)
  std::vector<std::int8_t> w_hh_t_;   // H x 4H (recurrence)
  Matrix bias_;                       // 1 x 4H, fp32
  ActivationMode mode_ = ActivationMode::kExact;
};

}  // namespace pelican::nn
