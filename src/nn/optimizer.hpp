// Gradient-based optimizers over a model's trainable parameters.
//
// Optimizers see only (parameter, gradient) pairs harvested from *trainable*
// layers, which is how transfer-learning freezing is enforced: a frozen
// layer's weights are never touched, bit for bit (a test asserts this).
// Adam matches the paper's training setup (decoupled weight decay 1e-6,
// learning rate 1e-4 for the general model).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace pelican::nn {

/// A parameter tensor paired with its gradient accumulator.
struct ParamRef {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

/// Scales gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_gradient_norm(std::span<const ParamRef> params, double max_norm);

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using current gradients, then leaves gradients
  /// untouched (callers zero them at the start of the next step).
  virtual void step(std::span<const ParamRef> params) = 0;

  /// Resets internal state (moments); call when the parameter set changes.
  virtual void reset() = 0;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);

  void step(std::span<const ParamRef> params) override;
  void reset() override { velocity_.clear(); }

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<std::vector<float>> velocity_;  // per-param, lazily sized
};

/// Adam (Kingma & Ba 2015) with decoupled weight decay (AdamW-style).
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double weight_decay = 0.0, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-8);

  void step(std::span<const ParamRef> params) override;
  void reset() override {
    m_.clear();
    v_.clear();
    t_ = 0;
  }

  void set_lr(double lr) noexcept { lr_ = lr; }
  [[nodiscard]] double lr() const noexcept { return lr_; }

 private:
  double lr_;
  double weight_decay_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::size_t t_ = 0;
};

}  // namespace pelican::nn
