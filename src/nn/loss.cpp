#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pelican::nn {

Matrix softmax(const Matrix& logits, double temperature) {
  if (!(temperature > 0.0)) {
    throw std::invalid_argument("softmax: temperature must be > 0");
  }
  Matrix probs(logits.rows(), logits.cols());
  std::vector<double> scaled(logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    double max_scaled = -1e300;
    for (std::size_t c = 0; c < row.size(); ++c) {
      scaled[c] = static_cast<double>(row[c]) / temperature;
      max_scaled = std::max(max_scaled, scaled[c]);
    }
    double total = 0.0;
    for (std::size_t c = 0; c < row.size(); ++c) {
      scaled[c] = std::exp(scaled[c] - max_scaled);
      total += scaled[c];
    }
    auto out = probs.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      out[c] = static_cast<float>(scaled[c] / total);
    }
  }
  return probs;
}

Matrix log_softmax(const Matrix& logits) {
  Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto row = logits.row(r);
    double max_logit = -1e300;
    for (const float z : row) {
      max_logit = std::max(max_logit, static_cast<double>(z));
    }
    double total = 0.0;
    for (const float z : row) total += std::exp(z - max_logit);
    const double log_norm = max_logit + std::log(total);
    auto out_row = out.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      out_row[c] = static_cast<float>(row[c] - log_norm);
    }
  }
  return out;
}

LossResult softmax_cross_entropy(const Matrix& logits,
                                 std::span<const std::int32_t> labels) {
  if (labels.size() != logits.rows()) {
    throw std::invalid_argument("softmax_cross_entropy: label count");
  }
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  const Matrix log_probs = log_softmax(logits);

  LossResult result;
  result.grad_logits.resize(batch, classes);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  double total_loss = 0.0;
  for (std::size_t r = 0; r < batch; ++r) {
    const auto label = labels[r];
    if (label < 0 || static_cast<std::size_t>(label) >= classes) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    total_loss -= log_probs(r, static_cast<std::size_t>(label));
    auto grad_row = result.grad_logits.row(r);
    const auto lp_row = log_probs.row(r);
    for (std::size_t c = 0; c < classes; ++c) {
      grad_row[c] = std::exp(lp_row[c]) * inv_batch;
    }
    grad_row[static_cast<std::size_t>(label)] -= inv_batch;
  }
  result.loss = total_loss / static_cast<double>(batch);
  return result;
}

namespace {

template <typename Float>
std::vector<std::size_t> topk_impl(std::span<const Float> scores,
                                   std::size_t k) {
  k = std::min(k, scores.size());
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(k);
  return order;
}

}  // namespace

std::vector<std::size_t> topk_indices(std::span<const float> scores,
                                      std::size_t k) {
  return topk_impl(scores, k);
}

std::vector<std::size_t> topk_indices(std::span<const double> scores,
                                      std::size_t k) {
  return topk_impl(scores, k);
}

std::vector<std::vector<std::size_t>> topk_rows(const Matrix& scores,
                                                std::size_t k) {
  std::vector<std::vector<std::size_t>> out;
  out.reserve(scores.rows());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    out.push_back(topk_impl(scores.row(r), k));
  }
  return out;
}

}  // namespace pelican::nn
