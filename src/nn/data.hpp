// BatchSource: the interface between datasets and the training/evaluation
// machinery. Datasets stay in a compact discrete form (session windows) and
// materialize one-hot minibatches on demand, which keeps AP-scale inputs
// (thousands of location categories) affordable in memory.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "nn/layer.hpp"

namespace pelican::nn {

class BatchSource {
 public:
  virtual ~BatchSource() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t seq_len() const = 0;
  [[nodiscard]] virtual std::size_t input_dim() const = 0;
  [[nodiscard]] virtual std::size_t num_classes() const = 0;

  /// Fills `x` (seq_len matrices of |indices| x input_dim) and `y`
  /// (|indices| labels) for the requested sample indices.
  virtual void materialize(std::span<const std::uint32_t> indices, Sequence& x,
                           std::vector<std::int32_t>& y) const = 0;

  /// True when materialize_sparse produces meaningfully sparse rows (one-hot
  /// encodings). The training and evaluation loops then prefer the sparse
  /// batches — the forward results are bit-identical (nn/sparse.hpp), only
  /// the input product shrinks from input_dim-wide GEMM panels to nnz row
  /// gathers.
  [[nodiscard]] virtual bool sparse() const { return false; }

  /// Sparse counterpart of materialize(). Only meaningful when sparse() is
  /// true; the default (for inherently dense sources) throws.
  virtual void materialize_sparse(std::span<const std::uint32_t> /*indices*/,
                                  SparseSequence& /*x*/,
                                  std::vector<std::int32_t>& /*y*/) const {
    throw std::logic_error(
        "BatchSource::materialize_sparse: source is not sparse-capable");
  }
};

/// A contiguous or arbitrary-index view over another BatchSource; used for
/// train/validation folds and week-prefix subsets (Table IV) without copies.
class SubsetSource final : public BatchSource {
 public:
  SubsetSource(const BatchSource& base, std::vector<std::uint32_t> indices)
      : base_(&base), indices_(std::move(indices)) {}

  [[nodiscard]] std::size_t size() const override { return indices_.size(); }
  [[nodiscard]] std::size_t seq_len() const override {
    return base_->seq_len();
  }
  [[nodiscard]] std::size_t input_dim() const override {
    return base_->input_dim();
  }
  [[nodiscard]] std::size_t num_classes() const override {
    return base_->num_classes();
  }

  void materialize(std::span<const std::uint32_t> indices, Sequence& x,
                   std::vector<std::int32_t>& y) const override {
    base_->materialize(map(indices), x, y);
  }

  [[nodiscard]] bool sparse() const override { return base_->sparse(); }

  void materialize_sparse(std::span<const std::uint32_t> indices,
                          SparseSequence& x,
                          std::vector<std::int32_t>& y) const override {
    base_->materialize_sparse(map(indices), x, y);
  }

  /// Range view [begin, end) over `base`.
  static SubsetSource range(const BatchSource& base, std::uint32_t begin,
                            std::uint32_t end) {
    std::vector<std::uint32_t> indices;
    indices.reserve(end - begin);
    for (std::uint32_t i = begin; i < end; ++i) indices.push_back(i);
    return {base, std::move(indices)};
  }

 private:
  [[nodiscard]] std::vector<std::uint32_t> map(
      std::span<const std::uint32_t> indices) const {
    std::vector<std::uint32_t> mapped(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      mapped[i] = indices_[indices[i]];
    }
    return mapped;
  }

  const BatchSource* base_;
  std::vector<std::uint32_t> indices_;
};

}  // namespace pelican::nn
