// Versioned model store (ROADMAP "model cache -> model store"): the single
// source of truth for trained model artifacts across the system.
//
// Models are keyed by (scope, user_id, version). `scope` is a free-form
// namespace string — the cloud tier stores general models under "general",
// the serving tier publishes re-personalized models under a per-deployment
// scope, and the bench pipeline namespaces its cache by scale config. Within
// one (scope, user) slot, versions are monotone integers; `put_next`
// allocates them, `latest` resolves them, and `pin`/`trim` manage retention
// (a pinned version — e.g. the one a deployment currently serves — survives
// any trim).
//
// Storage is pluggable behind StoreBackend: MemoryBackend keeps clones
// in-process (the cloud tier's version map), FilesystemBackend persists
// checkpoints via common/serialize (the bench pipeline's cross-run cache).
// Both hand out deep copies on get, so a stored model keeps serving other
// readers no matter what the caller does with its copy.
//
// ModelStore is thread-safe: every operation runs under one internal mutex,
// which makes concurrent put_next version allocation race-free. Reads clone
// under the lock, so a get costs one model copy end to end — the design
// assumption is that callers (e.g. DeploymentRegistry::publish) treat get as
// the expensive, off-critical-path step of a model update.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "nn/model.hpp"

namespace pelican::store {

/// How put/put_next persist a model. kFp32 stores the artifact as given
/// (the trainable original). kInt8 runs nn::quantize_for_serving before
/// storage: per-row-scale int8 weights, ~4x smaller checkpoints, an
/// inference-only artifact whose outputs track the fp32 original within
/// the nn/quant.hpp tolerance. Quantization happens outside the store
/// lock — it is CPU work, not a shared-state mutation.
enum class PublishFormat : std::uint8_t {
  kFp32 = 0,
  kInt8 = 1,
};

/// Identity of one stored model artifact.
struct ModelKey {
  std::string scope;          ///< namespace, e.g. "general" or "bench/tiny"
  std::uint32_t user_id = 0;  ///< 0 by convention for non-per-user models
  std::uint32_t version = 0;  ///< monotone within (scope, user_id)

  [[nodiscard]] bool operator==(const ModelKey&) const = default;
  [[nodiscard]] auto operator<=>(const ModelKey&) const = default;

  /// "scope/u<user>/v<version>" — used in error messages and fs layout.
  [[nodiscard]] std::string to_string() const;
};

/// Pluggable storage for ModelStore. Implementations need not be
/// thread-safe: ModelStore serializes all backend calls.
class StoreBackend {
 public:
  virtual ~StoreBackend() = default;

  /// Stores (or replaces) the artifact under `key`. Takes ownership so an
  /// in-memory backend can keep the model without an extra clone.
  virtual void put(const ModelKey& key, nn::SequenceClassifier model) = 0;

  /// Deep copy of the artifact, or nullopt when absent. May throw
  /// SerializeError when the artifact exists but cannot be decoded
  /// (truncated/corrupt checkpoint).
  [[nodiscard]] virtual std::optional<nn::SequenceClassifier> get(
      const ModelKey& key) const = 0;

  [[nodiscard]] virtual bool contains(const ModelKey& key) const = 0;

  /// Removes the artifact; false when absent.
  virtual bool erase(const ModelKey& key) = 0;

  /// All stored versions of (scope, user_id), ascending. Empty when none.
  [[nodiscard]] virtual std::vector<std::uint32_t> versions(
      const std::string& scope, std::uint32_t user_id) const = 0;
};

/// In-process storage: the store owns clones of every put model.
class MemoryBackend final : public StoreBackend {
 public:
  void put(const ModelKey& key, nn::SequenceClassifier model) override;
  [[nodiscard]] std::optional<nn::SequenceClassifier> get(
      const ModelKey& key) const override;
  [[nodiscard]] bool contains(const ModelKey& key) const override;
  bool erase(const ModelKey& key) override;
  [[nodiscard]] std::vector<std::uint32_t> versions(
      const std::string& scope, std::uint32_t user_id) const override;

 private:
  std::map<ModelKey, nn::SequenceClassifier> models_;
};

/// Checkpoint files under `root`/<scope>/u<user>/v<version>.bin, written and
/// read through common/serialize (nn::SequenceClassifier save/load). A
/// second FilesystemBackend over the same root sees everything an earlier
/// one stored — this is what makes the bench pipeline cache survive runs.
class FilesystemBackend final : public StoreBackend {
 public:
  /// `root` is created lazily on first put. Scopes may contain '/' (they
  /// become subdirectories) but must be relative and must not contain "..".
  explicit FilesystemBackend(std::filesystem::path root);

  void put(const ModelKey& key, nn::SequenceClassifier model) override;
  [[nodiscard]] std::optional<nn::SequenceClassifier> get(
      const ModelKey& key) const override;
  [[nodiscard]] bool contains(const ModelKey& key) const override;
  bool erase(const ModelKey& key) override;
  [[nodiscard]] std::vector<std::uint32_t> versions(
      const std::string& scope, std::uint32_t user_id) const override;

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

 private:
  [[nodiscard]] std::filesystem::path path_of(const ModelKey& key) const;
  [[nodiscard]] std::filesystem::path slot_dir(const std::string& scope,
                                               std::uint32_t user_id) const;

  std::filesystem::path root_;
};

/// Every operation validates the key's scope (non-empty, relative, no
/// "..") and throws std::invalid_argument on violation — uniformly across
/// backends, so a store is backend-swappable without behavior changes on
/// the read path.
class ModelStore {
 public:
  /// Defaults to an in-memory backend.
  explicit ModelStore(std::unique_ptr<StoreBackend> backend = nullptr);

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Stores `model` under an explicit key (replacing any existing entry).
  /// With PublishFormat::kInt8 the stored artifact is the quantized copy,
  /// not `model` itself (quantize-on-publish).
  void put(const ModelKey& key, nn::SequenceClassifier model,
           PublishFormat format = PublishFormat::kFp32);

  /// Stores `model` under the next free version of (scope, user_id) —
  /// latest + 1, or 1 when the slot is empty — and returns that version.
  /// Atomic with respect to concurrent put_next on the same slot.
  std::uint32_t put_next(const std::string& scope, std::uint32_t user_id,
                         nn::SequenceClassifier model,
                         PublishFormat format = PublishFormat::kFp32);

  /// Deep copy of the stored model. Throws std::out_of_range naming the key
  /// when absent; propagates SerializeError for undecodable artifacts.
  [[nodiscard]] nn::SequenceClassifier get(const ModelKey& key) const;

  /// Like get, but nullopt when absent (still throws SerializeError for an
  /// artifact that exists and cannot be decoded).
  [[nodiscard]] std::optional<nn::SequenceClassifier> find(
      const ModelKey& key) const;

  [[nodiscard]] bool contains(const ModelKey& key) const;

  /// Newest stored version of (scope, user_id). Throws std::out_of_range
  /// when the slot is empty; find_latest is the non-throwing variant.
  [[nodiscard]] std::uint32_t latest(const std::string& scope,
                                     std::uint32_t user_id) const;
  [[nodiscard]] std::optional<std::uint32_t> find_latest(
      const std::string& scope, std::uint32_t user_id) const;

  /// Marks a version as not evictable by trim (e.g. the version a live
  /// deployment serves). False when the key is not stored.
  bool pin(const ModelKey& key);
  /// Removes a pin; false when the key was not pinned.
  bool unpin(const ModelKey& key);
  [[nodiscard]] bool pinned(const ModelKey& key) const;

  /// Evicts stored versions of (scope, user_id) except the newest
  /// `keep_latest` and every pinned version. Returns the number evicted.
  std::size_t trim(const std::string& scope, std::uint32_t user_id,
                   std::size_t keep_latest = 1);

  /// Unconditional removal (pins do not protect against explicit erase);
  /// drops the pin too. False when absent.
  bool erase(const ModelKey& key);

  [[nodiscard]] std::vector<std::uint32_t> versions(
      const std::string& scope, std::uint32_t user_id) const;

 private:
  mutable Mutex mutex_;
  /// Backends need not be thread-safe: every call goes through mutex_
  /// (the pointer is set once in the constructor and never reseated, but
  /// the POINTEE's state is what the lock actually protects).
  std::unique_ptr<StoreBackend> backend_ PELICAN_PT_GUARDED_BY(mutex_);
  std::set<ModelKey> pins_ PELICAN_GUARDED_BY(mutex_);
};

}  // namespace pelican::store
