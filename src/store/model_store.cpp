#include "store/model_store.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace pelican::store {

namespace {

void validate_scope(const std::string& scope) {
  if (scope.empty()) {
    throw std::invalid_argument("ModelKey: scope must be non-empty");
  }
  if (scope.front() == '/' || scope.find("..") != std::string::npos) {
    throw std::invalid_argument(
        "ModelKey: scope must be relative and must not contain '..' "
        "(got '" + scope + "')");
  }
}

}  // namespace

std::string ModelKey::to_string() const {
  return scope + "/u" + std::to_string(user_id) + "/v" +
         std::to_string(version);
}

// ---------------------------------------------------------------- memory --

void MemoryBackend::put(const ModelKey& key, nn::SequenceClassifier model) {
  models_.insert_or_assign(key, std::move(model));
}

std::optional<nn::SequenceClassifier> MemoryBackend::get(
    const ModelKey& key) const {
  const auto it = models_.find(key);
  if (it == models_.end()) return std::nullopt;
  return it->second.clone();
}

bool MemoryBackend::contains(const ModelKey& key) const {
  return models_.contains(key);
}

bool MemoryBackend::erase(const ModelKey& key) {
  return models_.erase(key) > 0;
}

std::vector<std::uint32_t> MemoryBackend::versions(
    const std::string& scope, std::uint32_t user_id) const {
  std::vector<std::uint32_t> out;
  // ModelKey orders by (scope, user_id, version), so the slot is one
  // contiguous map range starting at version 0.
  for (auto it = models_.lower_bound({scope, user_id, 0});
       it != models_.end() && it->first.scope == scope &&
       it->first.user_id == user_id;
       ++it) {
    out.push_back(it->first.version);
  }
  return out;
}

// ------------------------------------------------------------ filesystem --

FilesystemBackend::FilesystemBackend(std::filesystem::path root)
    : root_(std::move(root)) {}

std::filesystem::path FilesystemBackend::slot_dir(
    const std::string& scope, std::uint32_t user_id) const {
  validate_scope(scope);
  return root_ / std::filesystem::path(scope) /
         ("u" + std::to_string(user_id));
}

std::filesystem::path FilesystemBackend::path_of(const ModelKey& key) const {
  return slot_dir(key.scope, key.user_id) /
         ("v" + std::to_string(key.version) + ".bin");
}

void FilesystemBackend::put(const ModelKey& key,
                            nn::SequenceClassifier model) {
  const auto path = path_of(key);
  std::filesystem::create_directories(path.parent_path());
  model.save_file(path);
}

std::optional<nn::SequenceClassifier> FilesystemBackend::get(
    const ModelKey& key) const {
  const auto path = path_of(key);
  if (!std::filesystem::exists(path)) return std::nullopt;
  // Propagates SerializeError for truncated/corrupt checkpoints — callers
  // (e.g. the bench pipeline) decide whether that means "retrain".
  return nn::SequenceClassifier::load_file(path);
}

bool FilesystemBackend::contains(const ModelKey& key) const {
  return std::filesystem::exists(path_of(key));
}

bool FilesystemBackend::erase(const ModelKey& key) {
  std::error_code ec;
  return std::filesystem::remove(path_of(key), ec) && !ec;
}

std::vector<std::uint32_t> FilesystemBackend::versions(
    const std::string& scope, std::uint32_t user_id) const {
  std::vector<std::uint32_t> out;
  const auto dir = slot_dir(scope, user_id);
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 6 || name.front() != 'v' || !name.ends_with(".bin")) {
      continue;  // foreign file in the cache directory
    }
    std::uint32_t version = 0;
    const char* first = name.data() + 1;
    const char* last = name.data() + name.size() - 4;
    const auto [ptr, parse_ec] = std::from_chars(first, last, version);
    if (parse_ec != std::errc{} || ptr != last) continue;
    out.push_back(version);
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------ ModelStore --

ModelStore::ModelStore(std::unique_ptr<StoreBackend> backend)
    : backend_(backend ? std::move(backend)
                       : std::make_unique<MemoryBackend>()) {}

void ModelStore::put(const ModelKey& key, nn::SequenceClassifier model,
                     PublishFormat format) {
  validate_scope(key.scope);
  if (format == PublishFormat::kInt8 && !nn::is_quantized(model)) {
    model = nn::quantize_for_serving(model);  // off-lock: pure CPU work
  }
  const MutexLock lock(mutex_);
  backend_->put(key, std::move(model));
}

std::uint32_t ModelStore::put_next(const std::string& scope,
                                   std::uint32_t user_id,
                                   nn::SequenceClassifier model,
                                   PublishFormat format) {
  validate_scope(scope);
  if (format == PublishFormat::kInt8 && !nn::is_quantized(model)) {
    model = nn::quantize_for_serving(model);  // off-lock: pure CPU work
  }
  const MutexLock lock(mutex_);
  const auto stored = backend_->versions(scope, user_id);
  const std::uint32_t version = stored.empty() ? 1 : stored.back() + 1;
  backend_->put({scope, user_id, version}, std::move(model));
  return version;
}

nn::SequenceClassifier ModelStore::get(const ModelKey& key) const {
  auto model = find(key);
  if (!model) {
    throw std::out_of_range("ModelStore: no model stored under " +
                            key.to_string());
  }
  return *std::move(model);
}

std::optional<nn::SequenceClassifier> ModelStore::find(
    const ModelKey& key) const {
  validate_scope(key.scope);
  const MutexLock lock(mutex_);
  return backend_->get(key);
}

bool ModelStore::contains(const ModelKey& key) const {
  validate_scope(key.scope);
  const MutexLock lock(mutex_);
  return backend_->contains(key);
}

std::uint32_t ModelStore::latest(const std::string& scope,
                                 std::uint32_t user_id) const {
  const auto version = find_latest(scope, user_id);
  if (!version) {
    throw std::out_of_range("ModelStore: no versions stored under " + scope +
                            "/u" + std::to_string(user_id));
  }
  return *version;
}

std::optional<std::uint32_t> ModelStore::find_latest(
    const std::string& scope, std::uint32_t user_id) const {
  validate_scope(scope);
  const MutexLock lock(mutex_);
  const auto stored = backend_->versions(scope, user_id);
  if (stored.empty()) return std::nullopt;
  return stored.back();
}

bool ModelStore::pin(const ModelKey& key) {
  validate_scope(key.scope);
  const MutexLock lock(mutex_);
  if (!backend_->contains(key)) return false;
  pins_.insert(key);
  return true;
}

bool ModelStore::unpin(const ModelKey& key) {
  const MutexLock lock(mutex_);
  return pins_.erase(key) > 0;
}

bool ModelStore::pinned(const ModelKey& key) const {
  const MutexLock lock(mutex_);
  return pins_.contains(key);
}

std::size_t ModelStore::trim(const std::string& scope, std::uint32_t user_id,
                             std::size_t keep_latest) {
  validate_scope(scope);
  const MutexLock lock(mutex_);
  const auto stored = backend_->versions(scope, user_id);
  if (stored.size() <= keep_latest) return 0;
  std::size_t evicted = 0;
  for (std::size_t i = 0; i + keep_latest < stored.size(); ++i) {
    const ModelKey key{scope, user_id, stored[i]};
    if (pins_.contains(key)) continue;
    if (backend_->erase(key)) ++evicted;
  }
  return evicted;
}

bool ModelStore::erase(const ModelKey& key) {
  validate_scope(key.scope);
  const MutexLock lock(mutex_);
  pins_.erase(key);
  return backend_->erase(key);
}

std::vector<std::uint32_t> ModelStore::versions(const std::string& scope,
                                                std::uint32_t user_id) const {
  validate_scope(scope);
  const MutexLock lock(mutex_);
  return backend_->versions(scope, user_id);
}

}  // namespace pelican::store
