#include "models/personalize.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "nn/lstm.hpp"
#include "models/window_dataset.hpp"

namespace pelican::models {

const char* to_string(PersonalizationMethod method) noexcept {
  switch (method) {
    case PersonalizationMethod::kReuse:
      return "Reuse";
    case PersonalizationMethod::kFreshLstm:
      return "LSTM";
    case PersonalizationMethod::kFeatureExtraction:
      return "TL FE";
    case PersonalizationMethod::kFineTuning:
      return "TL FT";
  }
  return "unknown";
}

namespace {

/// Fig. 1b: freeze every general layer, stack a fresh LSTM between the
/// frozen base and the (warm-started, trainable) head.
nn::SequenceClassifier build_feature_extraction(
    const nn::SequenceClassifier& general, Rng& rng) {
  nn::SequenceClassifier model = general.clone();
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    model.layer(i).set_trainable(false);
  }
  const std::size_t hidden = model.head().input_dim();
  auto surplus = std::make_unique<nn::Lstm>(hidden, hidden, rng);
  model.insert_layer(model.layer_count(), std::move(surplus));
  model.head().set_trainable(true);
  return model;
}

/// Fig. 1c: freeze the first LSTM (and anything before the last LSTM),
/// re-train the last LSTM and the head.
nn::SequenceClassifier build_fine_tuning(
    const nn::SequenceClassifier& general) {
  nn::SequenceClassifier model = general.clone();
  // Find the last LSTM layer; everything before it is frozen.
  std::size_t last_lstm = model.layer_count();
  for (std::size_t i = model.layer_count(); i-- > 0;) {
    if (model.layer(i).kind() == "lstm") {
      last_lstm = i;
      break;
    }
  }
  if (last_lstm == model.layer_count()) {
    throw std::invalid_argument("fine tuning: general model has no LSTM");
  }
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    model.layer(i).set_trainable(i >= last_lstm);
  }
  model.head().set_trainable(true);
  return model;
}

}  // namespace

PersonalizedModel personalize(const nn::SequenceClassifier& general,
                              const models::WindowDataset& user_train,
                              const PersonalizationConfig& config) {
  Rng rng(config.seed);
  PersonalizedModel result;
  switch (config.method) {
    case PersonalizationMethod::kReuse:
      result.model = general.clone();
      return result;  // no training at all
    case PersonalizationMethod::kFreshLstm:
      result.model = nn::make_one_layer_lstm(
          user_train.input_dim(), config.fresh_hidden_dim,
          user_train.num_classes(), config.fresh_dropout, rng);
      break;
    case PersonalizationMethod::kFeatureExtraction:
      result.model = build_feature_extraction(general, rng);
      break;
    case PersonalizationMethod::kFineTuning:
      result.model = build_fine_tuning(general);
      break;
  }
  result.report = nn::train(result.model, user_train, config.train);
  return result;
}

PersonalizedModel update_personalized(
    const nn::SequenceClassifier& current,
    const models::WindowDataset& user_train,
    const PersonalizationConfig& config) {
  PersonalizedModel result;
  result.model = current.clone();  // warm start; freeze flags preserved
  if (config.method == PersonalizationMethod::kReuse) {
    return result;  // nothing to update
  }
  result.report = nn::train(result.model, user_train, config.train);
  return result;
}

}  // namespace pelican::models
