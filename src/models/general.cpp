#include "models/general.hpp"

#include "common/rng.hpp"
#include "models/window_dataset.hpp"

namespace pelican::models {

GeneralModel train_general_model(const models::WindowDataset& train,
                                 const GeneralModelConfig& config,
                                 const nn::BatchSource* validation) {
  Rng rng(config.seed);
  GeneralModel result{
      nn::make_two_layer_lstm(train.input_dim(), config.hidden_dim,
                              train.num_classes(), config.dropout, rng),
      {}};
  result.report = nn::train(result.model, train, config.train, validation);
  return result;
}

}  // namespace pelican::models
