// One-hot materialization of mobility windows for the nn stack.
//
// The mobility layer stays in a compact discrete form (StepFeatures /
// Window, see mobility/dataset.hpp); this file owns the bridge into the
// nn layer: scattering windows into one-hot minibatches and exposing a
// window set as an nn::BatchSource. Keeping the bridge here preserves the
// layer lattice — mobility depends only on common, and models sits above
// both mobility and nn.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mobility/dataset.hpp"
#include "nn/data.hpp"

namespace pelican::models {

/// Scatters one window into row `row` of a (batch x input_dim) sequence.
void encode_window(const mobility::Window& window,
                   const mobility::EncodingSpec& spec, nn::Sequence& x,
                   std::size_t row);

/// Encodes explicit step features (used by attacks to build candidate
/// inputs without fabricating Session objects).
void encode_steps(std::span<const mobility::StepFeatures> steps,
                  const mobility::EncodingSpec& spec, nn::Sequence& x,
                  std::size_t row);

// Sparse variants: each window row is four (column, 1.0) entries instead of
// an input_dim-wide one-hot vector, feeding the nn layer's gather kernels
// (nn/sparse.hpp; bit-identical to the dense encoding by construction).
// Rows must be filled in ascending order, exactly like the dense overloads
// are used today.
void encode_window(const mobility::Window& window,
                   const mobility::EncodingSpec& spec, nn::SparseSequence& x,
                   std::size_t row);
void encode_steps(std::span<const mobility::StepFeatures> steps,
                  const mobility::EncodingSpec& spec, nn::SparseSequence& x,
                  std::size_t row);

/// Builds the sparse one-hot sequence for a batch of windows — the fast
/// path under DeployedModel::predict_top_k_batch and the attack scorer.
[[nodiscard]] nn::SparseSequence encode_windows_sparse(
    std::span<const mobility::Window> windows,
    const mobility::EncodingSpec& spec);

/// BatchSource over a window set; materializes one-hot batches on demand.
class WindowDataset final : public nn::BatchSource {
 public:
  WindowDataset(std::vector<mobility::Window> windows,
                mobility::EncodingSpec spec);

  [[nodiscard]] std::size_t size() const override { return windows_.size(); }
  [[nodiscard]] std::size_t seq_len() const override {
    return mobility::kWindowSteps;
  }
  [[nodiscard]] std::size_t input_dim() const override {
    return spec_.input_dim();
  }
  [[nodiscard]] std::size_t num_classes() const override {
    return spec_.num_locations;
  }

  void materialize(std::span<const std::uint32_t> indices, nn::Sequence& x,
                   std::vector<std::int32_t>& y) const override;

  /// Windows are one-hot by construction (four entries per row), so the
  /// training/eval loops take the sparse path through this source.
  [[nodiscard]] bool sparse() const override { return true; }
  void materialize_sparse(std::span<const std::uint32_t> indices,
                          nn::SparseSequence& x,
                          std::vector<std::int32_t>& y) const override;

  [[nodiscard]] std::span<const mobility::Window> windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] const mobility::EncodingSpec& spec() const noexcept {
    return spec_;
  }

 private:
  std::vector<mobility::Window> windows_;
  mobility::EncodingSpec spec_;
};

}  // namespace pelican::models
