// Personalized mobility Markov chains — the classic pre-deep-learning
// approach to next-location prediction the paper positions against
// (Section II: "Personalized modeling in mobility has been generally
// conducted via Markov models", citing Gambs et al., 2012).
//
// Provided as an additional baseline for the personalization comparison:
// a first- or second-order chain over location ids with additive smoothing
// and graceful back-off (order-2 context unseen -> order-1 -> visit
// marginals). Markov baselines ignore the temporal features (entry bin,
// duration, day) that the LSTM models consume, which is exactly the gap the
// paper's deep models close.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mobility/dataset.hpp"

namespace pelican::models {

class MarkovChain {
 public:
  /// `order` is 1 (condition on l_{t-1}) or 2 (condition on l_{t-2}, l_{t-1}).
  /// `smoothing` is the additive (Laplace) count given to every transition.
  MarkovChain(std::size_t num_locations, int order, double smoothing = 0.05);

  /// Accumulates transition counts from windows (may be called repeatedly;
  /// counts are cumulative, mirroring Pelican's model-update flow).
  void fit(std::span<const mobility::Window> windows);

  /// Predicted distribution over the next location for a window's context.
  [[nodiscard]] std::vector<double> predict(
      const mobility::Window& window) const;

  /// Fraction of windows whose true next location is in the top-k.
  [[nodiscard]] double topk_accuracy(std::span<const mobility::Window> windows,
                                     std::size_t k) const;

  [[nodiscard]] int order() const noexcept { return order_; }
  [[nodiscard]] std::size_t num_locations() const noexcept {
    return num_locations_;
  }
  [[nodiscard]] std::size_t observed_transitions() const noexcept {
    return total_transitions_;
  }

 private:
  [[nodiscard]] std::size_t pair_index(std::uint16_t older,
                                       std::uint16_t recent) const noexcept {
    return static_cast<std::size_t>(older) * num_locations_ + recent;
  }

  std::size_t num_locations_;
  int order_;
  double smoothing_;
  // Sparse-ish count tables; first-order is dense (L x L), second-order is
  // keyed by the flattened (l_{t-2}, l_{t-1}) pair.
  std::vector<double> first_order_;   // L x L counts
  std::vector<double> first_totals_;  // row sums
  std::vector<std::vector<double>> second_order_;  // per pair, lazily sized
  std::vector<double> second_totals_;
  std::vector<double> marginals_;  // visit counts of next locations
  double marginal_total_ = 0.0;
  std::size_t total_transitions_ = 0;
};

}  // namespace pelican::models
