#include "models/markov.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.hpp"

namespace pelican::models {

MarkovChain::MarkovChain(std::size_t num_locations, int order,
                         double smoothing)
    : num_locations_(num_locations), order_(order), smoothing_(smoothing) {
  if (num_locations == 0) {
    throw std::invalid_argument("MarkovChain: empty location domain");
  }
  if (order != 1 && order != 2) {
    throw std::invalid_argument("MarkovChain: order must be 1 or 2");
  }
  if (smoothing < 0.0) {
    throw std::invalid_argument("MarkovChain: smoothing must be >= 0");
  }
  first_order_.assign(num_locations_ * num_locations_, 0.0);
  first_totals_.assign(num_locations_, 0.0);
  if (order_ == 2) {
    second_order_.resize(num_locations_ * num_locations_);
    second_totals_.assign(num_locations_ * num_locations_, 0.0);
  }
  marginals_.assign(num_locations_, 0.0);
}

void MarkovChain::fit(std::span<const mobility::Window> windows) {
  for (const mobility::Window& w : windows) {
    const std::uint16_t older = w.steps[0].location;
    const std::uint16_t recent = w.steps[1].location;
    const std::uint16_t next = w.next_location;
    if (older >= num_locations_ || recent >= num_locations_ ||
        next >= num_locations_) {
      throw std::out_of_range("MarkovChain::fit: location outside domain");
    }
    first_order_[pair_index(recent, next)] += 1.0;
    first_totals_[recent] += 1.0;
    if (order_ == 2) {
      const std::size_t pair = pair_index(older, recent);
      if (second_order_[pair].empty()) {
        second_order_[pair].assign(num_locations_, 0.0);
      }
      second_order_[pair][next] += 1.0;
      second_totals_[pair] += 1.0;
    }
    marginals_[next] += 1.0;
    marginal_total_ += 1.0;
    ++total_transitions_;
  }
}

std::vector<double> MarkovChain::predict(
    const mobility::Window& window) const {
  const std::uint16_t older = window.steps[0].location;
  const std::uint16_t recent = window.steps[1].location;
  if (older >= num_locations_ || recent >= num_locations_) {
    throw std::out_of_range("MarkovChain::predict: location outside domain");
  }

  std::vector<double> probs(num_locations_, 0.0);
  const double denom_smoothing =
      smoothing_ * static_cast<double>(num_locations_);

  if (order_ == 2) {
    const std::size_t pair = pair_index(older, recent);
    if (second_totals_[pair] > 0.0) {
      const auto& counts = second_order_[pair];
      const double denom = second_totals_[pair] + denom_smoothing;
      for (std::size_t l = 0; l < num_locations_; ++l) {
        probs[l] = (counts[l] + smoothing_) / denom;
      }
      return probs;
    }
    // Back off to first order below.
  }

  if (first_totals_[recent] > 0.0) {
    const double denom = first_totals_[recent] + denom_smoothing;
    for (std::size_t l = 0; l < num_locations_; ++l) {
      probs[l] = (first_order_[pair_index(recent, l)] + smoothing_) / denom;
    }
    return probs;
  }

  // Unseen context entirely: visit marginals (or uniform if never fitted).
  const double denom = marginal_total_ + denom_smoothing;
  if (denom <= 0.0) {
    std::fill(probs.begin(), probs.end(),
              1.0 / static_cast<double>(num_locations_));
    return probs;
  }
  for (std::size_t l = 0; l < num_locations_; ++l) {
    probs[l] = (marginals_[l] + smoothing_) / denom;
  }
  return probs;
}

double MarkovChain::topk_accuracy(std::span<const mobility::Window> windows,
                                  std::size_t k) const {
  if (windows.empty()) return 0.0;
  std::size_t hits = 0;
  for (const mobility::Window& w : windows) {
    const auto probs = predict(w);
    const auto top = nn::topk_indices(std::span<const double>(probs), k);
    if (std::find(top.begin(), top.end(),
                  static_cast<std::size_t>(w.next_location)) != top.end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(windows.size());
}

}  // namespace pelican::models
