#include "models/window_dataset.hpp"

#include <stdexcept>

namespace pelican::models {

void encode_steps(std::span<const mobility::StepFeatures> steps,
                  const mobility::EncodingSpec& spec, nn::Sequence& x,
                  std::size_t row) {
  if (x.size() != steps.size()) {
    throw std::invalid_argument("encode_steps: sequence length mismatch");
  }
  for (std::size_t t = 0; t < steps.size(); ++t) {
    const mobility::StepFeatures& step = steps[t];
    if (step.location >= spec.num_locations) {
      throw std::out_of_range("encode_steps: location outside domain");
    }
    auto out = x[t].row(row);
    out[spec.entry_offset() + step.entry_bin] = 1.0f;
    out[spec.duration_offset() + step.duration_bin] = 1.0f;
    out[spec.location_offset() + step.location] = 1.0f;
    out[spec.day_offset() + step.day_of_week] = 1.0f;
  }
}

void encode_window(const mobility::Window& window,
                   const mobility::EncodingSpec& spec, nn::Sequence& x,
                   std::size_t row) {
  encode_steps(window.steps, spec, x, row);
}

void encode_steps(std::span<const mobility::StepFeatures> steps,
                  const mobility::EncodingSpec& spec, nn::SparseSequence& x,
                  std::size_t row) {
  if (x.size() != steps.size()) {
    throw std::invalid_argument("encode_steps: sequence length mismatch");
  }
  for (std::size_t t = 0; t < steps.size(); ++t) {
    const mobility::StepFeatures& step = steps[t];
    if (step.location >= spec.num_locations) {
      throw std::out_of_range("encode_steps: location outside domain");
    }
    // Feature blocks are laid out in ascending offsets, so the entries
    // arrive in the strictly-ascending column order SparseRows requires.
    nn::SparseRows& out = x[t];
    out.add(row, spec.entry_offset() + step.entry_bin, 1.0f);
    out.add(row, spec.duration_offset() + step.duration_bin, 1.0f);
    out.add(row, spec.location_offset() + step.location, 1.0f);
    out.add(row, spec.day_offset() + step.day_of_week, 1.0f);
  }
}

void encode_window(const mobility::Window& window,
                   const mobility::EncodingSpec& spec, nn::SparseSequence& x,
                   std::size_t row) {
  encode_steps(window.steps, spec, x, row);
}

nn::SparseSequence encode_windows_sparse(
    std::span<const mobility::Window> windows,
    const mobility::EncodingSpec& spec) {
  nn::SparseSequence x(mobility::kWindowSteps,
                       nn::SparseRows(windows.size(), spec.input_dim()));
  for (nn::SparseRows& step : x) step.reserve(4 * windows.size());
  for (std::size_t r = 0; r < windows.size(); ++r) {
    encode_window(windows[r], spec, x, r);
  }
  return x;
}

WindowDataset::WindowDataset(std::vector<mobility::Window> windows,
                             mobility::EncodingSpec spec)
    : windows_(std::move(windows)), spec_(spec) {
  for (const mobility::Window& w : windows_) {
    if (w.next_location >= spec_.num_locations) {
      throw std::out_of_range("WindowDataset: label outside domain");
    }
  }
}

void WindowDataset::materialize(std::span<const std::uint32_t> indices,
                                nn::Sequence& x,
                                std::vector<std::int32_t>& y) const {
  x.assign(mobility::kWindowSteps,
           nn::Matrix(indices.size(), spec_.input_dim(), 0.0f));
  y.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const mobility::Window& window = windows_.at(indices[i]);
    encode_window(window, spec_, x, i);
    y[i] = static_cast<std::int32_t>(window.next_location);
  }
}

void WindowDataset::materialize_sparse(std::span<const std::uint32_t> indices,
                                       nn::SparseSequence& x,
                                       std::vector<std::int32_t>& y) const {
  x.assign(mobility::kWindowSteps,
           nn::SparseRows(indices.size(), spec_.input_dim()));
  for (nn::SparseRows& step : x) step.reserve(4 * indices.size());
  y.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const mobility::Window& window = windows_.at(indices[i]);
    encode_window(window, spec_, x, i);
    y[i] = static_cast<std::int32_t>(window.next_location);
  }
}

}  // namespace pelican::models
