// General (multi-user) next-location model — Fig. 1a.
//
// Trained in the cloud on pooled contributor trajectories: two LSTM layers
// with dropout between them and a linear head over the final timestep. The
// paper trains with lr 1e-4, weight decay 1e-6, hidden size 128, batch 128,
// dropout 0.1; these are the defaults here (hidden size is configurable
// because the benchmark suite runs at reduced scale).
#pragma once

#include <cstdint>

#include "mobility/dataset.hpp"
#include "models/window_dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace pelican::models {

struct GeneralModelConfig {
  std::size_t hidden_dim = 128;
  double dropout = 0.1;
  nn::TrainConfig train = default_train_config();
  std::uint64_t seed = 1;

  static nn::TrainConfig default_train_config() {
    nn::TrainConfig config;
    config.epochs = 10;
    config.batch_size = 128;
    config.lr = 1e-4;
    config.weight_decay = 1e-6;
    config.grad_clip = 5.0;
    return config;
  }
};

/// Result of general-model training: the model plus the training report.
struct GeneralModel {
  nn::SequenceClassifier model;
  nn::TrainReport report;
};

/// Trains M_G from scratch on pooled multi-user windows.
[[nodiscard]] GeneralModel train_general_model(
    const models::WindowDataset& train, const GeneralModelConfig& config,
    const nn::BatchSource* validation = nullptr);

}  // namespace pelican::models
