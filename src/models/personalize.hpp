// Device-side model personalization — the four methods compared in
// Table III/IV:
//
//   Reuse   — the general model unchanged (baseline).
//   LSTM    — a fresh single-layer LSTM trained only on the user's data.
//   TL FE   — transfer-learning feature extraction (Fig. 1b): freeze the
//             general model's LSTM layers, stack a new LSTM before the
//             head, train the new layer + head on user data.
//   TL FT   — transfer-learning fine tuning (Fig. 1c): freeze the first
//             LSTM, re-train the second LSTM + head on user data.
//
// Frozen layers stay bit-identical (enforced via the optimizer's trainable
// parameter harvest; asserted by tests).
#pragma once

#include <cstdint>
#include <string>

#include "mobility/dataset.hpp"
#include "models/window_dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace pelican::models {

enum class PersonalizationMethod : std::uint8_t {
  kReuse = 0,
  kFreshLstm,
  kFeatureExtraction,
  kFineTuning,
};

[[nodiscard]] const char* to_string(PersonalizationMethod method) noexcept;

struct PersonalizationConfig {
  PersonalizationMethod method = PersonalizationMethod::kFeatureExtraction;
  nn::TrainConfig train = default_train_config();
  /// Hidden size of the fresh single-layer LSTM baseline.
  std::size_t fresh_hidden_dim = 64;
  double fresh_dropout = 0.1;
  std::uint64_t seed = 1;

  static nn::TrainConfig default_train_config() {
    nn::TrainConfig config;
    config.epochs = 20;
    config.batch_size = 32;
    config.lr = 1e-3;
    config.weight_decay = 1e-6;
    config.grad_clip = 5.0;
    return config;
  }
};

/// Result of personalization: the per-user model M_P plus training report.
struct PersonalizedModel {
  nn::SequenceClassifier model;
  nn::TrainReport report;
};

/// Builds and trains a personalized model for one user from the general
/// model and the user's private training windows. `general` is not modified.
[[nodiscard]] PersonalizedModel personalize(
    const nn::SequenceClassifier& general,
    const models::WindowDataset& user_train,
    const PersonalizationConfig& config);

/// Re-invokes transfer learning on an existing personalized model with
/// (typically more) data — Pelican's model-update step (Section V-A4).
/// Parameters are initialized from `current`; freeze flags are preserved.
[[nodiscard]] PersonalizedModel update_personalized(
    const nn::SequenceClassifier& current,
    const models::WindowDataset& user_train,
    const PersonalizationConfig& config);

}  // namespace pelican::models
