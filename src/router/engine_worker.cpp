#include "router/engine_worker.hpp"

#include <exception>
#include <span>
#include <utility>

#include "common/fault.hpp"
#include "core/privacy_layer.hpp"
#include "core/service.hpp"
#include "router/wire.hpp"

namespace pelican::router {

EngineWorker::EngineWorker(EngineConfig config)
    : config_(std::move(config)),
      store_(std::make_shared<store::ModelStore>(
          std::make_unique<store::FilesystemBackend>(config_.store_root))),
      registry_(config_.registry_shards),
      scheduler_(std::make_unique<serve::BatchScheduler>(registry_,
                                                         config_.scheduler)),
      listener_(ListenSocket::bind_to(parse_address(config_.listen))) {
  registry_.attach_store(store_, config_.scope);
}

EngineWorker::~EngineWorker() { stop(); }

void EngineWorker::start() {
  if (started_.exchange(true)) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void EngineWorker::wait() {
  {
    MutexLock lock(wait_mutex_);
    while (!draining_.load(std::memory_order_relaxed) &&
           !stopping_.load(std::memory_order_relaxed)) {
      lock.wait(wait_cv_);
    }
  }
  stop();
}

void EngineWorker::stop() {
  const bool already_stopping = stopping_.exchange(true);
  {
    // Close the lost-wakeup window: a wait()er between its predicate check
    // and blocking still holds wait_mutex_, so acquiring it here delays
    // the notify until that waiter is actually parked.
    const MutexLock lock(wait_mutex_);
  }
  wait_cv_.notify_all();
  if (already_stopping) {
    return;  // concurrent/repeated stop: the first caller owns the joins
  }
  // The accept loop polls with a 50 ms timeout, so it observes stopping_
  // on its own; join it BEFORE closing the listener. Closing first would
  // write fd_ while the acceptor reads it in poll()/accept() — a data race,
  // and worse, the kernel may recycle the fd number into an unrelated file
  // mid-poll.
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  // Wake handler threads blocked in recv_frame, then join them.
  {
    const MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      connection->socket.shutdown_both();
    }
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const MutexLock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void EngineWorker::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Poll with a timeout so a stop() without inbound traffic is observed.
    if (!listener_.wait_readable(/*timeout_ms=*/50)) continue;
    Socket socket;
    try {
      socket = listener_.accept();
    } catch (const WireError&) {
      continue;  // raced with stop(); the loop condition decides
    }
    const MutexLock lock(connections_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) break;
    reap_finished_connections();
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection* handle = connection.get();  // stable behind the unique_ptr
    connections_.push_back(std::move(connection));
    handle->thread = std::thread([this, handle] { serve_connection(handle); });
  }
}

void EngineWorker::reap_finished_connections() {
  // Caller holds connections_mutex_. A connection marks itself done as its
  // final locked action, so joining here never blocks on live work — this
  // is what keeps a long-lived daemon from accumulating dead threads.
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done) return false;
    if (conn->thread.joinable()) conn->thread.join();
    return true;
  });
}

void EngineWorker::serve_connection(Connection* connection) {
  for (;;) {
    std::vector<std::uint8_t> frame;
    try {
      frame = connection->socket.recv_frame();
    } catch (const WireError&) {
      break;  // peer closed (the Router recycled the connection) or stop()
    }
    std::vector<std::uint8_t> reply = handle_frame(frame);
    if (reply.empty()) {
      break;  // fault injection dropped the request: sever, never answer
    }
    try {
      connection->socket.send_frame(reply);
    } catch (const WireError&) {
      break;
    }
    if (draining_.load(std::memory_order_relaxed)) {
      {
        // Pair with wait()'s predicate check (see stop() on lost wakeups).
        const MutexLock lock(wait_mutex_);
      }
      wait_cv_.notify_all();
      break;  // drain acknowledged; let wait() tear the worker down
    }
  }
  // Close under the mutex: stop() walks connections_ calling
  // shutdown_both() under this lock, and close() must not race it (the fd
  // could be recycled between its validity check and the shutdown).
  const MutexLock lock(connections_mutex_);
  connection->socket.close();
  connection->done = true;
}

std::vector<std::uint8_t> EngineWorker::handle_frame(
    std::span<const std::uint8_t> frame) {
  try {
    // Fault-injection hook: lets chaos tests stall or drop THIS engine's
    // handling of a specific verb ("engine.handle.predict_batch", peer
    // matched against our own listen address) while the process — and its
    // accept loop — stays alive. Distinct from killing the process: the
    // router must detect this engine as hung, not dead.
    {
      auto& injector = fault::Injector::global();
      if (injector.active()) {
        const std::string site =
            std::string("engine.handle.") + to_string(frame_verb(frame));
        const fault::Decision decision =
            injector.decide(site, config_.listen);
        if (decision.action == fault::Action::kDrop) {
          return {};  // serve_connection severs the connection on empty
        }
        injector.sleep_for(decision);
      }
    }
    switch (frame_verb(frame)) {
      case Verb::kPredictBatch: {
        const auto requests = decode_predict_batch(frame);
        const auto responses = scheduler_->serve(requests);
        return encode_predict_replies(responses);
      }
      case Verb::kDeploy: {
        const DeployCommand command = decode_deploy(frame);
        // Pull the artifact from the fleet-shared store; the wire carries
        // only the key. get() verifies the checkpoint checksum, so a torn
        // or corrupt artifact is an Ack failure, never a bad deployment.
        auto model = store_->get(
            {config_.scope, command.user_id, command.version});
        (void)registry_.deploy(
            command.user_id,
            core::DeployedModel(std::move(model), command.spec,
                                core::PrivacyLayer(command.temperature),
                                core::DeploymentSite::kInCloud,
                                command.version));
        return encode_ack({true, ""});
      }
      case Verb::kPublish: {
        const PublishCommand command = decode_publish(frame);
        registry_.publish(command.user_id, command.version);
        scheduler_->events().emit(
            obs::EventType::kPublish,
            "user " + std::to_string(command.user_id),
            "v" + std::to_string(command.version) + " installed");
        return encode_ack({true, ""});
      }
      case Verb::kHealth: {
        return encode_health_reply({registry_.size(), draining()});
      }
      case Verb::kStats: {
        return encode_stats_reply(scheduler_->stats().state());
      }
      case Verb::kMetrics: {
        EngineMetricsReport report;
        report.stats = scheduler_->stats().state();
        report.registry = scheduler_->metrics().state();
        report.traces = scheduler_->traces().journal();
        report.events = scheduler_->events().snapshot();
        return encode_metrics_reply(report);
      }
      case Verb::kDrain: {
        draining_.store(true, std::memory_order_relaxed);
        return encode_ack({true, ""});
      }
      default:
        return encode_ack({false, "engine received a reply verb"});
    }
  } catch (const std::exception& error) {
    // Engine-level failure (unknown store key, corrupt checkpoint, bad
    // frame): answer it rather than tearing down the connection — the
    // router must be able to distinguish "that deploy failed" from "that
    // engine died".
    return encode_ack({false, error.what()});
  }
}

}  // namespace pelican::router
