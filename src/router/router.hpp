// Router: the front door of a multi-process serving fleet.
//
// Owns the user→process map (Partitioner over explicit ownership tables)
// and a pool of wire-protocol connections per engine backend. Callers see
// the single-process engine's API shape — deploy / publish / serve /
// stats — and the router turns each call into frames for the owning
// process:
//
//   serve(requests)    groups requests by owning backend, forwards one
//                      kPredictBatch per backend IN PARALLEL, and returns
//                      responses in request order. Responses are
//                      bit-identical to direct ServingEngine calls: the
//                      wire carries discretized features and location ids
//                      only, and the engine runs the same
//                      predict_top_k_batch.
//   deploy/publish     routed to the owning process only (never broadcast);
//                      models flow through the fleet-shared
//                      store::FilesystemBackend, so the wire carries keys,
//                      and PR 3's stall-free publish contract holds
//                      end-to-end.
//   fleet_stats()      pulls every engine's raw ServerStats::State and
//                      merges them (exact bucket-wise histogram sums).
//   fleet_metrics()    the full observability pull: per-engine stats +
//                      stage-latency registries + slow-trace journals,
//                      exactly merged, with every trace record tagged by
//                      the process it came from.
//
// TRACING. serve() runs under one obs trace per call: requests that arrive
// untraced are stamped with a fresh 64-bit id (requests already carrying an
// id — e.g. from an upstream tier — keep it), and the id rides the predict
// frame to the engines, whose schedulers record their stage spans under the
// SAME id. The router records its own spans (wire serialize, per-backend
// fan-out, failover retry rounds), so a slow routed request decomposes
// end-to-end across both processes when pelican_statsz groups journal
// records by trace id.
//
// FAILOVER. Any transport error on a backend marks it dead and triggers
// failover-repartition: the Partitioner drops the backend (moving only its
// partitions), the router re-issues kDeploy for the dead process's users
// to their new owners (from its deployment ledger — the store still holds
// every model), and the failed predict batch is retried against the new
// owners. Predictions are idempotent reads, so the retry is safe;
// publishes are also retried once (installing the same version twice is a
// no-op by construction). In-flight state lost with the dead process is
// its ServerStats and queue — never a model, never the ownership map.
//
// Thread-safe: any number of threads may call serve/publish/deploy
// concurrently; membership changes serialize on an internal lock, and the
// connection pools bound per-backend concurrency.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "mobility/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "router/partitioner.hpp"
#include "router/socket.hpp"
#include "router/wire.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace pelican::router {

struct RouterConfig {
  /// Partition count of the user space (ownership-table granularity).
  std::size_t partitions = 64;
  /// Ring points per backend (evenness of the partition spread).
  std::size_t virtual_nodes = 16;
  /// Connection-pool bound per backend: at most this many in-flight
  /// request/reply exchanges per engine process.
  std::size_t pool_connections = 4;
};

class Router {
 public:
  explicit Router(RouterConfig config = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Registers an engine backend by wire address and health-checks it
  /// (throws WireError when unreachable). Returns the number of partitions
  /// that moved to it.
  std::size_t add_backend(const std::string& address);

  /// Deploys `user` on its owning process: the engine reads (scope, user,
  /// version) from the fleet-shared store. The router remembers the
  /// deployment in its ledger so failover can re-deploy the user on a
  /// surviving process. Throws std::runtime_error when the engine refuses
  /// (e.g. no such store version), WireError when no backend is live.
  void deploy(std::uint32_t user, std::uint32_t version,
              const mobility::EncodingSpec& spec, double temperature = 1.0);

  /// Stall-free model update, routed to the owning process only.
  void publish(std::uint32_t user, std::uint32_t version);

  /// Forwards `requests` to their owning processes (one batch per backend,
  /// in parallel) and returns responses in request order. Requests whose
  /// owner died mid-call are retried on the failover owner; requests that
  /// exhaust every backend come back ok = false / rejected = true.
  [[nodiscard]] std::vector<serve::PredictResponse> serve(
      std::span<const serve::PredictRequest> requests);

  /// Merged raw state of every live engine (exact fleet-wide percentiles),
  /// as a snapshot. Engines that die during collection are skipped (and
  /// failed over).
  [[nodiscard]] serve::ServerStats::Snapshot fleet_stats();

  /// The full fleet observability pull (kMetrics verb).
  struct FleetMetrics {
    /// Merged engine ServerStats (same engines-only semantics as
    /// fleet_stats(); the router's own request view stays in stats()).
    serve::ServerStats::Snapshot stats;
    /// Exact bucket-wise merge of every engine's registry PLUS the
    /// router's own (stage histograms share fixed boundaries, so this is
    /// identical to one process having recorded everything).
    obs::RegistryState registry;
    /// Raw per-engine reports, sorted by address — the inputs of the merge,
    /// kept so callers (statsz, tests) can audit the aggregation.
    std::vector<std::pair<std::string, EngineMetricsReport>> engines;
    /// Every journal record fleet-wide, `source` tagged with the engine
    /// address (or "router"). Records sharing a trace_id are one logical
    /// request observed from both sides of the wire.
    std::vector<obs::TraceRecord> traces;
  };
  [[nodiscard]] FleetMetrics fleet_metrics();

  /// Per-backend health of the live fleet, sorted by address.
  [[nodiscard]] std::vector<std::pair<std::string, HealthReply>>
  fleet_health();

  /// Gracefully drains every live backend (each acks, then exits its run
  /// loop). The router is unusable for serving afterwards.
  void drain_fleet();

  /// Router-side request accounting (end-to-end latency from serve() entry,
  /// including wire and failover time). Disjoint from fleet_stats(), which
  /// is the engines' in-process view of the same traffic.
  [[nodiscard]] serve::ServerStats& stats() noexcept { return stats_; }

  /// Router-side stage histograms (wire serialize / fan-out / failover).
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  /// Router-side span sink + slow-request journal.
  [[nodiscard]] obs::TraceCollector& traces() noexcept { return traces_; }
  /// Gates trace stamping and router-side span/histogram recording.
  void set_instrumentation(bool on) noexcept {
    instrument_.store(on, std::memory_order_relaxed);
    traces_.set_enabled(on);
  }
  [[nodiscard]] bool instrumentation_enabled() const noexcept {
    return instrument_.load(std::memory_order_relaxed);
  }

  /// Live backend addresses, sorted.
  [[nodiscard]] std::vector<std::string> live_backends() const;

  /// Owning backend address of a user (for tests and placement debugging).
  [[nodiscard]] std::string owner_of(std::uint32_t user) const;

  [[nodiscard]] std::size_t deployed_users() const;

 private:
  struct Backend {
    explicit Backend(std::string addr)
        : address(std::move(addr)), parsed(parse_address(address)) {}
    std::string address;
    Address parsed;
    /// Written under Router::mutex_, read under pool_mutex too (pool
    /// waiters bail out when their backend dies) — hence atomic.
    std::atomic<bool> alive{true};

    Mutex pool_mutex;
    std::condition_variable pool_cv;
    std::vector<Socket> idle PELICAN_GUARDED_BY(pool_mutex);
    std::size_t open_connections PELICAN_GUARDED_BY(pool_mutex) =
        0;  ///< idle + leased
  };

  struct Deployment {
    std::uint32_t version = 0;
    double temperature = 1.0;
    mobility::EncodingSpec spec;
  };

  /// Looks up a live backend; null when unknown or dead.
  [[nodiscard]] std::shared_ptr<Backend> find_backend(
      const std::string& address) const;

  /// One request/reply exchange over a pooled connection. Throws WireError
  /// on transport failure (connection discarded, backend presumed dead).
  [[nodiscard]] std::vector<std::uint8_t> exchange(
      Backend& backend, std::span<const std::uint8_t> frame);

  /// Sends an admin frame to `user`'s owner, failing over (and retrying
  /// once) when the owner is dead. Returns the decoded ack; throws
  /// std::runtime_error when the engine answers ok = false.
  Ack admin_to_owner(std::uint32_t user,
                     const std::vector<std::uint8_t>& frame);

  /// Marks a backend dead, repartitions, and re-deploys its users on their
  /// failover owners. Idempotent per backend; safe to call concurrently.
  void handle_backend_failure(const std::string& address);

  RouterConfig config_;

  mutable Mutex mutex_;
  Partitioner partitioner_ PELICAN_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::shared_ptr<Backend>> backends_
      PELICAN_GUARDED_BY(mutex_);
  std::unordered_map<std::uint32_t, Deployment> ledger_
      PELICAN_GUARDED_BY(mutex_);

  serve::ServerStats stats_;

  obs::Registry metrics_;
  obs::TraceCollector traces_;
  std::atomic<bool> instrument_{true};
  /// Router-side stage histograms resolved once (reference stability) so
  /// serve() never touches the registry lock.
  obs::Histogram* wire_serialize_hist_ = nullptr;
  obs::Histogram* fanout_hist_ = nullptr;
  obs::Histogram* failover_hist_ = nullptr;
};

}  // namespace pelican::router
