// Router: the front door of a multi-process serving fleet.
//
// Owns the user→process map (Partitioner over explicit ownership tables)
// and a pool of wire-protocol connections per engine backend. Callers see
// the single-process engine's API shape — deploy / publish / serve /
// stats — and the router turns each call into frames for the owning
// process:
//
//   serve(requests)    groups requests by owning backend, forwards one
//                      kPredictBatch per backend IN PARALLEL, and returns
//                      responses in request order. Responses are
//                      bit-identical to direct ServingEngine calls: the
//                      wire carries discretized features and location ids
//                      only, and the engine runs the same
//                      predict_top_k_batch.
//   deploy/publish     routed to the owning process only (never broadcast);
//                      models flow through the fleet-shared
//                      store::FilesystemBackend, so the wire carries keys,
//                      and PR 3's stall-free publish contract holds
//                      end-to-end.
//   fleet_stats()      pulls every engine's raw ServerStats::State and
//                      merges them (exact bucket-wise histogram sums).
//   fleet_metrics()    the full observability pull: per-engine stats +
//                      stage-latency registries + slow-trace journals,
//                      exactly merged, with every trace record tagged by
//                      the process it came from.
//
// TRACING. serve() runs under one obs trace per call: requests that arrive
// untraced are stamped with a fresh 64-bit id (requests already carrying an
// id — e.g. from an upstream tier — keep it), and the id rides the predict
// frame to the engines, whose schedulers record their stage spans under the
// SAME id. The router records its own spans (wire serialize, per-backend
// fan-out, failover retry rounds), so a slow routed request decomposes
// end-to-end across both processes when pelican_statsz groups journal
// records by trace id.
//
// FAILOVER. Any transport error on a backend marks it dead and triggers
// failover-repartition: the Partitioner drops the backend (moving only its
// partitions), the router re-issues kDeploy for the dead process's users
// to their new owners (from its deployment ledger — the store still holds
// every model), and the failed predict batch is retried against the new
// owners. Predictions are idempotent reads, so the retry is safe;
// publishes are also retried once (installing the same version twice is a
// no-op by construction). In-flight state lost with the dead process is
// its ServerStats and queue — never a model, never the ownership map.
// Retry rounds back off exponentially (retry_backoff_*) so a flapping
// fleet is not hammered.
//
// TAIL TOLERANCE. Beyond dead backends, the router handles SLOW ones:
//
//   deadlines    serve() honors PredictRequest::deadline_ms — expired
//                requests are shed without a forward, and the remaining
//                budget (minus router time already spent) rides the wire so
//                engines shed at their admission too. Every exchange is
//                bounded by request_timeout_ms (clamped to the batch's
//                remaining budget).
//   hedging      when a backend's reply has not arrived within the hedge
//                delay (auto-derived from the observed p99 of the
//                router_fanout stage histogram, or pinned via
//                hedge_delay_ms), the SAME predict batch is fired at a
//                second live backend (after re-deploying the users there
//                from the ledger — deploys are idempotent), and the first
//                answer wins. Answers are bit-identical by construction
//                (same store artifact, same kernels), so which copy wins is
//                unobservable in the response. A hedge budget
//                (hedge_budget_fraction) caps hedges to a fraction of
//                forwards so hedging cannot double fleet load.
//   quarantine   a backend that times out (WireTimeout) or loses a hedge
//                race is health-probed with probe_timeout_ms; probe failure
//                (or quarantine_after_timeouts strikes) QUARANTINES it:
//                partitions move and users re-deploy exactly like death,
//                but the Backend is remembered. A recovery thread re-probes
//                quarantined backends every probe_interval_ms and folds a
//                recovered engine back in (repartition + re-deploy of the
//                users it regains). Distinct from the SIGKILL path: the
//                process stays up throughout.
//
// Thread-safe: any number of threads may call serve/publish/deploy
// concurrently; membership changes serialize on an internal lock, and the
// connection pools bound per-backend concurrency. Pooled connections that
// broke while parked (engine restart: EPIPE/ECONNRESET on first use) are
// transparently replaced with one fresh connect + retry per exchange.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "mobility/dataset.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "router/partitioner.hpp"
#include "router/socket.hpp"
#include "router/wire.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace pelican::router {

struct RouterConfig {
  /// Partition count of the user space (ownership-table granularity).
  std::size_t partitions = 64;
  /// Ring points per backend (evenness of the partition spread).
  std::size_t virtual_nodes = 16;
  /// Connection-pool bound per backend: at most this many in-flight
  /// request/reply exchanges per engine process.
  std::size_t pool_connections = 4;

  /// I/O deadline per request/reply exchange (predict, admin, health pulls).
  /// Expiry throws WireTimeout → the hung-engine path (probe, quarantine),
  /// not the dead-engine path. <= 0 disables (fully blocking, pre-PR 9).
  double request_timeout_ms = 2000.0;
  /// Deadline of a kDrain exchange: a wedged engine cannot hang teardown.
  double drain_timeout_ms = 2000.0;
  /// Deadline of one health probe (hung detection + recovery probing).
  double probe_timeout_ms = 250.0;
  /// Backoff between serve() retry rounds: base * 2^(round-1), capped.
  double retry_backoff_base_ms = 5.0;
  double retry_backoff_max_ms = 200.0;
  /// Hedge delay: how long a predict exchange may run before the same
  /// batch is fired at a second backend. 0 = auto: the observed p99 of the
  /// router_fanout stage histogram (floored at hedge_min_delay_ms), falling
  /// back to request_timeout_ms / 4 until enough samples exist. < 0
  /// disables hedging.
  double hedge_delay_ms = 0.0;
  double hedge_min_delay_ms = 10.0;
  /// Hedges may never exceed this fraction of predict forwards (0 also
  /// disables hedging; 1.0 = every forward may hedge).
  double hedge_budget_fraction = 0.1;
  /// Quarantine a backend after this many timeout strikes even when its
  /// health probe still answers (persistently slow ≈ hung).
  std::uint64_t quarantine_after_timeouts = 3;
  /// Recovery cadence: quarantined backends are re-probed this often, and
  /// per-backend suspicion probes are rate-limited to the same interval.
  double probe_interval_ms = 100.0;
  /// Minimum time a backend stays quarantined before the recovery prober
  /// may fold it back in, doubling per repeated quarantine (capped at
  /// 64x). A strike-quarantined backend's health verb may have answered
  /// all along — its predict path is what stalled — so a bare probe
  /// success right after quarantine proves nothing; without this
  /// hold-down a hung-but-healthy engine flaps in and out of the fleet.
  /// <= 0 disables the hold-down (probe-driven recovery only).
  double quarantine_holddown_ms = 1000.0;
};

class Router {
 public:
  explicit Router(RouterConfig config = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Registers an engine backend by wire address and health-checks it
  /// (throws WireError when unreachable). Returns the number of partitions
  /// that moved to it.
  std::size_t add_backend(const std::string& address);

  /// Deploys `user` on its owning process: the engine reads (scope, user,
  /// version) from the fleet-shared store. The router remembers the
  /// deployment in its ledger so failover can re-deploy the user on a
  /// surviving process. Throws std::runtime_error when the engine refuses
  /// (e.g. no such store version), WireError when no backend is live.
  void deploy(std::uint32_t user, std::uint32_t version,
              const mobility::EncodingSpec& spec, double temperature = 1.0);

  /// Stall-free model update, routed to the owning process only.
  void publish(std::uint32_t user, std::uint32_t version);

  /// Forwards `requests` to their owning processes (one batch per backend,
  /// in parallel) and returns responses in request order. Requests whose
  /// owner died mid-call are retried on the failover owner; requests that
  /// exhaust every backend come back ok = false / rejected = true.
  [[nodiscard]] std::vector<serve::PredictResponse> serve(
      std::span<const serve::PredictRequest> requests);

  /// Merged raw state of every live engine (exact fleet-wide percentiles),
  /// as a snapshot. Engines that die during collection are skipped (and
  /// failed over).
  [[nodiscard]] serve::ServerStats::Snapshot fleet_stats();

  /// The full fleet observability pull (kMetrics verb).
  struct FleetMetrics {
    /// Merged engine ServerStats (same engines-only semantics as
    /// fleet_stats(); the router's own request view stays in stats()).
    serve::ServerStats::Snapshot stats;
    /// Exact bucket-wise merge of every engine's registry PLUS the
    /// router's own (stage histograms share fixed boundaries, so this is
    /// identical to one process having recorded everything).
    obs::RegistryState registry;
    /// Raw per-engine reports, sorted by address — the inputs of the merge,
    /// kept so callers (statsz, tests) can audit the aggregation.
    std::vector<std::pair<std::string, EngineMetricsReport>> engines;
    /// Every journal record fleet-wide, `source` tagged with the engine
    /// address (or "router"). Records sharing a trace_id are one logical
    /// request observed from both sides of the wire.
    std::vector<obs::TraceRecord> traces;
    /// Fleet-wide structured event journal (router + engines), `source`
    /// tagged like traces and ordered by (unix_ms, seq). Events carrying a
    /// trace_id correlate with `traces` records of the same id.
    std::vector<obs::Event> events;
  };
  [[nodiscard]] FleetMetrics fleet_metrics();

  /// Per-backend health of the live fleet, sorted by address.
  [[nodiscard]] std::vector<std::pair<std::string, HealthReply>>
  fleet_health();

  /// Gracefully drains every live backend (each acks, then exits its run
  /// loop). The router is unusable for serving afterwards.
  void drain_fleet();

  /// Router-side request accounting (end-to-end latency from serve() entry,
  /// including wire and failover time). Disjoint from fleet_stats(), which
  /// is the engines' in-process view of the same traffic.
  [[nodiscard]] serve::ServerStats& stats() noexcept { return stats_; }

  /// Router-side stage histograms (wire serialize / fan-out / failover).
  [[nodiscard]] obs::Registry& metrics() noexcept { return metrics_; }
  /// Router-side span sink + slow-request journal.
  [[nodiscard]] obs::TraceCollector& traces() noexcept { return traces_; }
  /// Router-side structured event journal: quarantine/unquarantine,
  /// failover, hedge wins, publishes, deadline-shed bursts. Control-plane
  /// events (membership, publish) always record; per-request events (hedge
  /// win, shed burst) are gated by set_instrumentation like spans.
  [[nodiscard]] obs::EventJournal& events() noexcept { return events_; }
  /// Gates trace stamping and router-side span/histogram recording.
  void set_instrumentation(bool on) noexcept {
    instrument_.store(on, std::memory_order_relaxed);
    traces_.set_enabled(on);
  }
  [[nodiscard]] bool instrumentation_enabled() const noexcept {
    return instrument_.load(std::memory_order_relaxed);
  }

  /// Live backend addresses, sorted.
  [[nodiscard]] std::vector<std::string> live_backends() const;

  /// Quarantined backend addresses, sorted — suspected hung, partitions
  /// moved away, watched by the recovery prober. Disjoint from
  /// live_backends().
  [[nodiscard]] std::vector<std::string> quarantined_backends() const;

  /// The router's own observability surface in the same shape engines ship
  /// over kMetrics: request stats, counters + stage histograms, trace
  /// journal. What pelican_statsz merges as the pseudo-engine "router".
  [[nodiscard]] EngineMetricsReport self_report();

  /// Owning backend address of a user (for tests and placement debugging).
  [[nodiscard]] std::string owner_of(std::uint32_t user) const;

  [[nodiscard]] std::size_t deployed_users() const;

 private:
  struct Backend {
    explicit Backend(std::string addr)
        : address(std::move(addr)), parsed(parse_address(address)) {}
    std::string address;
    Address parsed;
    /// Written under Router::mutex_, read under pool_mutex too (pool
    /// waiters bail out when their backend dies) — hence atomic.
    std::atomic<bool> alive{true};
    /// Consecutive timeout strikes (reset only by a successful DATA-PLANE
    /// exchange — a predict answering; control-plane verbs succeeding is
    /// exactly what a predict-livelocked engine does, and the flight
    /// recorder's metrics polls must not launder the strikes they observe);
    /// quarantine_after_timeouts strikes quarantine the backend even when
    /// its health probe still answers.
    std::atomic<std::uint64_t> timeout_strikes{0};
    /// obs::now_ns of the last suspicion probe — rate-limits probing so a
    /// timeout storm across serve threads probes once, not per thread.
    std::atomic<std::uint64_t> last_probe_ns{0};
    /// obs::now_ns when the backend last entered quarantine, plus how many
    /// times it has been quarantined — together they gate the recovery
    /// prober's hold-down (quarantine_holddown_ms doubling per offense).
    std::atomic<std::uint64_t> quarantined_at_ns{0};
    std::atomic<std::uint64_t> quarantine_count{0};

    Mutex pool_mutex;
    std::condition_variable pool_cv;
    std::vector<Socket> idle PELICAN_GUARDED_BY(pool_mutex);
    std::size_t open_connections PELICAN_GUARDED_BY(pool_mutex) =
        0;  ///< idle + leased
  };

  struct Deployment {
    std::uint32_t version = 0;
    double temperature = 1.0;
    mobility::EncodingSpec spec;
  };

  /// Lets a hedging coordinator sever a colleague's in-flight exchange:
  /// the losing side's socket is shut down, its pending I/O fails fast, and
  /// `cancelled` tells the error handler NOT to treat that failure as a
  /// backend problem.
  struct ExchangeCancel {
    Mutex mutex;
    Socket* active PELICAN_GUARDED_BY(mutex) = nullptr;
    bool cancelled PELICAN_GUARDED_BY(mutex) = false;

    void cancel() {
      const MutexLock lock(mutex);
      cancelled = true;
      if (active != nullptr) active->shutdown_both();
    }
    [[nodiscard]] bool was_cancelled() {
      const MutexLock lock(mutex);
      return cancelled;
    }
  };

  /// Looks up a live backend; null when unknown or dead.
  [[nodiscard]] std::shared_ptr<Backend> find_backend(
      const std::string& address) const;

  /// One request/reply exchange over a pooled connection, bounded by
  /// `timeout_ms` (<= 0 = blocking). Throws WireTimeout on deadline expiry
  /// (backend possibly hung) and WireError on transport failure (backend
  /// presumed dead). A connection-level failure on the FIRST attempt —
  /// typically a pooled socket that broke while parked — is retried once on
  /// a fresh connection before the error propagates. `cancel`, when given,
  /// registers the in-flight socket so a hedge winner can sever the loser.
  /// `clears_strikes` marks a DATA-PLANE exchange: only those reset the
  /// backend's timeout_strikes on success — a metrics poll or health probe
  /// completing says nothing about a livelocked predict path.
  [[nodiscard]] std::vector<std::uint8_t> exchange(
      Backend& backend, std::span<const std::uint8_t> frame,
      double timeout_ms, ExchangeCancel* cancel = nullptr,
      bool clears_strikes = false);

  /// Sends an admin frame to `user`'s owner, failing over (and retrying
  /// once) when the owner is dead. Returns the decoded ack; throws
  /// std::runtime_error when the engine answers ok = false.
  Ack admin_to_owner(std::uint32_t user,
                     const std::vector<std::uint8_t>& frame);

  /// Marks a backend dead, repartitions, and re-deploys its users on their
  /// failover owners. Idempotent per backend; safe to call concurrently.
  /// `trace_id`, when non-zero, ties the resulting journal event to the
  /// request that observed the failure.
  void handle_backend_failure(const std::string& address,
                              std::uint64_t trace_id = 0);

  /// The hung-but-alive path: rate-limited health probe of a backend that
  /// timed out (or lost a hedge race). Probe failure — or too many strikes
  /// — quarantines it; probe success only adds a strike.
  void handle_backend_timeout(const std::string& address,
                              std::uint64_t trace_id = 0);

  /// Like handle_backend_failure, but the Backend is stashed in
  /// quarantined_ for the recovery prober instead of forgotten.
  void quarantine_backend(const std::string& address,
                          std::uint64_t trace_id = 0);

  /// Folds a recovered backend back into the fleet: repartition, alive
  /// again, and the ledger users it now owns re-deployed onto it.
  void unquarantine_backend(const std::string& address);

  /// One synchronous health-verb round trip with probe_timeout_ms, on a
  /// fresh connection (never the pool — the pool may be what is hung).
  [[nodiscard]] bool probe_backend(Backend& backend);

  /// True while `backend` is still inside its quarantine hold-down window
  /// (quarantine_holddown_ms doubling per repeated quarantine) — the
  /// recovery prober must not fold it back in yet.
  [[nodiscard]] bool in_quarantine_holddown(const Backend& backend) const;

  /// Recovery thread body: re-probes quarantined backends each interval.
  void probe_loop();

  /// Shared by handle_backend_failure / quarantine_backend: mark dead,
  /// repartition, tear down the pool, re-deploy the orphaned users.
  void remove_backend(const std::string& address, bool stash_quarantined,
                      std::uint64_t trace_id = 0);

  /// Hedge target for a group owned by `owner`: the next live backend
  /// after it in sorted order; empty when the fleet has no second choice.
  [[nodiscard]] std::string hedge_candidate(const std::string& owner) const;

  /// Effective hedge delay for this serve() call (auto mode reads the
  /// fan-out p99); < 0 when hedging is disabled.
  [[nodiscard]] double resolve_hedge_delay() const;

  RouterConfig config_;

  mutable Mutex mutex_;
  Partitioner partitioner_ PELICAN_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::shared_ptr<Backend>> backends_
      PELICAN_GUARDED_BY(mutex_);
  /// Suspected-hung backends: out of the partition map, kept for revival.
  std::unordered_map<std::string, std::shared_ptr<Backend>> quarantined_
      PELICAN_GUARDED_BY(mutex_);
  std::unordered_map<std::uint32_t, Deployment> ledger_
      PELICAN_GUARDED_BY(mutex_);

  serve::ServerStats stats_;

  obs::Registry metrics_;
  obs::TraceCollector traces_;
  obs::EventJournal events_;
  std::atomic<bool> instrument_{true};
  /// Router-side stage histograms resolved once (reference stability) so
  /// serve() never touches the registry lock.
  obs::Histogram* wire_serialize_hist_ = nullptr;
  obs::Histogram* fanout_hist_ = nullptr;
  obs::Histogram* failover_hist_ = nullptr;
  obs::Histogram* hedge_hist_ = nullptr;
  /// Robustness counters, registered eagerly so they export as 0.
  obs::Counter* hedges_counter_ = nullptr;
  obs::Counter* hedge_wins_counter_ = nullptr;
  obs::Counter* retry_rounds_counter_ = nullptr;
  obs::Counter* reconnects_counter_ = nullptr;
  obs::Counter* timeouts_counter_ = nullptr;
  obs::Counter* quarantines_counter_ = nullptr;
  obs::Counter* unquarantines_counter_ = nullptr;
  obs::Counter* deadline_shed_counter_ = nullptr;
  /// Hedge budget bookkeeping: hedges_fired_ / forwards_ <= fraction.
  std::atomic<std::uint64_t> forwards_{0};
  std::atomic<std::uint64_t> hedges_fired_{0};

  /// Recovery prober: wakes every probe_interval_ms, re-probes quarantined
  /// backends, un-quarantines responders. Joined by the destructor.
  Mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool probe_stop_ PELICAN_GUARDED_BY(probe_mutex_) = false;
  std::thread prober_;
};

}  // namespace pelican::router
