#include "router/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <thread>
#include <utility>

#include "common/fault.hpp"

namespace pelican::router {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw WireError(what + ": " + std::strerror(errno));
}

sockaddr_un unix_sockaddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_sockaddr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("tcp address must be a numeric IPv4 host: " +
                                host);
  }
  return addr;
}

}  // namespace

std::string Address::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Address parse_address(const std::string& text) {
  Address address;
  if (text.starts_with("unix:")) {
    address.kind = Address::Kind::kUnix;
    address.path = text.substr(5);
    if (address.path.empty()) {
      throw std::invalid_argument("empty unix socket path: " + text);
    }
    (void)unix_sockaddr(address.path);  // validates the length eagerly
    return address;
  }
  if (text.starts_with("tcp:")) {
    const std::string rest = text.substr(4);
    const auto colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      throw std::invalid_argument("tcp address must be tcp:host:port: " +
                                  text);
    }
    address.kind = Address::Kind::kTcp;
    address.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 65535) {
      throw std::invalid_argument("bad tcp port in: " + text);
    }
    address.port = static_cast<std::uint16_t>(port);
    return address;
  }
  throw std::invalid_argument(
      "address must start with unix: or tcp: (got '" + text + "')");
}

bool wait_connectable(const Address& address,
                      std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      (void)Socket::connect_to(address);
      return true;
    } catch (const WireError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return false;
}

// ------------------------------------------------------------------ Socket --

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    peer_ = std::move(other.peer_);
    other.fd_ = -1;
  }
  return *this;
}

void Socket::set_io_timeout(double timeout_ms) noexcept {
  if (!valid()) return;
  timeval tv{};
  if (timeout_ms > 0) {
    const auto total_us = static_cast<long>(timeout_ms * 1000.0);
    tv.tv_sec = total_us / 1000000;
    tv.tv_usec = total_us % 1000000;
    // A sub-microsecond request must not round to {0, 0} — that means
    // "blocking forever", the opposite of what the caller asked for.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Socket Socket::connect_to(const Address& address) {
  const int domain = address.kind == Address::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket socket(fd);
  int rc = 0;
  if (address.kind == Address::Kind::kUnix) {
    const sockaddr_un addr = unix_sockaddr(address.path);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } else {
    const sockaddr_in addr = tcp_sockaddr(address.host, address.port);
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    if (rc == 0) {
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
  }
  if (rc != 0) throw_errno("connect to " + address.to_string());
  socket.set_peer(address.to_string());
  return socket;
}

void Socket::send_all(const void* data, std::size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const ssize_t sent = ::send(fd_, p, bytes, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw WireTimeout("send timed out to " + peer_);
      }
      throw_errno("send");
    }
    p += sent;
    bytes -= static_cast<std::size_t>(sent);
  }
}

void Socket::recv_all(void* data, std::size_t bytes) {
  char* p = static_cast<char*>(data);
  while (bytes > 0) {
    const ssize_t got = ::recv(fd_, p, bytes, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw WireTimeout("recv timed out from " + peer_);
      }
      throw_errno("recv");
    }
    if (got == 0) throw WireError("peer closed the connection");
    p += got;
    bytes -= static_cast<std::size_t>(got);
  }
}

void Socket::send_bytes(std::string_view data) {
  send_all(data.data(), data.size());
}

std::size_t Socket::recv_some(char* buffer, std::size_t capacity) {
  for (;;) {
    const ssize_t got = ::recv(fd_, buffer, capacity, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw WireTimeout("recv timed out from " + peer_);
      }
      throw_errno("recv");
    }
    return static_cast<std::size_t>(got);  // 0 = orderly EOF
  }
}

void Socket::apply_fault(const char* site,
                         std::span<const std::uint8_t> payload) {
  auto& injector = fault::Injector::global();
  const fault::Decision decision = injector.decide(site, peer_);
  switch (decision.action) {
    case fault::Action::kNone:
      return;
    case fault::Action::kDelay:
    case fault::Action::kStall:
      injector.sleep_for(decision);
      return;
    case fault::Action::kDrop:
      shutdown_both();
      close();
      throw WireError("fault injection: dropped connection (" +
                      std::string(site) + ", peer " + peer_ + ")");
    case fault::Action::kTruncate: {
      // Announce the full frame, deliver half, then sever: the peer sees a
      // mid-frame close, exactly the torn write a crashing process leaves.
      if (!payload.empty()) {
        const std::uint32_t length =
            static_cast<std::uint32_t>(payload.size());
        send_all(&length, sizeof length);
        send_all(payload.data(), payload.size() / 2);
      }
      shutdown_both();
      close();
      throw WireError("fault injection: truncated frame (" +
                      std::string(site) + ", peer " + peer_ + ")");
    }
  }
}

void Socket::send_frame(std::span<const std::uint8_t> payload) {
  if (!valid()) throw WireError("send on closed socket");
  if (payload.size() > kMaxFrameBytes) {
    throw WireError("frame too large: " + std::to_string(payload.size()));
  }
  if (fault::Injector::global().active()) apply_fault("socket.send", payload);
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  send_all(&length, sizeof length);
  send_all(payload.data(), payload.size());
}

std::vector<std::uint8_t> Socket::recv_frame() {
  if (!valid()) throw WireError("recv on closed socket");
  if (fault::Injector::global().active()) apply_fault("socket.recv", {});
  std::uint32_t length = 0;
  recv_all(&length, sizeof length);
  if (length > kMaxFrameBytes) {
    throw WireError("oversized frame announced: " + std::to_string(length));
  }
  std::vector<std::uint8_t> payload(length);
  recv_all(payload.data(), payload.size());
  return payload;
}

void Socket::shutdown_both() noexcept {
  if (valid()) (void)::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (valid()) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// ------------------------------------------------------------ ListenSocket --

ListenSocket::~ListenSocket() { close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_),
      address_(std::move(other.address_)),
      unlink_on_close_(other.unlink_on_close_) {
  other.fd_ = -1;
  other.unlink_on_close_ = false;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    address_ = std::move(other.address_);
    unlink_on_close_ = other.unlink_on_close_;
    other.fd_ = -1;
    other.unlink_on_close_ = false;
  }
  return *this;
}

ListenSocket ListenSocket::bind_to(const Address& address) {
  const int domain = address.kind == Address::Kind::kUnix ? AF_UNIX : AF_INET;
  const int fd = ::socket(domain, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  ListenSocket listener;
  listener.fd_ = fd;
  listener.address_ = address;
  int rc = 0;
  if (address.kind == Address::Kind::kUnix) {
    // A stale socket file from a crashed engine would fail the bind.
    std::error_code ec;
    std::filesystem::remove(address.path, ec);
    const sockaddr_un addr = unix_sockaddr(address.path);
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    listener.unlink_on_close_ = rc == 0;
  } else {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    const sockaddr_in addr = tcp_sockaddr(address.host, address.port);
    rc = ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  }
  if (rc != 0) throw_errno("bind " + address.to_string());
  if (::listen(fd, SOMAXCONN) != 0) throw_errno("listen");
  return listener;
}

Socket ListenSocket::accept() {
  if (!valid()) throw WireError("accept on closed listener");
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      Socket socket(fd);
      // Engine-side sockets are labeled with the engine's OWN address so
      // fault rules can target "every frame engine e1 handles" without
      // knowing its clients' ephemeral endpoints.
      socket.set_peer(address_.to_string());
      return socket;
    }
    if (errno == EINTR) continue;
    throw_errno("accept on " + address_.to_string());
  }
}

bool ListenSocket::wait_readable(int timeout_ms) const {
  if (!valid()) return false;
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    return rc > 0 && (pfd.revents & POLLIN) != 0;
  }
}

void ListenSocket::close() noexcept {
  if (valid()) {
    (void)::close(fd_);
    fd_ = -1;
  }
  if (unlink_on_close_) {
    std::error_code ec;
    std::filesystem::remove(address_.path, ec);
    unlink_on_close_ = false;
  }
}

}  // namespace pelican::router
