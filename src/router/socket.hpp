// Stream-socket transport of the router tier: RAII fds, Unix-domain and
// TCP endpoints, and length-prefixed frame I/O.
//
// Addresses are strings so configs and CLI flags stay trivial:
//   "unix:/tmp/pelican/e0.sock"   Unix-domain stream socket (the default
//                                 for same-host fleets: no ports, no
//                                 loopback stack, filesystem permissions)
//   "tcp:127.0.0.1:7401"          TCP, for engines on other hosts
//
// Framing: a u32 little-endian payload length, then the payload (a
// router/wire frame). recv_frame() rejects frames above kMaxFrameBytes so
// a corrupt or hostile peer cannot drive an unbounded allocation.
//
// Failure model: every transport error — connect refused, peer died
// mid-frame (a SIGKILLed engine), short read at EOF — throws WireError.
// The Router maps any WireError on a backend connection to "backend dead"
// and triggers failover-repartition. Sockets additionally support a
// per-socket I/O deadline (set_io_timeout): when a send or recv exceeds it,
// the more specific WireTimeout is thrown instead, which the Router treats
// as "backend possibly hung" — it probes the engine's health verb and
// quarantines (rather than forgets) a stalling process so it can rejoin on
// recovery.
//
// Fault injection: when common/fault rules are loaded (PELICAN_FAULT or a
// programmatic Injector configuration), send_frame/recv_frame consult the
// sites "socket.send" / "socket.recv" with this socket's peer label and can
// be made to delay, stall, drop the connection, or truncate a frame
// mid-write — deterministically, for the chaos suite.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pelican::router {

/// Transport-level failure (connect/send/recv); the frame or connection is
/// unusable and the backend should be treated as dead.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A send/recv exceeded the socket's I/O deadline (set_io_timeout). The
/// connection is unusable like any WireError, but the PEER may merely be
/// slow, not dead — callers distinguish "probe and maybe quarantine" from
/// "forget this backend".
class WireTimeout : public WireError {
 public:
  using WireError::WireError;
};

/// Largest accepted frame payload. Generous: the biggest real frame is a
/// kStatsReply carrying every latency sample of a long bench run.
inline constexpr std::uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

struct Address {
  enum class Kind : std::uint8_t { kUnix = 0, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;              ///< kUnix: filesystem path
  std::string host;              ///< kTcp
  std::uint16_t port = 0;        ///< kTcp

  [[nodiscard]] std::string to_string() const;
};

/// Parses "unix:<path>" or "tcp:<host>:<port>". Throws std::invalid_argument
/// on anything else (including Unix paths too long for sockaddr_un).
[[nodiscard]] Address parse_address(const std::string& text);

/// Polls `address` until something accepts a connection or `timeout`
/// elapses (false). The readiness probe for freshly spawned engines, used
/// by LocalFleet and the router tests.
[[nodiscard]] bool wait_connectable(
    const Address& address,
    std::chrono::milliseconds timeout = std::chrono::seconds(10));

/// A connected stream socket (move-only RAII). All I/O is blocking;
/// SIGPIPE is suppressed per-send.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_), peer_(std::move(other.peer_)) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to `address`. Throws WireError when nothing is listening.
  /// The socket's peer label is set to the address string.
  [[nodiscard]] static Socket connect_to(const Address& address);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Label used in error messages and fault-injection peer matching. For
  /// connected sockets this is the remote address; engine-side accepted
  /// sockets carry the engine's OWN listen address (faults target engines
  /// by identity, not by their clients' ephemeral endpoints).
  void set_peer(std::string peer) noexcept { peer_ = std::move(peer); }
  [[nodiscard]] const std::string& peer() const noexcept { return peer_; }

  /// Deadline applied to every subsequent send/recv syscall on this socket
  /// (SO_SNDTIMEO / SO_RCVTIMEO). On expiry the I/O call throws
  /// WireTimeout. <= 0 restores fully blocking I/O. Best-effort per
  /// syscall: a peer trickling bytes can extend a frame's total time to
  /// roughly timeout x frame chunks, which is fine for "is it hung".
  void set_io_timeout(double timeout_ms) noexcept;

  /// Length-prefixed write of one wire frame.
  void send_frame(std::span<const std::uint8_t> payload);

  /// Blocking read of one full frame. Throws WireError on EOF (peer gone),
  /// I/O error, or an over-limit length prefix.
  [[nodiscard]] std::vector<std::uint8_t> recv_frame();

  /// Raw (UNframed) byte I/O, for protocols with their own framing carried
  /// over this transport — the HTTP exposition server (router/obs_http).
  /// send_bytes writes all of `data`; recv_some performs ONE read into
  /// `buffer`, returning the byte count — 0 means orderly EOF (unlike
  /// recv_frame, a valid end of an HTTP request stream, not an error).
  /// Both honor set_io_timeout (WireTimeout) and throw WireError on
  /// transport failure.
  void send_bytes(std::string_view data);
  [[nodiscard]] std::size_t recv_some(char* buffer, std::size_t capacity);

  /// Wakes any thread blocked in this socket's I/O with an EOF/error
  /// (used to stop connection-handler threads). Safe from other threads.
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  void send_all(const void* data, std::size_t bytes);
  void recv_all(void* data, std::size_t bytes);
  /// Applies a fault-injection decision for `site` ("socket.send" /
  /// "socket.recv"); may sleep, sever the connection, or — send-side —
  /// write a deliberately truncated frame before severing.
  void apply_fault(const char* site, std::span<const std::uint8_t> payload);

  int fd_ = -1;
  std::string peer_;
};

/// A bound, listening stream socket. For kUnix addresses, bind unlinks a
/// stale socket file first and the destructor unlinks it again.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  [[nodiscard]] static ListenSocket bind_to(const Address& address);

  /// Blocks until a peer connects. Throws WireError when the socket was
  /// closed (the accept loop's stop signal) or on accept failure. The
  /// accepted socket's peer label is this listener's own address — see
  /// Socket::set_peer.
  [[nodiscard]] Socket accept();

  /// Waits up to `timeout_ms` for a pending connection; false on timeout.
  /// The poll()-based accept loop uses this to observe its stop flag.
  [[nodiscard]] bool wait_readable(int timeout_ms) const;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const Address& address() const noexcept { return address_; }

  void close() noexcept;

 private:
  int fd_ = -1;
  Address address_;
  bool unlink_on_close_ = false;
};

}  // namespace pelican::router
