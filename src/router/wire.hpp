// Wire protocol of the router tier: compact length-prefixed binary frames
// between the Router front door and EngineWorker processes.
//
// A frame is [verb: u8][body], built with common/serialize's BufferWriter
// and decoded with BufferReader; the transport (router/socket.hpp) adds a
// u32 length prefix on the stream. Every request verb has exactly one reply
// verb, and every connection is strictly request/reply — no pipelining, no
// out-of-order replies — so a connection's state is trivial and a pool of
// them gives concurrency.
//
// Verbs:
//   kPredictBatch → kPredictReplies   the data plane: a coalesced batch of
//                                     PredictRequests; reply i answers
//                                     request i (bit-identical to a direct
//                                     ServingEngine call — the protocol
//                                     carries discretized features and
//                                     location ids, never floats, so there
//                                     is nothing to round)
//   kDeploy       → kAck              admin: read (user, version) from the
//                                     engine's shared model store and
//                                     register the deployment
//   kPublish      → kAck              admin: stall-free model update via
//                                     DeploymentRegistry::publish
//   kHealth       → kHealthReply      liveness + deployment count
//   kStats        → kStatsReply       the engine's raw ServerStats::State,
//                                     merged fleet-wide by the router
//   kMetrics      → kMetricsReply     full observability snapshot: stats +
//                                     the obs::Registry (stage histograms)
//                                     + the slow-request trace journal
//   kDrain        → kAck              graceful shutdown: the engine stops
//                                     accepting and exits its run loop.
//                                     CONTRACT: drain is idempotent, the
//                                     ack must arrive within the caller's
//                                     drain deadline (the Router bounds the
//                                     exchange with RouterConfig::
//                                     drain_timeout_ms), and a wedged
//                                     engine that cannot ack in time is
//                                     ABANDONED, not waited on — the caller
//                                     proceeds with teardown and the
//                                     process supervisor owns the rest
//
// Versioning: the predict-batch, stats-reply, and metrics-reply frames
// carry an explicit version byte right after the verb (kPredictFrameVersion
// / kStatsFrameVersion). Both sides of this protocol are built from one
// tree, so layout changes are legal — but they must be DELIBERATE: bumping
// the constant makes a stale peer fail with a clear SerializeError naming
// the mismatch instead of silently misparsing bytes. Version 2 of the
// predict frame added the per-request trace id; version 3 the per-request
// deadline budget (engines shed already-expired work at admission). Version
// 2 of the stats frame replaced the raw latency sample vector with the
// bounded obs::HistogramState.
//
// Malformed frames (bad verb, truncated body, trailing bytes) throw
// SerializeError; the engine answers with a kAck{ok=false} rather than
// dying, and the router treats transport-level failures as backend death.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mobility/dataset.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/scheduler.hpp"
#include "serve/stats.hpp"

namespace pelican::router {

enum class Verb : std::uint8_t {
  kPredictBatch = 1,
  kDeploy = 2,
  kPublish = 3,
  kHealth = 4,
  kStats = 5,
  kDrain = 6,
  kMetrics = 7,
  // Replies live in a disjoint range so a misrouted frame can never be
  // mistaken for a request.
  kPredictReplies = 65,
  kAck = 66,
  kHealthReply = 67,
  kStatsReply = 68,
  kMetricsReply = 69,
};

/// Layout version of the kPredictBatch frame (v2: + per-request trace id;
/// v3: + per-request deadline budget in ms).
inline constexpr std::uint8_t kPredictFrameVersion = 3;
/// Layout version of kStatsReply / kMetricsReply (v2: histogram latency
/// state instead of raw samples; v3: per-histogram invalid-observation
/// count and the engine's structured event journal in the metrics reply).
inline constexpr std::uint8_t kStatsFrameVersion = 3;

[[nodiscard]] constexpr const char* to_string(Verb verb) noexcept {
  switch (verb) {
    case Verb::kPredictBatch: return "predict_batch";
    case Verb::kDeploy: return "deploy";
    case Verb::kPublish: return "publish";
    case Verb::kHealth: return "health";
    case Verb::kStats: return "stats";
    case Verb::kDrain: return "drain";
    case Verb::kMetrics: return "metrics";
    case Verb::kPredictReplies: return "predict_replies";
    case Verb::kAck: return "ack";
    case Verb::kHealthReply: return "health_reply";
    case Verb::kStatsReply: return "stats_reply";
    case Verb::kMetricsReply: return "metrics_reply";
  }
  return "?";
}

/// Instructs an engine to deploy `user_id` serving `version` from its
/// attached model store scope, wrapped with this encoding spec and privacy
/// temperature. The model itself never crosses the wire — engines pull it
/// from the shared FilesystemBackend store.
struct DeployCommand {
  std::uint32_t user_id = 0;
  std::uint32_t version = 0;
  double temperature = 1.0;
  mobility::EncodingSpec spec;
};

struct PublishCommand {
  std::uint32_t user_id = 0;
  std::uint32_t version = 0;
};

/// Generic admin reply. `message` is empty on success and names the failure
/// (e.g. the missing store key) otherwise.
struct Ack {
  bool ok = false;
  std::string message;
};

struct HealthReply {
  std::uint64_t deployments = 0;
  bool draining = false;
};

/// Full observability snapshot of one engine: the classic serving counters,
/// the stage-latency metrics registry, the worst-N trace journal, and the
/// engine's structured event journal (publish, deadline-shed bursts). What
/// kMetricsReply carries and what Router::fleet_metrics merges.
struct EngineMetricsReport {
  serve::ServerStats::State stats;
  obs::RegistryState registry;
  std::vector<obs::TraceRecord> traces;
  std::vector<obs::Event> events;
};

/// First byte of a frame. Throws SerializeError on an empty frame or a
/// byte outside the Verb enumeration.
[[nodiscard]] Verb frame_verb(std::span<const std::uint8_t> frame);

// -- request encoders --------------------------------------------------------
[[nodiscard]] std::vector<std::uint8_t> encode_predict_batch(
    std::span<const serve::PredictRequest> requests);
[[nodiscard]] std::vector<std::uint8_t> encode_deploy(
    const DeployCommand& command);
[[nodiscard]] std::vector<std::uint8_t> encode_publish(
    const PublishCommand& command);
[[nodiscard]] std::vector<std::uint8_t> encode_health();
[[nodiscard]] std::vector<std::uint8_t> encode_stats();
[[nodiscard]] std::vector<std::uint8_t> encode_metrics();
[[nodiscard]] std::vector<std::uint8_t> encode_drain();

// -- reply encoders ----------------------------------------------------------
[[nodiscard]] std::vector<std::uint8_t> encode_predict_replies(
    std::span<const serve::PredictResponse> responses);
[[nodiscard]] std::vector<std::uint8_t> encode_ack(const Ack& ack);
[[nodiscard]] std::vector<std::uint8_t> encode_health_reply(
    const HealthReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(
    const serve::ServerStats::State& state);
[[nodiscard]] std::vector<std::uint8_t> encode_metrics_reply(
    const EngineMetricsReport& report);

// -- decoders (each validates the verb byte and full-body consumption) -------
[[nodiscard]] std::vector<serve::PredictRequest> decode_predict_batch(
    std::span<const std::uint8_t> frame);
[[nodiscard]] DeployCommand decode_deploy(std::span<const std::uint8_t> frame);
[[nodiscard]] PublishCommand decode_publish(
    std::span<const std::uint8_t> frame);
[[nodiscard]] std::vector<serve::PredictResponse> decode_predict_replies(
    std::span<const std::uint8_t> frame);
[[nodiscard]] Ack decode_ack(std::span<const std::uint8_t> frame);
[[nodiscard]] HealthReply decode_health_reply(
    std::span<const std::uint8_t> frame);
[[nodiscard]] serve::ServerStats::State decode_stats_reply(
    std::span<const std::uint8_t> frame);
[[nodiscard]] EngineMetricsReport decode_metrics_reply(
    std::span<const std::uint8_t> frame);

}  // namespace pelican::router
