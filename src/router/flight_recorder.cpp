#include "router/flight_recorder.hpp"

#include <utility>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "router/router.hpp"

namespace pelican::router {
namespace {

/// Strips the query string: routing keys on the path alone.
[[nodiscard]] std::string_view request_path(const obs::HttpRequest& request) {
  const std::string_view target = request.target;
  return target.substr(0, target.find('?'));
}

}  // namespace

FlightRecorder::FlightRecorder(Router& router, FlightRecorderConfig config)
    : FlightRecorder(
          [&router]() -> FlightSample {
            auto fleet = router.fleet_metrics();
            return FlightSample{std::move(fleet.registry),
                                std::move(fleet.events)};
          },
          std::move(config), &router.metrics(), &router.events()) {}

FlightRecorder::FlightRecorder(Source source, FlightRecorderConfig config,
                               obs::Registry* slo_metrics,
                               obs::EventJournal* slo_events)
    : config_(std::move(config)),
      source_(std::move(source)),
      // The sampler's source routes through this recorder so each tick also
      // refreshes the cached registry/event snapshot the HTTP endpoints
      // serve. Safe during construction: the sampler never invokes its
      // source before start()/sample_now().
      sampler_(
          [this]() -> obs::RegistryState {
            FlightSample sample = source_();
            obs::RegistryState registry = sample.registry;
            const MutexLock lock(state_mutex_);
            last_registry_ = std::move(sample.registry);
            last_events_ = std::move(sample.events);
            last_sample_ms_ = obs::unix_now_ms();
            return registry;
          },
          obs::FleetSamplerConfig{config_.sample_interval_ms,
                                  config_.series_capacity,
                                  obs::FleetSamplerConfig{}.quantiles}),
      slo_tracker_(sampler_.store(), slo_metrics, slo_events) {
  for (const auto& spec : config_.slos) slo_tracker_.add(spec);
  // Re-judge every objective right after each tick lands in the store.
  sampler_.set_on_sample([this] { slo_tracker_.evaluate(); });
  if (!config_.http_listen.empty()) {
    http_ = std::make_unique<ObsHttpServer>(
        config_.http_listen,
        [this](const obs::HttpRequest& request) { return handle(request); });
  }
}

FlightRecorder::~FlightRecorder() { stop(); }

void FlightRecorder::start() {
  sampler_.start();
  if (http_) http_->start();
}

void FlightRecorder::stop() {
  if (http_) http_->stop();
  sampler_.stop();
}

void FlightRecorder::sample_now() { sampler_.sample_now(); }

std::vector<obs::Event> FlightRecorder::events() const {
  const MutexLock lock(state_mutex_);
  return last_events_;
}

obs::RegistryState FlightRecorder::last_registry() const {
  const MutexLock lock(state_mutex_);
  return last_registry_;
}

std::string FlightRecorder::metrics_text() const {
  return obs::prometheus_text(last_registry(), /*labels=*/"");
}

std::string FlightRecorder::metrics_json() const {
  return obs::registry_json(last_registry());
}

std::string FlightRecorder::timeseries_json() const {
  return obs::timeseries_json(sampler_.store().snapshot());
}

std::string FlightRecorder::events_json() const {
  const MutexLock lock(state_mutex_);
  return obs::events_json(last_events_);
}

std::string FlightRecorder::slos_json() const {
  return obs::slos_json(slo_tracker_.status());
}

std::string FlightRecorder::flight_dump_json() const {
  std::uint64_t captured = 0;
  {
    const MutexLock lock(state_mutex_);
    captured = last_sample_ms_;
  }
  std::string out = "{\"flight\":{\"captured_unix_ms\":";
  out += std::to_string(captured);
  out += ",\"timeseries\":";
  out += timeseries_json();
  out += ",\"events\":";
  out += events_json();
  out += ",\"slos\":";
  out += slos_json();
  out += "}}";
  return out;
}

obs::HttpResponse FlightRecorder::handle(
    const obs::HttpRequest& request) const {
  obs::HttpResponse response;
  if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "only GET is served here\n";
    return response;
  }
  const std::string_view path = request_path(request);
  if (path == "/healthz") {
    response.body = "ok\n";
  } else if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = metrics_text();
  } else if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = metrics_json();
  } else if (path == "/timeseries") {
    response.content_type = "application/json";
    response.body = timeseries_json();
  } else if (path == "/events") {
    response.content_type = "application/json";
    response.body = events_json();
  } else if (path == "/slo" || path == "/slos") {
    response.content_type = "application/json";
    response.body = slos_json();
  } else if (path == "/flight") {
    response.content_type = "application/json";
    response.body = flight_dump_json();
  } else if (path == "/") {
    response.body =
        "pelican flight recorder\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  registry as JSON\n"
        "  /timeseries    ring-buffered rates and quantiles\n"
        "  /events        fleet-merged event journal\n"
        "  /slo           burn-rate objective status\n"
        "  /flight        full dump (timeseries + events + slos)\n"
        "  /healthz       liveness\n";
  } else {
    response.status = 404;
    response.body = "unknown endpoint; GET / lists what is served\n";
  }
  if (request.method == "HEAD") response.body.clear();
  return response;
}

}  // namespace pelican::router
