// Partitioner: which engine process owns which users.
//
// The paper's deployment model is one cloud service personalizing models
// for millions of users; a single process's DeploymentRegistry cannot hold
// them all, so the router tier splits the user space into a fixed number of
// PARTITIONS (a level of indirection between users and processes) and
// assigns partitions to backends by consistent hashing:
//
//   user ──fibonacci hash──▶ partition p ∈ [0, P)
//   partition ──ring lookup──▶ owning backend
//
// The ring holds `virtual_nodes` points per backend; partition p is owned
// by the first backend point clockwise of hash(p). The assignment is
// materialized as an explicit OWNERSHIP TABLE (partition → backend id), so
// routing a request is one hash plus one array index — the ring is only
// consulted when membership changes.
//
// Why consistent hashing instead of `hash(user) % N`: when a backend joins
// or leaves, modulo reassigns nearly every user, which at fleet scale means
// re-deploying (re-reading from the model store) nearly every model.
// Consistent hashing moves only the departed backend's partitions (on
// removal) or the partitions the new backend's ring points capture (on
// add) — a bounded slice of roughly P/N partitions — and add_/
// remove_backend return the exact count moved so callers can observe the
// bound (tests do).
//
// Not thread-safe: the Router serializes access under its own lock.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pelican::router {

class Partitioner {
 public:
  /// `num_partitions` fixes the granularity of ownership (must be > 0;
  /// more partitions = finer rebalancing at the cost of a larger table).
  /// `virtual_nodes` is the number of ring points per backend (must be
  /// > 0; more points = more even partition spread across backends).
  explicit Partitioner(std::size_t num_partitions = 64,
                       std::size_t virtual_nodes = 16);

  /// Registers a backend and reassigns the partitions its ring points
  /// capture. Returns the number of partitions that moved (0 when the id
  /// was already registered).
  std::size_t add_backend(const std::string& id);

  /// Unregisters a backend; its partitions move to the surviving ring
  /// successors and NOTHING else moves. Returns the number of partitions
  /// that moved (0 when the id was unknown).
  std::size_t remove_backend(const std::string& id);

  [[nodiscard]] bool contains(const std::string& id) const;

  /// Stable partition of a user id (independent of fleet membership).
  [[nodiscard]] std::size_t partition_of(std::uint32_t user_id) const noexcept;

  /// Owning backend of a user. Throws std::logic_error when no backends
  /// are registered.
  [[nodiscard]] const std::string& owner_of(std::uint32_t user_id) const;

  /// Owning backend of a partition (same error contract).
  [[nodiscard]] const std::string& owner_of_partition(std::size_t p) const;

  /// The explicit ownership table, partition → backend id. All entries are
  /// empty strings while no backends are registered.
  [[nodiscard]] const std::vector<std::string>& ownership() const noexcept {
    return ownership_;
  }

  [[nodiscard]] std::size_t num_partitions() const noexcept {
    return ownership_.size();
  }

  /// Registered backend ids, sorted ascending.
  [[nodiscard]] std::vector<std::string> backends() const;

  [[nodiscard]] std::size_t backend_count() const noexcept {
    return backend_count_;
  }

 private:
  /// Recomputes the ownership table from the ring; returns how many
  /// partitions changed owner.
  std::size_t rebuild();

  std::size_t virtual_nodes_;
  std::size_t backend_count_ = 0;
  /// ring point -> backend id. On the (astronomically unlikely) hash
  /// collision the lexicographically smaller id wins, keeping the table
  /// independent of registration order.
  std::map<std::uint64_t, std::string> ring_;
  std::vector<std::string> ownership_;
};

}  // namespace pelican::router
