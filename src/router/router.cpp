#include "router/router.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/timer.hpp"

namespace pelican::router {

Router::Router(RouterConfig config)
    : config_(config),
      partitioner_(config.partitions, config.virtual_nodes) {
  if (config_.pool_connections == 0) {
    throw std::invalid_argument("Router: pool_connections must be > 0");
  }
  using obs::Stage;
  wire_serialize_hist_ =
      &metrics_.histogram(obs::stage_metric_name(Stage::kWireSerialize));
  fanout_hist_ =
      &metrics_.histogram(obs::stage_metric_name(Stage::kRouterFanout));
  failover_hist_ =
      &metrics_.histogram(obs::stage_metric_name(Stage::kFailoverRetry));
}

Router::~Router() = default;

std::size_t Router::add_backend(const std::string& address) {
  auto backend = std::make_shared<Backend>(address);
  // Health-check before admitting: a typo'd address must fail the add, not
  // the first serve. Throws WireError when unreachable.
  {
    const auto reply = exchange(*backend, encode_health());
    (void)decode_health_reply(reply);
  }
  const MutexLock lock(mutex_);
  if (backends_.contains(address)) return 0;
  backends_.emplace(address, std::move(backend));
  return partitioner_.add_backend(address);
}

std::shared_ptr<Router::Backend> Router::find_backend(
    const std::string& address) const {
  const MutexLock lock(mutex_);
  const auto it = backends_.find(address);
  if (it == backends_.end() || !it->second->alive.load()) return nullptr;
  return it->second;
}

std::vector<std::uint8_t> Router::exchange(
    Backend& backend, std::span<const std::uint8_t> frame) {
  Socket socket;
  bool from_pool = false;
  {
    MutexLock lock(backend.pool_mutex);
    while (backend.alive.load() && backend.idle.empty() &&
           backend.open_connections >= config_.pool_connections) {
      lock.wait(backend.pool_cv);
    }
    if (!backend.alive.load()) {
      throw WireError("backend dead: " + backend.address);
    }
    if (!backend.idle.empty()) {
      socket = std::move(backend.idle.back());
      backend.idle.pop_back();
      from_pool = true;
    } else {
      ++backend.open_connections;  // reserve a slot, connect off-lock
    }
  }
  if (!from_pool) {
    try {
      socket = Socket::connect_to(backend.parsed);
    } catch (...) {
      const MutexLock lock(backend.pool_mutex);
      --backend.open_connections;
      backend.pool_cv.notify_one();
      throw;
    }
  }
  try {
    socket.send_frame(frame);
    std::vector<std::uint8_t> reply = socket.recv_frame();
    const MutexLock lock(backend.pool_mutex);
    if (backend.alive.load()) {
      backend.idle.push_back(std::move(socket));
    } else {
      --backend.open_connections;  // pool is being torn down
    }
    backend.pool_cv.notify_one();
    return reply;
  } catch (...) {
    // The connection is in an unknown state mid-exchange: discard it.
    const MutexLock lock(backend.pool_mutex);
    --backend.open_connections;
    backend.pool_cv.notify_one();
    throw;
  }
}

void Router::handle_backend_failure(const std::string& address) {
  std::shared_ptr<Backend> backend;
  std::vector<std::pair<std::uint32_t, Deployment>> to_redeploy;
  {
    const MutexLock lock(mutex_);
    const auto it = backends_.find(address);
    if (it == backends_.end() || !it->second->alive.load()) {
      return;  // another thread already failed this backend over
    }
    backend = it->second;
    backend->alive.store(false);
    // The users about to move are exactly those the dead backend owned —
    // collect them BEFORE the repartition so the ledger walk and the
    // ownership table agree.
    for (const auto& [user, record] : ledger_) {
      if (partitioner_.owner_of(user) == address) {
        to_redeploy.emplace_back(user, record);
      }
    }
    partitioner_.remove_backend(address);
    backends_.erase(it);
  }
  {
    // Tear down the pool and wake any thread parked waiting for a
    // connection slot — they observe !alive and fail over themselves.
    const MutexLock lock(backend->pool_mutex);
    backend->open_connections -= backend->idle.size();
    backend->idle.clear();
    backend->pool_cv.notify_all();
  }
  // Failover re-deploy: the fleet-shared store still holds every model, so
  // surviving owners just pull the same (user, version) keys. Best-effort —
  // a cascading failure here is handled by its own failover, and a fully
  // dead fleet surfaces as rejected responses.
  for (const auto& [user, record] : to_redeploy) {
    try {
      (void)admin_to_owner(
          user, encode_deploy(
                    {user, record.version, record.temperature, record.spec}));
    } catch (const std::exception&) {
    }
  }
}

Ack Router::admin_to_owner(std::uint32_t user,
                           const std::vector<std::uint8_t>& frame) {
  // One failover retry: the first attempt discovers a dead owner at most
  // once, the second runs against the repartitioned fleet.
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string owner;
    {
      const MutexLock lock(mutex_);
      if (partitioner_.backend_count() == 0) {
        throw WireError("no live backends");
      }
      owner = partitioner_.owner_of(user);
    }
    const auto backend = find_backend(owner);
    if (backend == nullptr) {
      handle_backend_failure(owner);
      continue;
    }
    try {
      return decode_ack(exchange(*backend, frame));
    } catch (const WireError&) {
      handle_backend_failure(owner);
    }
  }
  throw WireError("no live backend for user " + std::to_string(user));
}

void Router::deploy(std::uint32_t user, std::uint32_t version,
                    const mobility::EncodingSpec& spec, double temperature) {
  // Ledger first: if the owner dies between the ack and our bookkeeping,
  // failover must already know how to re-deploy this user. Every failure
  // path must undo the write — back to the PREVIOUS record when this was a
  // re-deploy (the engine still serves the old version, and failover must
  // keep restoring it), gone entirely when the user was never deployed
  // (or a failed deploy would materialize later as a ghost deployment).
  std::optional<Deployment> previous;
  {
    const MutexLock lock(mutex_);
    const auto it = ledger_.find(user);
    if (it != ledger_.end()) previous = it->second;
    ledger_[user] = Deployment{version, temperature, spec};
  }
  const auto roll_back = [&] {
    const MutexLock lock(mutex_);
    if (previous.has_value()) {
      ledger_[user] = *previous;
    } else {
      ledger_.erase(user);
    }
  };
  Ack ack;
  try {
    ack =
        admin_to_owner(user, encode_deploy({user, version, temperature, spec}));
  } catch (...) {
    roll_back();
    throw;
  }
  if (!ack.ok) {
    roll_back();
    throw std::runtime_error("Router: deploy of user " + std::to_string(user) +
                             " refused: " + ack.message);
  }
}

void Router::publish(std::uint32_t user, std::uint32_t version) {
  const Ack ack = admin_to_owner(user, encode_publish({user, version}));
  if (!ack.ok) {
    throw std::runtime_error("Router: publish of user " +
                             std::to_string(user) + " v" +
                             std::to_string(version) +
                             " refused: " + ack.message);
  }
  const MutexLock lock(mutex_);
  const auto it = ledger_.find(user);
  if (it != ledger_.end()) it->second.version = version;
}

std::vector<serve::PredictResponse> Router::serve(
    std::span<const serve::PredictRequest> requests) {
  const Stopwatch watch;
  const bool instrument = instrumentation_enabled();

  // One trace per serve() call: requests arriving untraced are stamped with
  // a fresh id (on a local copy — the caller's span is const); requests
  // already carrying ids keep them, and the router's spans are recorded
  // under every distinct id in the batch (bounded — a batch is one logical
  // call, so distinct ids are rare).
  std::vector<std::uint64_t> trace_ids;
  std::vector<serve::PredictRequest> stamped;
  std::span<const serve::PredictRequest> reqs = requests;
  if (instrument && !requests.empty()) {
    constexpr std::size_t kMaxDistinctIds = 16;
    for (const auto& request : requests) {
      if (request.trace_id == 0) continue;
      if (std::find(trace_ids.begin(), trace_ids.end(), request.trace_id) ==
              trace_ids.end() &&
          trace_ids.size() < kMaxDistinctIds) {
        trace_ids.push_back(request.trace_id);
      }
    }
    if (trace_ids.empty()) {
      const std::uint64_t trace = obs::new_trace_id();
      stamped.assign(requests.begin(), requests.end());
      for (auto& request : stamped) request.trace_id = trace;
      reqs = stamped;
      trace_ids.push_back(trace);
    }
  }
  std::vector<obs::Span> spans;  // router-side spans, committed at the end
  Mutex spans_mutex;             // forwarding threads append concurrently

  std::vector<serve::PredictResponse> responses(reqs.size());
  std::vector<std::size_t> remaining(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) remaining[i] = i;

  std::size_t attempts = 0;
  {
    const MutexLock lock(mutex_);
    attempts = partitioner_.backend_count() + 1;
  }

  std::size_t round = 0;
  while (!remaining.empty() && attempts-- > 0) {
    const std::uint64_t round_start_ns = instrument ? obs::now_ns() : 0;
    // Group the outstanding requests by owning backend. std::map keys the
    // groups by address, so the fan-out order is deterministic.
    std::map<std::string, std::vector<std::size_t>> groups;
    {
      const MutexLock lock(mutex_);
      if (partitioner_.backend_count() == 0) break;
      for (const std::size_t i : remaining) {
        groups[partitioner_.owner_of(reqs[i].user_id)].push_back(i);
      }
    }

    std::vector<std::pair<std::string, std::vector<std::size_t>>> fan_out(
        groups.begin(), groups.end());
    std::vector<std::vector<std::size_t>> failed(fan_out.size());

    // One short-lived forwarding thread per owning backend. Deliberately
    // NOT ThreadPool::global(): these bodies BLOCK on socket I/O, which
    // would park compute workers the in-process engine path and attack
    // scoring share, and parallel_for serializes concurrent submissions —
    // two client threads in serve() would serialize their network waits.
    // Spawn cost (~tens of µs) is noise against a wire round trip.
    auto forward = [&](std::size_t g) {
      const auto& [address, indices] = fan_out[g];
      const auto backend = find_backend(address);
      if (backend == nullptr) {
        failed[g] = indices;
        return;
      }
      std::vector<serve::PredictRequest> batch;
      batch.reserve(indices.size());
      for (const std::size_t i : indices) batch.push_back(reqs[i]);
      try {
        const std::uint64_t encode_start_ns = instrument ? obs::now_ns() : 0;
        const auto frame = encode_predict_batch(batch);
        const std::uint64_t sent_ns = instrument ? obs::now_ns() : 0;
        const auto reply = exchange(*backend, frame);
        const std::uint64_t received_ns = instrument ? obs::now_ns() : 0;
        auto decoded = decode_predict_replies(reply);
        if (decoded.size() != indices.size()) {
          throw WireError("predict reply count mismatch from " + address);
        }
        for (std::size_t j = 0; j < indices.size(); ++j) {
          responses[indices[j]] = std::move(decoded[j]);
        }
        if (instrument) {
          const std::uint64_t done_ns = obs::now_ns();
          // Serialize cost = encode + decode; fan-out = the socket round
          // trip (which contains the engine's own spans in time).
          const std::uint64_t serialize_ns =
              (sent_ns - encode_start_ns) + (done_ns - received_ns);
          const MutexLock lock(spans_mutex);
          spans.push_back(
              {obs::Stage::kWireSerialize, encode_start_ns, serialize_ns});
          spans.push_back({obs::Stage::kRouterFanout, sent_ns,
                           received_ns - sent_ns});
        }
      } catch (const std::exception&) {
        // Transport failure or protocol breakdown: either way this backend
        // is unusable. Fail it over and retry the slice on the new owners.
        handle_backend_failure(address);
        failed[g] = indices;
      }
    };
    if (fan_out.size() == 1) {
      forward(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(fan_out.size());
      for (std::size_t g = 0; g < fan_out.size(); ++g) {
        threads.emplace_back(forward, g);
      }
      for (auto& thread : threads) thread.join();
    }

    remaining.clear();
    for (const auto& slice : failed) {
      remaining.insert(remaining.end(), slice.begin(), slice.end());
    }
    if (instrument && round > 0) {
      // Rounds past the first exist only because a backend failed: the
      // whole round is failover work, visible as its own span.
      spans.push_back({obs::Stage::kFailoverRetry, round_start_ns,
                       obs::now_ns() - round_start_ns});
    }
    ++round;
  }

  // Requests that survived every retry round with no live owner.
  for (const std::size_t i : remaining) {
    serve::PredictResponse response;
    response.user_id = reqs[i].user_id;
    response.ok = false;
    response.rejected = true;
    responses[i] = response;
  }

  // Router-side accounting: end-to-end latency including wire + failover.
  // (Engine-side latency/batch stats live in fleet_stats().)
  const double latency_ms = watch.milliseconds();
  for (auto& response : responses) {
    response.latency_ms = latency_ms;
    if (response.ok) {
      stats_.record_request(latency_ms);
    } else if (response.rejected) {
      stats_.record_shed();
    } else {
      stats_.record_rejected();
    }
  }
  if (instrument && !spans.empty()) {
    for (const obs::Span& span : spans) {
      switch (span.stage) {
        case obs::Stage::kWireSerialize:
          wire_serialize_hist_->observe(span.duration_ms());
          break;
        case obs::Stage::kRouterFanout:
          fanout_hist_->observe(span.duration_ms());
          break;
        case obs::Stage::kFailoverRetry:
          failover_hist_->observe(span.duration_ms());
          break;
        default:
          break;
      }
    }
    for (const std::uint64_t id : trace_ids) {
      traces_.record(id, spans);
      traces_.finish(id, latency_ms);
    }
  }
  return responses;
}

serve::ServerStats::Snapshot Router::fleet_stats() {
  serve::ServerStats fleet;
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      fleet.merge(decode_stats_reply(exchange(*backend, encode_stats())));
    } catch (const std::exception&) {
      handle_backend_failure(address);
    }
  }
  return fleet.snapshot();
}

Router::FleetMetrics Router::fleet_metrics() {
  FleetMetrics out;
  serve::ServerStats fleet;
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      EngineMetricsReport report =
          decode_metrics_reply(exchange(*backend, encode_metrics()));
      for (obs::TraceRecord& rec : report.traces) rec.source = address;
      fleet.merge(report.stats);
      obs::merge_state(out.registry, report.registry);
      out.traces.insert(out.traces.end(), report.traces.begin(),
                        report.traces.end());
      out.engines.emplace_back(address, std::move(report));
    } catch (const std::exception&) {
      handle_backend_failure(address);
    }
  }
  out.stats = fleet.snapshot();
  // The router's own side of the traces: its registry folds into the fleet
  // registry (same fixed buckets — still exact), and its journal records
  // join the pool tagged "router" so statsz can pair them with the engine
  // records sharing their trace ids.
  obs::merge_state(out.registry, metrics_.state());
  for (obs::TraceRecord rec : traces_.journal()) {
    rec.source = "router";
    out.traces.push_back(std::move(rec));
  }
  return out;
}

std::vector<std::pair<std::string, HealthReply>> Router::fleet_health() {
  std::vector<std::pair<std::string, HealthReply>> out;
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      out.emplace_back(address,
                       decode_health_reply(exchange(*backend, encode_health())));
    } catch (const std::exception&) {
      handle_backend_failure(address);
    }
  }
  return out;
}

void Router::drain_fleet() {
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      (void)decode_ack(exchange(*backend, encode_drain()));
    } catch (const std::exception&) {
    }
  }
  // The fleet is gone by contract; leave the router in a defined state.
  const MutexLock lock(mutex_);
  for (auto& [address, backend] : backends_) {
    backend->alive.store(false);
    (void)partitioner_.remove_backend(address);
    const MutexLock pool_lock(backend->pool_mutex);
    backend->open_connections -= backend->idle.size();
    backend->idle.clear();
    backend->pool_cv.notify_all();
  }
  backends_.clear();
}

std::vector<std::string> Router::live_backends() const {
  std::vector<std::string> out;
  {
    const MutexLock lock(mutex_);
    out.reserve(backends_.size());
    for (const auto& [address, backend] : backends_) {
      if (backend->alive.load()) out.push_back(address);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Router::owner_of(std::uint32_t user) const {
  const MutexLock lock(mutex_);
  return partitioner_.owner_of(user);
}

std::size_t Router::deployed_users() const {
  const MutexLock lock(mutex_);
  return ledger_.size();
}

}  // namespace pelican::router
