#include "router/router.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/fault.hpp"
#include "common/timer.hpp"

namespace pelican::router {

namespace {

std::chrono::steady_clock::duration millis(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(config),
      partitioner_(config.partitions, config.virtual_nodes) {
  if (config_.pool_connections == 0) {
    throw std::invalid_argument("Router: pool_connections must be > 0");
  }
  using obs::Stage;
  wire_serialize_hist_ =
      &metrics_.histogram(obs::stage_metric_name(Stage::kWireSerialize));
  fanout_hist_ =
      &metrics_.histogram(obs::stage_metric_name(Stage::kRouterFanout));
  failover_hist_ =
      &metrics_.histogram(obs::stage_metric_name(Stage::kFailoverRetry));
  hedge_hist_ = &metrics_.histogram(obs::stage_metric_name(Stage::kHedge));
  // Registered eagerly: a counter that has never fired still exports as 0,
  // so dashboards (and the CI statsz snapshot) always carry the full set.
  hedges_counter_ = &metrics_.counter("router_hedges_total");
  hedge_wins_counter_ = &metrics_.counter("router_hedge_wins_total");
  retry_rounds_counter_ = &metrics_.counter("router_retry_rounds_total");
  reconnects_counter_ = &metrics_.counter("router_pool_reconnects_total");
  timeouts_counter_ = &metrics_.counter("router_request_timeouts_total");
  quarantines_counter_ = &metrics_.counter("router_quarantines_total");
  unquarantines_counter_ = &metrics_.counter("router_unquarantines_total");
  deadline_shed_counter_ =
      &metrics_.counter("router_deadline_shed_total");
  prober_ = std::thread([this] { probe_loop(); });
}

Router::~Router() {
  {
    const MutexLock lock(probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::size_t Router::add_backend(const std::string& address) {
  auto backend = std::make_shared<Backend>(address);
  // Health-check before admitting: a typo'd address must fail the add, not
  // the first serve. Throws WireError when unreachable.
  {
    const auto reply =
        exchange(*backend, encode_health(), config_.request_timeout_ms);
    (void)decode_health_reply(reply);
  }
  const MutexLock lock(mutex_);
  // A quarantined address is NOT re-added here: the recovery prober owns
  // its way back (double membership would split its partitions).
  if (backends_.contains(address) || quarantined_.contains(address)) return 0;
  backends_.emplace(address, std::move(backend));
  return partitioner_.add_backend(address);
}

std::shared_ptr<Router::Backend> Router::find_backend(
    const std::string& address) const {
  const MutexLock lock(mutex_);
  const auto it = backends_.find(address);
  if (it == backends_.end() || !it->second->alive.load()) return nullptr;
  return it->second;
}

std::vector<std::uint8_t> Router::exchange(Backend& backend,
                                           std::span<const std::uint8_t> frame,
                                           double timeout_ms,
                                           ExchangeCancel* cancel,
                                           bool clears_strikes) {
  for (int attempt = 0;; ++attempt) {
    Socket socket;
    bool from_pool = false;
    {
      MutexLock lock(backend.pool_mutex);
      while (backend.alive.load() && backend.idle.empty() &&
             backend.open_connections >= config_.pool_connections) {
        lock.wait(backend.pool_cv);
      }
      if (!backend.alive.load()) {
        throw WireError("backend dead: " + backend.address);
      }
      if (!backend.idle.empty()) {
        socket = std::move(backend.idle.back());
        backend.idle.pop_back();
        from_pool = true;
      } else {
        ++backend.open_connections;  // reserve a slot, connect off-lock
      }
    }
    if (!from_pool) {
      try {
        socket = Socket::connect_to(backend.parsed);
      } catch (...) {
        const MutexLock lock(backend.pool_mutex);
        --backend.open_connections;
        backend.pool_cv.notify_one();
        throw;
      }
    }
    socket.set_io_timeout(timeout_ms);
    if (cancel != nullptr) {
      const MutexLock lock(cancel->mutex);
      if (cancel->cancelled) {
        // The race is already decided; hand the untouched connection back.
        const MutexLock pool_lock(backend.pool_mutex);
        if (backend.alive.load()) {
          backend.idle.push_back(std::move(socket));
        } else {
          --backend.open_connections;
        }
        backend.pool_cv.notify_one();
        throw WireError("exchange cancelled: " + backend.address);
      }
      cancel->active = &socket;
    }
    // The in-flight socket must be de-registered before it leaves this
    // frame (pool hand-back or discard): a late cancel() must never
    // shut down a socket someone else now owns.
    const auto unregister = [cancel] {
      if (cancel != nullptr) {
        const MutexLock lock(cancel->mutex);
        cancel->active = nullptr;
      }
    };
    try {
      socket.send_frame(frame);
      std::vector<std::uint8_t> reply = socket.recv_frame();
      unregister();
      socket.set_io_timeout(0);  // pooled connections are blocking at rest
      {
        const MutexLock lock(backend.pool_mutex);
        if (backend.alive.load()) {
          backend.idle.push_back(std::move(socket));
        } else {
          --backend.open_connections;  // pool is being torn down
        }
        backend.pool_cv.notify_one();
      }
      if (clears_strikes) {
        backend.timeout_strikes.store(0, std::memory_order_relaxed);
      }
      return reply;
    } catch (const WireTimeout&) {
      // Mid-exchange deadline: the connection's state is unknown, discard
      // it. Never retried here — the caller owns the hung-engine handling.
      unregister();
      const MutexLock lock(backend.pool_mutex);
      --backend.open_connections;
      backend.pool_cv.notify_one();
      throw;
    } catch (const WireError&) {
      unregister();
      {
        const MutexLock lock(backend.pool_mutex);
        --backend.open_connections;
        backend.pool_cv.notify_one();
      }
      if (cancel != nullptr && cancel->was_cancelled()) throw;
      if (from_pool && attempt == 0) {
        // A pooled connection can rot while parked (the engine restarted:
        // first reuse sees EPIPE/ECONNRESET). That says nothing about the
        // backend NOW — retry once on a fresh connection before declaring
        // it dead. Every wire verb is idempotent (reads trivially; deploy/
        // publish re-install the same version; drain re-requests a drain),
        // and the failed send/recv never delivered a reply, so re-issuing
        // the frame is safe.
        reconnects_counter_->add();
        continue;
      }
      throw;
    } catch (...) {
      unregister();
      const MutexLock lock(backend.pool_mutex);
      --backend.open_connections;
      backend.pool_cv.notify_one();
      throw;
    }
  }
}

void Router::handle_backend_failure(const std::string& address,
                                    std::uint64_t trace_id) {
  remove_backend(address, /*stash_quarantined=*/false, trace_id);
}

void Router::quarantine_backend(const std::string& address,
                                std::uint64_t trace_id) {
  remove_backend(address, /*stash_quarantined=*/true, trace_id);
}

void Router::remove_backend(const std::string& address,
                            bool stash_quarantined, std::uint64_t trace_id) {
  std::shared_ptr<Backend> backend;
  std::vector<std::pair<std::uint32_t, Deployment>> to_redeploy;
  {
    const MutexLock lock(mutex_);
    const auto it = backends_.find(address);
    if (it == backends_.end() || !it->second->alive.load()) {
      return;  // another thread already removed this backend
    }
    backend = it->second;
    backend->alive.store(false);
    // The users about to move are exactly those the removed backend owned —
    // collect them BEFORE the repartition so the ledger walk and the
    // ownership table agree.
    for (const auto& [user, record] : ledger_) {
      if (partitioner_.owner_of(user) == address) {
        to_redeploy.emplace_back(user, record);
      }
    }
    partitioner_.remove_backend(address);
    backends_.erase(it);
    if (stash_quarantined) {
      backend->quarantined_at_ns.store(obs::now_ns(),
                                       std::memory_order_relaxed);
      backend->quarantine_count.fetch_add(1, std::memory_order_relaxed);
      quarantined_.emplace(address, backend);
      quarantines_counter_->add();
    }
  }
  // Membership transitions always journal (they are rare and are the
  // events an operator greps for first); trace_id ties the quarantine to
  // the request whose timeout tripped it.
  events_.emit(stash_quarantined ? obs::EventType::kQuarantine
                                 : obs::EventType::kFailover,
               address,
               stash_quarantined
                   ? "suspected hung; partitions moved, watching for recovery"
                   : "transport failure; partitions moved",
               trace_id);
  {
    // Tear down the pool and wake any thread parked waiting for a
    // connection slot — they observe !alive and fail over themselves.
    const MutexLock lock(backend->pool_mutex);
    backend->open_connections -= backend->idle.size();
    backend->idle.clear();
    backend->pool_cv.notify_all();
  }
  // Failover re-deploy: the fleet-shared store still holds every model, so
  // surviving owners just pull the same (user, version) keys. Best-effort —
  // a cascading failure here is handled by its own failover, and a fully
  // dead fleet surfaces as rejected responses.
  for (const auto& [user, record] : to_redeploy) {
    try {
      (void)admin_to_owner(
          user, encode_deploy(
                    {user, record.version, record.temperature, record.spec}));
    } catch (const std::exception&) {
    }
  }
}

bool Router::probe_backend(Backend& backend) {
  // Always a fresh connection: the pool (and everything parked in it) may
  // be exactly what is wedged.
  try {
    Socket socket = Socket::connect_to(backend.parsed);
    socket.set_io_timeout(config_.probe_timeout_ms);
    socket.send_frame(encode_health());
    (void)decode_health_reply(socket.recv_frame());
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void Router::handle_backend_timeout(const std::string& address,
                                    std::uint64_t trace_id) {
  timeouts_counter_->add();
  const auto backend = find_backend(address);
  if (backend == nullptr) return;  // already removed or quarantined
  const std::uint64_t strikes =
      backend->timeout_strikes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (strikes >= config_.quarantine_after_timeouts) {
    // Persistently slow is hung for the caller's purposes, whatever the
    // health verb says (its handler thread may be fine while predict
    // handlers are livelocked).
    quarantine_backend(address, trace_id);
    return;
  }
  // Rate-limit the suspicion probe: a timeout storm across serve threads
  // should probe once per interval, not once per thread.
  const std::uint64_t now = obs::now_ns();
  std::uint64_t last = backend->last_probe_ns.load(std::memory_order_relaxed);
  const auto interval_ns =
      static_cast<std::uint64_t>(config_.probe_interval_ms * 1e6);
  if (last != 0 && now - last < interval_ns) return;
  if (!backend->last_probe_ns.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return;  // a concurrent caller owns this probe
  }
  if (!probe_backend(*backend)) quarantine_backend(address, trace_id);
}

void Router::unquarantine_backend(const std::string& address) {
  std::vector<std::pair<std::uint32_t, Deployment>> to_redeploy;
  {
    const MutexLock lock(mutex_);
    const auto it = quarantined_.find(address);
    if (it == quarantined_.end()) return;
    const std::shared_ptr<Backend> backend = it->second;
    quarantined_.erase(it);
    backend->alive.store(true);
    backend->timeout_strikes.store(0, std::memory_order_relaxed);
    backends_.emplace(address, backend);
    (void)partitioner_.add_backend(address);
    // The partitions just moved back; re-deploy the users this backend now
    // owns. It likely still holds their models, but it may have missed
    // deploys/publishes while quarantined — deploys are idempotent, so
    // re-issuing from the ledger reconciles it with the fleet's truth.
    for (const auto& [user, record] : ledger_) {
      if (partitioner_.owner_of(user) == address) {
        to_redeploy.emplace_back(user, record);
      }
    }
    unquarantines_counter_->add();
  }
  events_.emit(obs::EventType::kUnquarantine, address,
               "probe answered past hold-down; partitions restored");
  for (const auto& [user, record] : to_redeploy) {
    try {
      (void)admin_to_owner(
          user, encode_deploy(
                    {user, record.version, record.temperature, record.spec}));
    } catch (const std::exception&) {
    }
  }
}

bool Router::in_quarantine_holddown(const Backend& backend) const {
  if (config_.quarantine_holddown_ms <= 0.0) return false;
  // A strike-quarantined backend's health verb may have answered all
  // along — the hold-down (doubling per repeated quarantine, capped at
  // 64x) is what keeps a hung-but-healthy engine from flapping back in.
  const std::uint64_t count =
      backend.quarantine_count.load(std::memory_order_relaxed);
  const std::uint64_t exponent = std::min<std::uint64_t>(count - 1, 6);
  const double holddown_ns = config_.quarantine_holddown_ms * 1e6 *
                             static_cast<double>(std::uint64_t{1} << exponent);
  const std::uint64_t since =
      obs::now_ns() - backend.quarantined_at_ns.load(std::memory_order_relaxed);
  return static_cast<double>(since) < holddown_ns;
}

void Router::probe_loop() {
  for (;;) {
    {
      MutexLock lock(probe_mutex_);
      const auto wake =
          std::chrono::steady_clock::now() + millis(config_.probe_interval_ms);
      while (!probe_stop_) {
        if (!lock.wait_until(probe_cv_, wake)) break;  // interval elapsed
      }
      if (probe_stop_) return;
    }
    std::vector<std::shared_ptr<Backend>> suspects;
    {
      const MutexLock lock(mutex_);
      suspects.reserve(quarantined_.size());
      for (const auto& [address, backend] : quarantined_) {
        suspects.push_back(backend);
      }
    }
    for (const auto& backend : suspects) {
      if (in_quarantine_holddown(*backend)) continue;
      if (probe_backend(*backend)) unquarantine_backend(backend->address);
    }
  }
}

std::string Router::hedge_candidate(const std::string& owner) const {
  const auto live = live_backends();  // sorted
  if (live.size() < 2) return {};
  auto it = std::upper_bound(live.begin(), live.end(), owner);
  if (it == live.end()) it = live.begin();
  return *it == owner ? std::string{} : *it;
}

double Router::resolve_hedge_delay() const {
  if (config_.hedge_delay_ms > 0.0) return config_.hedge_delay_ms;
  if (config_.hedge_delay_ms < 0.0 || config_.hedge_budget_fraction <= 0.0) {
    return -1.0;  // hedging disabled
  }
  // Auto mode: hedge when a fan-out exceeds its own observed p99 — the
  // classic tail-at-scale delay. Until the histogram has seen enough
  // round trips to mean anything, fall back to a quarter of the request
  // timeout (hedges stay rare either way, and the budget caps them).
  constexpr std::uint64_t kMinSamples = 64;
  if (fanout_hist_->count() >= kMinSamples) {
    return std::max(config_.hedge_min_delay_ms,
                    fanout_hist_->percentile(99.0));
  }
  const double fallback = config_.request_timeout_ms > 0.0
                              ? config_.request_timeout_ms / 4.0
                              : 500.0;
  return std::max(config_.hedge_min_delay_ms, fallback);
}

Ack Router::admin_to_owner(std::uint32_t user,
                           const std::vector<std::uint8_t>& frame) {
  // One failover retry: the first attempt discovers a dead owner at most
  // once, the second runs against the repartitioned fleet.
  for (int attempt = 0; attempt < 2; ++attempt) {
    std::string owner;
    {
      const MutexLock lock(mutex_);
      if (partitioner_.backend_count() == 0) {
        throw WireError("no live backends");
      }
      owner = partitioner_.owner_of(user);
    }
    const auto backend = find_backend(owner);
    if (backend == nullptr) {
      handle_backend_failure(owner);
      continue;
    }
    try {
      return decode_ack(
          exchange(*backend, frame, config_.request_timeout_ms));
    } catch (const WireTimeout&) {
      handle_backend_timeout(owner);
    } catch (const WireError&) {
      handle_backend_failure(owner);
    }
  }
  throw WireError("no live backend for user " + std::to_string(user));
}

void Router::deploy(std::uint32_t user, std::uint32_t version,
                    const mobility::EncodingSpec& spec, double temperature) {
  // Ledger first: if the owner dies between the ack and our bookkeeping,
  // failover must already know how to re-deploy this user. Every failure
  // path must undo the write — back to the PREVIOUS record when this was a
  // re-deploy (the engine still serves the old version, and failover must
  // keep restoring it), gone entirely when the user was never deployed
  // (or a failed deploy would materialize later as a ghost deployment).
  std::optional<Deployment> previous;
  {
    const MutexLock lock(mutex_);
    const auto it = ledger_.find(user);
    if (it != ledger_.end()) previous = it->second;
    ledger_[user] = Deployment{version, temperature, spec};
  }
  const auto roll_back = [&] {
    const MutexLock lock(mutex_);
    if (previous.has_value()) {
      ledger_[user] = *previous;
    } else {
      ledger_.erase(user);
    }
  };
  Ack ack;
  try {
    ack =
        admin_to_owner(user, encode_deploy({user, version, temperature, spec}));
  } catch (...) {
    roll_back();
    throw;
  }
  if (!ack.ok) {
    roll_back();
    throw std::runtime_error("Router: deploy of user " + std::to_string(user) +
                             " refused: " + ack.message);
  }
}

void Router::publish(std::uint32_t user, std::uint32_t version) {
  const Ack ack = admin_to_owner(user, encode_publish({user, version}));
  if (!ack.ok) {
    throw std::runtime_error("Router: publish of user " +
                             std::to_string(user) + " v" +
                             std::to_string(version) +
                             " refused: " + ack.message);
  }
  events_.emit(obs::EventType::kPublish, "user " + std::to_string(user),
               "v" + std::to_string(version) + " live (stall-free swap)");
  const MutexLock lock(mutex_);
  const auto it = ledger_.find(user);
  if (it != ledger_.end()) it->second.version = version;
}

std::vector<serve::PredictResponse> Router::serve(
    std::span<const serve::PredictRequest> requests) {
  const Stopwatch watch;
  const bool instrument = instrumentation_enabled();

  // One trace per serve() call: requests arriving untraced are stamped with
  // a fresh id (on a local copy — the caller's span is const); requests
  // already carrying ids keep them, and the router's spans are recorded
  // under every distinct id in the batch (bounded — a batch is one logical
  // call, so distinct ids are rare).
  std::vector<std::uint64_t> trace_ids;
  std::vector<serve::PredictRequest> stamped;
  std::span<const serve::PredictRequest> reqs = requests;
  if (instrument && !requests.empty()) {
    constexpr std::size_t kMaxDistinctIds = 16;
    for (const auto& request : requests) {
      if (request.trace_id == 0) continue;
      if (std::find(trace_ids.begin(), trace_ids.end(), request.trace_id) ==
              trace_ids.end() &&
          trace_ids.size() < kMaxDistinctIds) {
        trace_ids.push_back(request.trace_id);
      }
    }
    if (trace_ids.empty()) {
      const std::uint64_t trace = obs::new_trace_id();
      stamped.assign(requests.begin(), requests.end());
      for (auto& request : stamped) request.trace_id = trace;
      reqs = stamped;
      trace_ids.push_back(trace);
    }
  }
  std::vector<obs::Span> spans;  // router-side spans, committed at the end
  Mutex spans_mutex;             // forwarding threads append concurrently

  std::vector<serve::PredictResponse> responses(reqs.size());
  std::vector<std::size_t> remaining(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) remaining[i] = i;

  const double hedge_delay = resolve_hedge_delay();

  std::size_t attempts = 0;
  {
    const MutexLock lock(mutex_);
    attempts = partitioner_.backend_count() + 1;
  }

  std::size_t round = 0;
  while (!remaining.empty() && attempts-- > 0) {
    const std::uint64_t round_start_ns = instrument ? obs::now_ns() : 0;

    // Shed requests whose deadline budget is already gone: forwarding them
    // would compute answers nobody reads (the engine would shed them at its
    // admission anyway — this saves the wire trip too).
    {
      const double elapsed_ms = watch.milliseconds();
      std::vector<std::size_t> alive_requests;
      alive_requests.reserve(remaining.size());
      std::uint64_t shed = 0;
      for (const std::size_t i : remaining) {
        if (reqs[i].deadline_ms > 0.0 && elapsed_ms >= reqs[i].deadline_ms) {
          deadline_shed_counter_->add();
          ++shed;
          responses[i].user_id = reqs[i].user_id;
          responses[i].ok = false;
          responses[i].rejected = true;
        } else {
          alive_requests.push_back(i);
        }
      }
      if (shed > 0 && instrument) {
        // One journal entry per BURST, not per request — sheds cluster
        // (a stall expires a whole round at once) and the counter above
        // already carries the exact total.
        events_.emit(obs::EventType::kDeadlineShed, "router",
                     std::to_string(shed) + " of " +
                         std::to_string(shed + alive_requests.size()) +
                         " requests past deadline in round " +
                         std::to_string(round),
                     trace_ids.empty() ? 0 : trace_ids.front());
      }
      remaining.swap(alive_requests);
      if (remaining.empty()) break;
    }

    // Group the outstanding requests by owning backend. std::map keys the
    // groups by address, so the fan-out order is deterministic.
    std::map<std::string, std::vector<std::size_t>> groups;
    {
      const MutexLock lock(mutex_);
      if (partitioner_.backend_count() == 0) break;
      for (const std::size_t i : remaining) {
        groups[partitioner_.owner_of(reqs[i].user_id)].push_back(i);
      }
    }

    std::vector<std::pair<std::string, std::vector<std::size_t>>> fan_out(
        groups.begin(), groups.end());
    std::vector<std::vector<std::size_t>> failed(fan_out.size());

    // One short-lived forwarding thread per owning backend. Deliberately
    // NOT ThreadPool::global(): these bodies BLOCK on socket I/O, which
    // would park compute workers the in-process engine path and attack
    // scoring share, and parallel_for serializes concurrent submissions —
    // two client threads in serve() would serialize their network waits.
    // Spawn cost (~tens of µs) is noise against a wire round trip.
    auto forward = [&](std::size_t g) {
      const auto& [address, indices] = fan_out[g];
      const auto backend = find_backend(address);
      if (backend == nullptr) {
        failed[g] = indices;
        return;
      }
      // Build the batch with DECREMENTED budgets: the engine's admission
      // check must see what is left after the router's own time, not the
      // caller's original allowance.
      std::vector<serve::PredictRequest> batch;
      batch.reserve(indices.size());
      double max_remaining_ms = 0.0;
      {
        const double elapsed_ms = watch.milliseconds();
        for (const std::size_t i : indices) {
          serve::PredictRequest request = reqs[i];
          if (request.deadline_ms > 0.0) {
            request.deadline_ms =
                std::max(0.001, request.deadline_ms - elapsed_ms);
            max_remaining_ms = std::max(max_remaining_ms, request.deadline_ms);
          }
          batch.push_back(std::move(request));
        }
      }
      // The exchange deadline: the configured timeout, tightened to the
      // batch's largest remaining budget (no point waiting for answers
      // whose readers have all given up).
      double timeout_ms = config_.request_timeout_ms;
      if (max_remaining_ms > 0.0) {
        timeout_ms = timeout_ms <= 0.0
                         ? max_remaining_ms
                         : std::min(timeout_ms, max_remaining_ms);
      }

      {
        auto& injector = fault::Injector::global();
        if (injector.active()) {
          injector.sleep_for(injector.decide("router.exchange", address));
        }
      }

      const std::uint64_t encode_start_ns = instrument ? obs::now_ns() : 0;
      const auto frame = encode_predict_batch(batch);
      const std::uint64_t sent_ns = instrument ? obs::now_ns() : 0;
      forwards_.fetch_add(1, std::memory_order_relaxed);

      // The primary exchange runs in its own thread so this (coordinator)
      // thread can fire a hedge when the reply is late. All race state
      // lives under one mutex; the cancel token lets the winner sever the
      // loser's socket.
      struct RaceState {
        Mutex mutex;
        std::condition_variable cv;
        bool primary_done PELICAN_GUARDED_BY(mutex) = false;
        bool primary_timeout PELICAN_GUARDED_BY(mutex) = false;
        bool primary_failed PELICAN_GUARDED_BY(mutex) = false;
        bool have_result PELICAN_GUARDED_BY(mutex) = false;
        bool hedge_won PELICAN_GUARDED_BY(mutex) = false;
        std::vector<serve::PredictResponse> result PELICAN_GUARDED_BY(mutex);
      } race;
      ExchangeCancel cancel;

      std::thread primary([&] {
        try {
          const auto reply = exchange(*backend, frame, timeout_ms, &cancel,
                                      /*clears_strikes=*/true);
          auto decoded = decode_predict_replies(reply);
          if (decoded.size() != indices.size()) {
            throw WireError("predict reply count mismatch from " + address);
          }
          const MutexLock lock(race.mutex);
          race.primary_done = true;
          if (!race.have_result) {
            race.have_result = true;
            race.result = std::move(decoded);
          }
        } catch (const WireTimeout&) {
          const MutexLock lock(race.mutex);
          race.primary_done = true;
          race.primary_timeout = true;
        } catch (const std::exception&) {
          const MutexLock lock(race.mutex);
          race.primary_done = true;
          race.primary_failed = true;
        }
        race.cv.notify_all();
      });

      // Wait for the primary up to the hedge delay (forever when hedging
      // is off — the exchange timeout still bounds the wait).
      bool primary_late = false;
      {
        MutexLock lock(race.mutex);
        if (hedge_delay >= 0.0) {
          const auto hedge_at =
              std::chrono::steady_clock::now() + millis(hedge_delay);
          while (!race.primary_done) {
            if (!lock.wait_until(race.cv, hedge_at)) break;  // delay elapsed
          }
        } else {
          while (!race.primary_done) lock.wait(race.cv);
        }
        primary_late = !race.primary_done;
      }

      // Hedge: the primary is late, the budget allows another duplicate,
      // and the fleet has a second choice.
      bool hedged = false;
      std::uint64_t hedge_start_ns = 0;
      if (primary_late && hedge_delay >= 0.0) {
        const std::uint64_t fired =
            hedges_fired_.load(std::memory_order_relaxed);
        const std::uint64_t total = forwards_.load(std::memory_order_relaxed);
        const bool budget_ok =
            static_cast<double>(fired + 1) <=
            config_.hedge_budget_fraction * static_cast<double>(total);
        const std::string target =
            budget_ok ? hedge_candidate(address) : std::string{};
        const auto target_backend =
            target.empty() ? nullptr : find_backend(target);
        if (target_backend != nullptr) {
          hedged = true;
          hedge_start_ns = obs::now_ns();
          hedges_fired_.fetch_add(1, std::memory_order_relaxed);
          hedges_counter_->add();
          try {
            // The hedge target may not hold these users yet: re-deploy
            // them from the ledger first. Deploys are idempotent, and the
            // target pulls the SAME (user, version) artifacts from the
            // shared store — which is why the hedged answer is
            // bit-identical to the primary's and taking whichever comes
            // first is sound.
            std::vector<std::uint32_t> users;
            for (const std::size_t i : indices) {
              if (std::find(users.begin(), users.end(), reqs[i].user_id) ==
                  users.end()) {
                users.push_back(reqs[i].user_id);
              }
            }
            for (const std::uint32_t user : users) {
              std::optional<Deployment> record;
              {
                const MutexLock lock(mutex_);
                const auto it = ledger_.find(user);
                if (it != ledger_.end()) record = it->second;
              }
              if (!record.has_value()) {
                throw WireError("hedge: user " + std::to_string(user) +
                                " not in ledger");
              }
              const Ack ack = decode_ack(exchange(
                  *target_backend,
                  encode_deploy({user, record->version, record->temperature,
                                 record->spec}),
                  config_.request_timeout_ms));
              if (!ack.ok) {
                throw WireError("hedge deploy refused: " + ack.message);
              }
            }
            const auto reply =
                exchange(*target_backend, frame, timeout_ms,
                         /*cancel=*/nullptr, /*clears_strikes=*/true);
            auto decoded = decode_predict_replies(reply);
            if (decoded.size() != indices.size()) {
              throw WireError("predict reply count mismatch from " + target);
            }
            bool winner = false;
            {
              const MutexLock lock(race.mutex);
              if (!race.have_result) {
                race.have_result = true;
                race.hedge_won = true;
                race.result = std::move(decoded);
                winner = true;
              }
            }
            if (winner) {
              hedge_wins_counter_->add();
              if (instrument) {
                events_.emit(obs::EventType::kHedgeWin, target,
                             "duplicate read beat " + address,
                             trace_ids.empty() ? 0 : trace_ids.front());
              }
              cancel.cancel();  // sever the straggling primary
            }
          } catch (const std::exception&) {
            // The hedge lost or failed; the primary (or the next retry
            // round) still owns this slice. Hedge failures never fail the
            // TARGET over — it was drafted in, not proven guilty.
          }
        }
      }

      // Wait out the primary — bounded by its exchange timeout, or by the
      // hedge winner severing its socket.
      {
        MutexLock lock(race.mutex);
        while (!race.primary_done) lock.wait(race.cv);
      }
      primary.join();

      bool have_result = false;
      bool hedge_won = false;
      bool primary_timeout = false;
      bool primary_failed = false;
      std::vector<serve::PredictResponse> result;
      {
        const MutexLock lock(race.mutex);
        have_result = race.have_result;
        hedge_won = race.hedge_won;
        primary_timeout = race.primary_timeout;
        primary_failed = race.primary_failed;
        result = std::move(race.result);
      }

      if (have_result) {
        for (std::size_t j = 0; j < indices.size(); ++j) {
          responses[indices[j]] = std::move(result[j]);
        }
      } else {
        failed[g] = indices;
      }

      if (instrument) {
        const std::uint64_t done_ns = obs::now_ns();
        const MutexLock lock(spans_mutex);
        spans.push_back({obs::Stage::kWireSerialize, encode_start_ns,
                         sent_ns - encode_start_ns});
        spans.push_back(
            {obs::Stage::kRouterFanout, sent_ns, done_ns - sent_ns});
        if (hedged) {
          spans.push_back(
              {obs::Stage::kHedge, hedge_start_ns, done_ns - hedge_start_ns});
        }
      }

      // Post-mortem on the primary path. A timeout (or losing the hedge
      // race) is the HUNG-engine signal: probe and maybe quarantine. A
      // transport error is the dead-engine signal — unless the error was
      // our own cancel().
      const std::uint64_t group_trace =
          trace_ids.empty() ? 0 : trace_ids.front();
      if (primary_timeout) {
        handle_backend_timeout(address, group_trace);
      } else if (primary_failed && !cancel.was_cancelled()) {
        handle_backend_failure(address, group_trace);
      } else if (hedge_won) {
        handle_backend_timeout(address, group_trace);
      }
    };
    if (fan_out.size() == 1) {
      forward(0);
    } else {
      std::vector<std::thread> threads;
      threads.reserve(fan_out.size());
      for (std::size_t g = 0; g < fan_out.size(); ++g) {
        threads.emplace_back(forward, g);
      }
      for (auto& thread : threads) thread.join();
    }

    remaining.clear();
    for (const auto& slice : failed) {
      remaining.insert(remaining.end(), slice.begin(), slice.end());
    }
    if (instrument && round > 0) {
      // Rounds past the first exist only because a backend failed: the
      // whole round is failover work, visible as its own span.
      spans.push_back({obs::Stage::kFailoverRetry, round_start_ns,
                       obs::now_ns() - round_start_ns});
    }
    if (!remaining.empty() && attempts > 0) {
      // Exponential backoff between retry rounds: the repartition already
      // happened synchronously, so this only paces a flapping fleet, never
      // the first failover.
      retry_rounds_counter_->add();
      const double backoff_ms =
          std::min(config_.retry_backoff_max_ms,
                   config_.retry_backoff_base_ms *
                       static_cast<double>(1ULL << std::min<std::size_t>(
                                               round, 10)));
      if (backoff_ms > 0.0 && round > 0) {
        std::this_thread::sleep_for(millis(backoff_ms));
      }
    }
    ++round;
  }

  // Requests that survived every retry round with no live owner.
  for (const std::size_t i : remaining) {
    serve::PredictResponse response;
    response.user_id = reqs[i].user_id;
    response.ok = false;
    response.rejected = true;
    responses[i] = response;
  }

  // Router-side accounting: end-to-end latency including wire + failover.
  // (Engine-side latency/batch stats live in fleet_stats().)
  const double latency_ms = watch.milliseconds();
  for (auto& response : responses) {
    response.latency_ms = latency_ms;
    if (response.ok) {
      stats_.record_request(latency_ms);
    } else if (response.rejected) {
      stats_.record_shed();
    } else {
      stats_.record_rejected();
    }
  }
  if (instrument && !spans.empty()) {
    for (const obs::Span& span : spans) {
      switch (span.stage) {
        case obs::Stage::kWireSerialize:
          wire_serialize_hist_->observe(span.duration_ms());
          break;
        case obs::Stage::kRouterFanout:
          fanout_hist_->observe(span.duration_ms());
          break;
        case obs::Stage::kFailoverRetry:
          failover_hist_->observe(span.duration_ms());
          break;
        case obs::Stage::kHedge:
          hedge_hist_->observe(span.duration_ms());
          break;
        default:
          break;
      }
    }
    for (const std::uint64_t id : trace_ids) {
      traces_.record(id, spans);
      traces_.finish(id, latency_ms);
    }
  }
  return responses;
}

serve::ServerStats::Snapshot Router::fleet_stats() {
  serve::ServerStats fleet;
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      fleet.merge(decode_stats_reply(
          exchange(*backend, encode_stats(), config_.request_timeout_ms)));
    } catch (const WireTimeout&) {
      handle_backend_timeout(address);
    } catch (const std::exception&) {
      handle_backend_failure(address);
    }
  }
  return fleet.snapshot();
}

Router::FleetMetrics Router::fleet_metrics() {
  FleetMetrics out;
  serve::ServerStats fleet;
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      EngineMetricsReport report = decode_metrics_reply(
          exchange(*backend, encode_metrics(), config_.request_timeout_ms));
      for (obs::TraceRecord& rec : report.traces) rec.source = address;
      fleet.merge(report.stats);
      obs::merge_state(out.registry, report.registry);
      out.traces.insert(out.traces.end(), report.traces.begin(),
                        report.traces.end());
      obs::merge_events(out.events, report.events, address);
      out.engines.emplace_back(address, std::move(report));
    } catch (const WireTimeout&) {
      handle_backend_timeout(address);
    } catch (const std::exception&) {
      handle_backend_failure(address);
    }
  }
  out.stats = fleet.snapshot();
  // The router's own side of the traces: its registry folds into the fleet
  // registry (same fixed buckets — still exact), and its journal records
  // join the pool tagged "router" so statsz can pair them with the engine
  // records sharing their trace ids.
  obs::merge_state(out.registry, metrics_.state());
  for (obs::TraceRecord rec : traces_.journal()) {
    rec.source = "router";
    out.traces.push_back(std::move(rec));
  }
  // The event journals interleave by wall clock (events carry unix_ms
  // exactly so cross-process ordering is meaningful).
  obs::merge_events(out.events, events_.snapshot(), "router");
  obs::sort_events(out.events);
  return out;
}

std::vector<std::pair<std::string, HealthReply>> Router::fleet_health() {
  std::vector<std::pair<std::string, HealthReply>> out;
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      out.emplace_back(address,
                       decode_health_reply(exchange(
                           *backend, encode_health(),
                           config_.request_timeout_ms)));
    } catch (const WireTimeout&) {
      handle_backend_timeout(address);
    } catch (const std::exception&) {
      handle_backend_failure(address);
    }
  }
  return out;
}

EngineMetricsReport Router::self_report() {
  EngineMetricsReport report;
  report.stats = stats_.state();
  report.registry = metrics_.state();
  report.traces = traces_.journal();
  report.events = events_.snapshot();
  return report;
}

void Router::drain_fleet() {
  for (const auto& address : live_backends()) {
    const auto backend = find_backend(address);
    if (backend == nullptr) continue;
    try {
      (void)decode_ack(
          exchange(*backend, encode_drain(), config_.drain_timeout_ms));
    } catch (const std::exception&) {
      // Bounded by drain_timeout_ms: a wedged engine is abandoned, not
      // waited on (the drain contract in wire.hpp).
    }
  }
  // Quarantined engines are processes too: offer them the same graceful
  // exit on a fresh connection (their pools are already torn down), still
  // bounded by the drain deadline.
  std::vector<std::shared_ptr<Backend>> quarantined;
  {
    const MutexLock lock(mutex_);
    for (const auto& [address, backend] : quarantined_) {
      quarantined.push_back(backend);
    }
  }
  for (const auto& backend : quarantined) {
    try {
      Socket socket = Socket::connect_to(backend->parsed);
      socket.set_io_timeout(config_.drain_timeout_ms);
      socket.send_frame(encode_drain());
      (void)decode_ack(socket.recv_frame());
    } catch (const std::exception&) {
    }
  }
  // The fleet is gone by contract; leave the router in a defined state.
  const MutexLock lock(mutex_);
  for (auto& [address, backend] : backends_) {
    backend->alive.store(false);
    (void)partitioner_.remove_backend(address);
    const MutexLock pool_lock(backend->pool_mutex);
    backend->open_connections -= backend->idle.size();
    backend->idle.clear();
    backend->pool_cv.notify_all();
  }
  backends_.clear();
  quarantined_.clear();
}

std::vector<std::string> Router::live_backends() const {
  std::vector<std::string> out;
  {
    const MutexLock lock(mutex_);
    out.reserve(backends_.size());
    for (const auto& [address, backend] : backends_) {
      if (backend->alive.load()) out.push_back(address);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Router::quarantined_backends() const {
  std::vector<std::string> out;
  {
    const MutexLock lock(mutex_);
    out.reserve(quarantined_.size());
    for (const auto& [address, backend] : quarantined_) {
      out.push_back(address);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Router::owner_of(std::uint32_t user) const {
  const MutexLock lock(mutex_);
  return partitioner_.owner_of(user);
}

std::size_t Router::deployed_users() const {
  const MutexLock lock(mutex_);
  return ledger_.size();
}

}  // namespace pelican::router
