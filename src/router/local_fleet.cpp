#include "router/local_fleet.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "router/socket.hpp"

namespace pelican::router {

std::string fleet_socket_address(const std::filesystem::path& root,
                                 std::size_t index) {
  // Built up in steps (gcc 12's -Wrestrict misfires on fused temporary
  // string concatenation).
  std::string name = "e";
  name += std::to_string(index);
  name += ".sock";
  std::string address = "unix:";
  address += (root / name).string();
  return address;
}

std::string LocalFleet::default_engined_path() {
  if (const char* env = std::getenv("PELICAN_ENGINED")) return env;
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const auto candidate =
        self.parent_path().parent_path() / "tools" / "pelican_engined";
    if (std::filesystem::exists(candidate)) return candidate.string();
  }
  return {};
}

LocalFleet::LocalFleet(LocalFleetConfig config) : config_(std::move(config)) {
  if (config_.engined_binary.empty()) {
    config_.engined_binary = default_engined_path();
  }
  if (config_.engined_binary.empty() ||
      !std::filesystem::exists(config_.engined_binary)) {
    throw std::runtime_error(
        "LocalFleet: pelican_engined not found (set PELICAN_ENGINED or "
        "build the tools/ targets)");
  }
  std::filesystem::create_directories(config_.root);
  std::filesystem::create_directories(store_root());

  for (std::size_t i = 0; i < config_.processes; ++i) {
    const std::string address = fleet_socket_address(config_.root, i);
    std::vector<std::string> args = {config_.engined_binary,
                                     "--listen",
                                     address,
                                     "--store",
                                     store_root().string(),
                                     "--scope",
                                     config_.scope};
    args.insert(args.end(), config_.extra_args.begin(),
                config_.extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      ::_exit(127);  // exec failed; the parent's readiness wait times out
    }
    if (pid < 0) {
      // Partial bring-up: the destructor will not run after a throwing
      // constructor, so reap the engines spawned so far here.
      for (std::size_t spawned = 0; spawned < pids_.size(); ++spawned) {
        kill(spawned);
      }
      throw std::runtime_error("LocalFleet: fork failed");
    }
    pids_.push_back(pid);
    addresses_.push_back(address);
  }

  for (const auto& address : addresses_) {
    if (!wait_connectable(parse_address(address),
                          std::chrono::seconds(10))) {
      // Partial bring-up: tear down what exists before reporting.
      for (std::size_t i = 0; i < pids_.size(); ++i) kill(i);
      throw std::runtime_error("LocalFleet: engine did not come up on " +
                               address);
    }
  }
}

LocalFleet::~LocalFleet() {
  for (std::size_t i = 0; i < pids_.size(); ++i) kill(i);
}

void LocalFleet::kill(std::size_t index) {
  pid_t& pid = pids_.at(index);
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  int status = 0;
  (void)::waitpid(pid, &status, 0);
  pid = -1;
}

int LocalFleet::reap(std::size_t index) {
  pid_t& pid = pids_.at(index);
  if (pid <= 0) return 0;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  pid = -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

}  // namespace pelican::router
