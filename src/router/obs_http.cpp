#include "router/obs_http.hpp"

#include <exception>
#include <utility>

namespace pelican::router {

ObsHttpServer::ObsHttpServer(const std::string& listen_address,
                             Handler handler)
    : handler_(std::move(handler)),
      listener_(ListenSocket::bind_to(parse_address(listen_address))) {}

ObsHttpServer::~ObsHttpServer() { stop(); }

void ObsHttpServer::start() {
  if (started_.exchange(true)) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ObsHttpServer::stop() {
  if (stopping_.exchange(true)) {
    return;  // concurrent/repeated stop: the first caller owns the joins
  }
  // Join the acceptor BEFORE closing the listener — closing first would
  // write fd_ while the acceptor reads it in poll()/accept() (see
  // EngineWorker::stop for the full rationale).
  if (acceptor_.joinable()) acceptor_.join();
  listener_.close();
  {
    const MutexLock lock(connections_mutex_);
    for (const auto& connection : connections_) {
      connection->socket.shutdown_both();
    }
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const MutexLock lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void ObsHttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    if (!listener_.wait_readable(/*timeout_ms=*/50)) continue;
    Socket socket;
    try {
      socket = listener_.accept();
    } catch (const WireError&) {
      continue;  // raced with stop(); the loop condition decides
    }
    const MutexLock lock(connections_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) break;
    reap_finished_connections();
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection* handle = connection.get();  // stable behind the unique_ptr
    connections_.push_back(std::move(connection));
    handle->thread = std::thread([this, handle] { serve_connection(handle); });
  }
}

void ObsHttpServer::reap_finished_connections() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done) return false;
    if (conn->thread.joinable()) conn->thread.join();
    return true;
  });
}

void ObsHttpServer::serve_connection(Connection* connection) {
  // Scrapers can stall too: bound the read so a half-open client cannot
  // pin a handler thread past stop()'s shutdown_both.
  connection->socket.set_io_timeout(5000.0);
  obs::HttpResponse response;
  bool respond = true;
  try {
    std::string head;
    char buffer[2048];
    while (!obs::http_head_complete(head)) {
      if (head.size() > obs::kMaxHttpHeadBytes) break;
      const std::size_t got =
          connection->socket.recv_some(buffer, sizeof(buffer));
      if (got == 0) break;  // EOF before a full head
      head.append(buffer, got);
    }
    if (!obs::http_head_complete(head)) {
      respond = !head.empty();
      response.status = head.size() > obs::kMaxHttpHeadBytes ? 431 : 400;
      response.body = "incomplete or oversized request head\n";
    } else if (auto request = obs::parse_http_request(head)) {
      requests_.fetch_add(1, std::memory_order_relaxed);
      try {
        response = handler_(*request);
      } catch (const std::exception& error) {
        response = obs::HttpResponse{500, "text/plain; charset=utf-8",
                                     std::string(error.what()) + "\n"};
      }
    } else {
      response.status = 400;
      response.body = "malformed request line\n";
    }
    if (respond) {
      connection->socket.send_bytes(obs::render_http_response(response));
    }
  } catch (const WireError&) {
    // Peer vanished or stop() severed us; nothing to answer.
  }
  connection->socket.shutdown_both();
  const MutexLock lock(connections_mutex_);
  connection->done = true;
}

}  // namespace pelican::router
