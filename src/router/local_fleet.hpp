// LocalFleet: spawn-and-supervise for a same-host fleet of pelican_engined
// processes — the bootstrap used by bench/router_throughput and
// examples/serving_cluster (tests keep their own fork helpers so they can
// exercise crash paths directly).
//
// The fleet lives under one root directory: Unix socket e<i>.sock per
// process plus the fleet-shared filesystem model store in store/. Spawning
// is fork+exec of the pelican_engined binary — resolved from
// $PELICAN_ENGINED or as the ../tools sibling of the calling binary — and
// the constructor blocks until every process accepts connections. The
// destructor SIGKILLs whatever was not drained/reaped, so a crashing bench
// never leaks daemons.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace pelican::router {

/// "unix:<root>/e<index>.sock" — the fleet's socket naming scheme, shared
/// with the router tests so spawned-by-hand engines and LocalFleet agree.
[[nodiscard]] std::string fleet_socket_address(
    const std::filesystem::path& root, std::size_t index);

struct LocalFleetConfig {
  /// Sockets and the shared store live here; created if absent.
  std::filesystem::path root;
  std::size_t processes = 2;
  /// Store scope the engines resolve deploy/publish keys against.
  std::string scope = "personal";
  /// pelican_engined binary; empty resolves via default_engined_path().
  std::string engined_binary;
  /// Extra argv entries appended to every engine's command line (e.g.
  /// {"--max-batch", "64"}).
  std::vector<std::string> extra_args;
};

class LocalFleet {
 public:
  /// $PELICAN_ENGINED if set, else the ../tools/pelican_engined sibling of
  /// the calling binary (/proc/self/exe), else empty (not found).
  [[nodiscard]] static std::string default_engined_path();

  /// Spawns the fleet and waits until every process accepts connections.
  /// Throws std::runtime_error when the binary cannot be found or a
  /// process does not come up (everything spawned so far is killed).
  explicit LocalFleet(LocalFleetConfig config);

  /// SIGKILLs and reaps every process not already reaped.
  ~LocalFleet();

  LocalFleet(const LocalFleet&) = delete;
  LocalFleet& operator=(const LocalFleet&) = delete;

  /// Wire addresses, one per process, in spawn order.
  [[nodiscard]] const std::vector<std::string>& addresses() const noexcept {
    return addresses_;
  }
  /// Root of the fleet-shared filesystem model store.
  [[nodiscard]] std::filesystem::path store_root() const {
    return config_.root / "store";
  }
  [[nodiscard]] std::size_t size() const noexcept { return pids_.size(); }
  [[nodiscard]] pid_t pid(std::size_t index) const { return pids_.at(index); }

  /// SIGKILL + reap of one process (a crash, from the router's point of
  /// view). No-op when already reaped.
  void kill(std::size_t index);

  /// Blocking reap of one process (after a drain); returns its exit code,
  /// -1 on abnormal exit, or 0 when already reaped.
  int reap(std::size_t index);

 private:
  LocalFleetConfig config_;
  std::vector<std::string> addresses_;
  std::vector<pid_t> pids_;  ///< -1 once reaped
};

}  // namespace pelican::router
