// EngineWorker: one serving-engine PROCESS of a routed fleet.
//
// Wraps the single-process serving engine (DeploymentRegistry +
// BatchScheduler) behind the wire protocol on a Unix/TCP listen socket, so
// N of these processes behind a Router scale the registry past one
// machine. Models never cross the wire: every worker mounts the same
// store::FilesystemBackend root, and deploy/publish commands carry only
// (user, version) keys — the worker pulls the artifact from the shared
// store, exactly as the single-process engine's publish() does. That
// preserves PR 3's stall-free update contract end-to-end: a routed publish
// lands on the owning process as a local DeploymentRegistry::publish,
// which builds the replacement off-lock and installs it by pointer swap.
//
// Concurrency model: a poll()-based accept loop hands each accepted
// connection to its own handler thread (connections are the Router's
// pooled, strictly request/reply channels — a handful per fleet, not
// thousands). Handler threads decode a frame, execute it against the
// engine, and reply; predict batches run through BatchScheduler::serve,
// which fans the coalesced per-user chunks across ThreadPool::global(). So
// the per-connection thread is a framing loop, and the parallelism that
// matters stays in the engine.
//
// In-process use: tests (and the serving_cluster example) run EngineWorker
// instances inside one process to exercise the full wire path without
// fork/exec; tools/pelican_engined.cpp is the production entry that runs
// exactly one worker per process.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "router/socket.hpp"
#include "serve/registry.hpp"
#include "serve/scheduler.hpp"
#include "store/model_store.hpp"

namespace pelican::router {

struct EngineConfig {
  /// Listen address ("unix:/path" or "tcp:host:port").
  std::string listen;
  /// Root of the fleet-shared FilesystemBackend model store.
  std::filesystem::path store_root;
  /// Store scope deploy/publish keys resolve against.
  std::string scope = "personal";
  std::size_t registry_shards = 16;
  serve::SchedulerConfig scheduler = {};
};

class EngineWorker {
 public:
  /// Binds the listen socket (throws WireError/invalid_argument on a bad
  /// or busy address) but does not accept yet — call start().
  explicit EngineWorker(EngineConfig config);

  /// Stops and joins everything (as stop()).
  ~EngineWorker();

  EngineWorker(const EngineWorker&) = delete;
  EngineWorker& operator=(const EngineWorker&) = delete;

  /// Starts the accept loop. Idempotent.
  void start();

  /// Blocks until the worker is draining (a kDrain frame arrived or stop()
  /// was called), then tears everything down. The engined main is
  /// `worker.start(); worker.wait();`.
  void wait();

  /// Stops accepting, wakes every connection handler with a socket
  /// shutdown, and joins all threads. Idempotent, callable from any thread
  /// except a connection handler.
  void stop();

  [[nodiscard]] const Address& address() const noexcept {
    return listener_.address();
  }
  [[nodiscard]] bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] serve::DeploymentRegistry& registry() noexcept {
    return registry_;
  }
  [[nodiscard]] serve::BatchScheduler& scheduler() noexcept {
    return *scheduler_;
  }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(Connection* connection);
  /// Joins and erases connections that marked themselves done (bounds the
  /// daemon's thread/Connection footprint).
  void reap_finished_connections() PELICAN_REQUIRES(connections_mutex_);

  /// Executes one decoded request frame, returning the reply frame. Never
  /// throws: engine-level failures become kAck{ok=false, message}.
  [[nodiscard]] std::vector<std::uint8_t> handle_frame(
      std::span<const std::uint8_t> frame);

  EngineConfig config_;
  std::shared_ptr<store::ModelStore> store_;
  serve::DeploymentRegistry registry_;
  std::unique_ptr<serve::BatchScheduler> scheduler_;

  ListenSocket listener_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  /// wait()/stop() handshake only — guards no member (the predicate reads
  /// the atomics above); it exists to close the lost-wakeup window.
  Mutex wait_mutex_;
  std::condition_variable wait_cv_;

  struct Connection {
    Socket socket;
    std::thread thread;
    /// Written by the handler as its final locked action, read by the
    /// reaper — both under connections_mutex_ (inexpressible as a
    /// guarded_by: nested structs cannot name the enclosing mutex).
    bool done = false;
  };
  Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      PELICAN_GUARDED_BY(connections_mutex_);
};

}  // namespace pelican::router
