#include "router/wire.hpp"

#include "common/serialize.hpp"

namespace pelican::router {

namespace {

void write_window(BufferWriter& writer, const mobility::Window& window) {
  for (const auto& step : window.steps) {
    writer.write_u8(step.entry_bin);
    writer.write_u8(step.duration_bin);
    writer.write_u8(step.day_of_week);
    writer.write_u16(step.location);
  }
  writer.write_u16(window.next_location);
  writer.write_i64(window.start_minute);
}

mobility::Window read_window(BufferReader& reader) {
  mobility::Window window;
  for (auto& step : window.steps) {
    step.entry_bin = reader.read_u8();
    step.duration_bin = reader.read_u8();
    step.day_of_week = reader.read_u8();
    step.location = reader.read_u16();
  }
  window.next_location = reader.read_u16();
  window.start_minute = reader.read_i64();
  return window;
}

BufferWriter begin_frame(Verb verb) {
  BufferWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(verb));
  return writer;
}

/// Validates the verb byte and returns a reader positioned at the body.
BufferReader begin_decode(std::span<const std::uint8_t> frame,
                          Verb expected) {
  const Verb verb = frame_verb(frame);
  if (verb != expected) {
    throw SerializeError(std::string("wire: expected ") + to_string(expected) +
                         " frame, got " + to_string(verb));
  }
  BufferReader reader(frame);
  (void)reader.read_u8();  // consume the verb byte
  return reader;
}

/// A decoded frame must consume its body exactly: trailing bytes mean the
/// peers disagree about the message layout, which must never pass silently.
void finish_decode(const BufferReader& reader, Verb verb) {
  if (reader.remaining() != 0) {
    throw SerializeError(std::string("wire: ") + to_string(verb) + " frame has " +
                         std::to_string(reader.remaining()) +
                         " trailing bytes");
  }
}

}  // namespace

Verb frame_verb(std::span<const std::uint8_t> frame) {
  if (frame.empty()) throw SerializeError("wire: empty frame");
  const std::uint8_t byte = frame.front();
  switch (static_cast<Verb>(byte)) {
    case Verb::kPredictBatch:
    case Verb::kDeploy:
    case Verb::kPublish:
    case Verb::kHealth:
    case Verb::kStats:
    case Verb::kDrain:
    case Verb::kPredictReplies:
    case Verb::kAck:
    case Verb::kHealthReply:
    case Verb::kStatsReply:
      return static_cast<Verb>(byte);
  }
  throw SerializeError("wire: unknown verb byte " + std::to_string(byte));
}

std::vector<std::uint8_t> encode_predict_batch(
    std::span<const serve::PredictRequest> requests) {
  BufferWriter writer = begin_frame(Verb::kPredictBatch);
  writer.write_u64(requests.size());
  for (const auto& request : requests) {
    writer.write_u32(request.user_id);
    writer.write_u64(request.k);
    write_window(writer, request.window);
  }
  return writer.take();
}

std::vector<serve::PredictRequest> decode_predict_batch(
    std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kPredictBatch);
  const std::uint64_t count = reader.read_u64();
  if (count > reader.remaining()) {  // every item is > 1 byte
    throw SerializeError("wire: predict batch count exceeds frame size");
  }
  std::vector<serve::PredictRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    serve::PredictRequest request;
    request.user_id = reader.read_u32();
    request.k = static_cast<std::size_t>(reader.read_u64());
    request.window = read_window(reader);
    requests.push_back(request);
  }
  finish_decode(reader, Verb::kPredictBatch);
  return requests;
}

std::vector<std::uint8_t> encode_predict_replies(
    std::span<const serve::PredictResponse> responses) {
  BufferWriter writer = begin_frame(Verb::kPredictReplies);
  writer.write_u64(responses.size());
  for (const auto& response : responses) {
    writer.write_u32(response.user_id);
    writer.write_u8(response.ok ? 1 : 0);
    writer.write_u8(response.rejected ? 1 : 0);
    writer.write_u32(response.model_version);
    writer.write_u16_span(response.locations);
    writer.write_f64(response.latency_ms);
  }
  return writer.take();
}

std::vector<serve::PredictResponse> decode_predict_replies(
    std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kPredictReplies);
  const std::uint64_t count = reader.read_u64();
  if (count > reader.remaining()) {  // every item is > 1 byte
    throw SerializeError("wire: predict reply count exceeds frame size");
  }
  std::vector<serve::PredictResponse> responses;
  responses.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    serve::PredictResponse response;
    response.user_id = reader.read_u32();
    response.ok = reader.read_u8() != 0;
    response.rejected = reader.read_u8() != 0;
    response.model_version = reader.read_u32();
    response.locations = reader.read_u16_vector();
    response.latency_ms = reader.read_f64();
    responses.push_back(std::move(response));
  }
  finish_decode(reader, Verb::kPredictReplies);
  return responses;
}

std::vector<std::uint8_t> encode_deploy(const DeployCommand& command) {
  BufferWriter writer = begin_frame(Verb::kDeploy);
  writer.write_u32(command.user_id);
  writer.write_u32(command.version);
  writer.write_f64(command.temperature);
  writer.write_u8(static_cast<std::uint8_t>(command.spec.level));
  writer.write_u64(command.spec.num_locations);
  return writer.take();
}

DeployCommand decode_deploy(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kDeploy);
  DeployCommand command;
  command.user_id = reader.read_u32();
  command.version = reader.read_u32();
  command.temperature = reader.read_f64();
  const std::uint8_t level = reader.read_u8();
  if (level > static_cast<std::uint8_t>(mobility::SpatialLevel::kAp)) {
    throw SerializeError("wire: bad spatial level " + std::to_string(level));
  }
  command.spec.level = static_cast<mobility::SpatialLevel>(level);
  command.spec.num_locations =
      static_cast<std::size_t>(reader.read_u64());
  finish_decode(reader, Verb::kDeploy);
  return command;
}

std::vector<std::uint8_t> encode_publish(const PublishCommand& command) {
  BufferWriter writer = begin_frame(Verb::kPublish);
  writer.write_u32(command.user_id);
  writer.write_u32(command.version);
  return writer.take();
}

PublishCommand decode_publish(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kPublish);
  PublishCommand command;
  command.user_id = reader.read_u32();
  command.version = reader.read_u32();
  finish_decode(reader, Verb::kPublish);
  return command;
}

std::vector<std::uint8_t> encode_health() {
  return begin_frame(Verb::kHealth).take();
}

std::vector<std::uint8_t> encode_stats() {
  return begin_frame(Verb::kStats).take();
}

std::vector<std::uint8_t> encode_drain() {
  return begin_frame(Verb::kDrain).take();
}

std::vector<std::uint8_t> encode_ack(const Ack& ack) {
  BufferWriter writer = begin_frame(Verb::kAck);
  writer.write_u8(ack.ok ? 1 : 0);
  writer.write_string(ack.message);
  return writer.take();
}

Ack decode_ack(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kAck);
  Ack ack;
  ack.ok = reader.read_u8() != 0;
  ack.message = reader.read_string();
  finish_decode(reader, Verb::kAck);
  return ack;
}

std::vector<std::uint8_t> encode_health_reply(const HealthReply& reply) {
  BufferWriter writer = begin_frame(Verb::kHealthReply);
  writer.write_u64(reply.deployments);
  writer.write_u8(reply.draining ? 1 : 0);
  return writer.take();
}

HealthReply decode_health_reply(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kHealthReply);
  HealthReply reply;
  reply.deployments = reader.read_u64();
  reply.draining = reader.read_u8() != 0;
  finish_decode(reader, Verb::kHealthReply);
  return reply;
}

std::vector<std::uint8_t> encode_stats_reply(
    const serve::ServerStats::State& state) {
  BufferWriter writer = begin_frame(Verb::kStatsReply);
  writer.write_u64(state.requests);
  writer.write_u64(state.rejected);
  writer.write_u64(state.shed);
  writer.write_u64(state.peak_queue_depth);
  writer.write_u64(state.batches);
  writer.write_u64(state.batch_rows);
  writer.write_u64(state.max_batch);
  std::vector<std::uint64_t> hist(state.batch_hist.begin(),
                                  state.batch_hist.end());
  writer.write_u64_span(hist);
  writer.write_f64(state.forward_seconds);
  writer.write_f64_span(state.latencies_ms);
  return writer.take();
}

serve::ServerStats::State decode_stats_reply(
    std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kStatsReply);
  serve::ServerStats::State state;
  state.requests = static_cast<std::size_t>(reader.read_u64());
  state.rejected = static_cast<std::size_t>(reader.read_u64());
  state.shed = static_cast<std::size_t>(reader.read_u64());
  state.peak_queue_depth = static_cast<std::size_t>(reader.read_u64());
  state.batches = static_cast<std::size_t>(reader.read_u64());
  state.batch_rows = static_cast<std::size_t>(reader.read_u64());
  state.max_batch = static_cast<std::size_t>(reader.read_u64());
  const auto hist = reader.read_u64_vector();
  state.batch_hist.assign(hist.begin(), hist.end());
  state.forward_seconds = reader.read_f64();
  state.latencies_ms = reader.read_f64_vector();
  finish_decode(reader, Verb::kStatsReply);
  return state;
}

}  // namespace pelican::router
