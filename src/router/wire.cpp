#include "router/wire.hpp"

#include "common/serialize.hpp"

namespace pelican::router {

namespace {

void write_window(BufferWriter& writer, const mobility::Window& window) {
  for (const auto& step : window.steps) {
    writer.write_u8(step.entry_bin);
    writer.write_u8(step.duration_bin);
    writer.write_u8(step.day_of_week);
    writer.write_u16(step.location);
  }
  writer.write_u16(window.next_location);
  writer.write_i64(window.start_minute);
}

mobility::Window read_window(BufferReader& reader) {
  mobility::Window window;
  for (auto& step : window.steps) {
    step.entry_bin = reader.read_u8();
    step.duration_bin = reader.read_u8();
    step.day_of_week = reader.read_u8();
    step.location = reader.read_u16();
  }
  window.next_location = reader.read_u16();
  window.start_minute = reader.read_i64();
  return window;
}

BufferWriter begin_frame(Verb verb) {
  BufferWriter writer;
  writer.write_u8(static_cast<std::uint8_t>(verb));
  return writer;
}

/// Validates the verb byte and returns a reader positioned at the body.
BufferReader begin_decode(std::span<const std::uint8_t> frame,
                          Verb expected) {
  const Verb verb = frame_verb(frame);
  if (verb != expected) {
    throw SerializeError(std::string("wire: expected ") + to_string(expected) +
                         " frame, got " + to_string(verb));
  }
  BufferReader reader(frame);
  (void)reader.read_u8();  // consume the verb byte
  return reader;
}

/// A decoded frame must consume its body exactly: trailing bytes mean the
/// peers disagree about the message layout, which must never pass silently.
void finish_decode(const BufferReader& reader, Verb verb) {
  if (reader.remaining() != 0) {
    throw SerializeError(std::string("wire: ") + to_string(verb) + " frame has " +
                         std::to_string(reader.remaining()) +
                         " trailing bytes");
  }
}

/// Versioned frames fail loudly on a layout mismatch (see wire.hpp).
void check_frame_version(BufferReader& reader, Verb verb,
                         std::uint8_t expected) {
  const std::uint8_t got = reader.read_u8();
  if (got != expected) {
    throw SerializeError(std::string("wire: ") + to_string(verb) +
                         " frame version " + std::to_string(got) +
                         ", this build speaks " + std::to_string(expected));
  }
}

void write_histogram_state(BufferWriter& writer,
                           const obs::HistogramState& state) {
  writer.write_u64(state.count);
  writer.write_u64(state.invalid);
  writer.write_f64(state.sum);
  writer.write_f64(state.max);
  writer.write_u64_span(state.buckets);
}

obs::HistogramState read_histogram_state(BufferReader& reader) {
  obs::HistogramState state;
  state.count = reader.read_u64();
  state.invalid = reader.read_u64();
  state.sum = reader.read_f64();
  state.max = reader.read_f64();
  state.buckets = reader.read_u64_vector();
  if (!state.buckets.empty() &&
      state.buckets.size() != obs::Histogram::kNumBuckets) {
    throw SerializeError("wire: histogram bucket count " +
                         std::to_string(state.buckets.size()) +
                         " does not match this build's layout");
  }
  return state;
}

void write_registry_state(BufferWriter& writer,
                          const obs::RegistryState& state) {
  writer.write_u64(state.counters.size());
  for (const auto& [name, value] : state.counters) {
    writer.write_string(name);
    writer.write_u64(value);
  }
  writer.write_u64(state.histograms.size());
  for (const auto& [name, hist] : state.histograms) {
    writer.write_string(name);
    write_histogram_state(writer, hist);
  }
}

obs::RegistryState read_registry_state(BufferReader& reader) {
  obs::RegistryState state;
  const std::uint64_t counters = reader.read_u64();
  if (counters > reader.remaining()) {
    throw SerializeError("wire: registry counter count exceeds frame size");
  }
  state.counters.reserve(static_cast<std::size_t>(counters));
  for (std::uint64_t i = 0; i < counters; ++i) {
    std::string name = reader.read_string();
    const std::uint64_t value = reader.read_u64();
    state.counters.emplace_back(std::move(name), value);
  }
  const std::uint64_t histograms = reader.read_u64();
  if (histograms > reader.remaining()) {
    throw SerializeError("wire: registry histogram count exceeds frame size");
  }
  state.histograms.reserve(static_cast<std::size_t>(histograms));
  for (std::uint64_t i = 0; i < histograms; ++i) {
    std::string name = reader.read_string();
    obs::HistogramState hist = read_histogram_state(reader);
    state.histograms.emplace_back(std::move(name), std::move(hist));
  }
  return state;
}

void write_event(BufferWriter& writer, const obs::Event& event) {
  writer.write_u64(event.seq);
  writer.write_u64(event.unix_ms);
  writer.write_u8(static_cast<std::uint8_t>(event.type));
  writer.write_u64(event.trace_id);
  writer.write_string(event.subject);
  writer.write_string(event.detail);
  writer.write_string(event.source);
}

obs::Event read_event(BufferReader& reader) {
  obs::Event event;
  event.seq = reader.read_u64();
  event.unix_ms = reader.read_u64();
  const std::uint8_t type = reader.read_u8();
  if (type >= obs::kEventTypeCount) {
    throw SerializeError("wire: event type " + std::to_string(type) +
                         " outside this build's taxonomy");
  }
  event.type = static_cast<obs::EventType>(type);
  event.trace_id = reader.read_u64();
  event.subject = reader.read_string();
  event.detail = reader.read_string();
  event.source = reader.read_string();
  return event;
}

void write_trace_record(BufferWriter& writer, const obs::TraceRecord& rec) {
  writer.write_u64(rec.trace_id);
  writer.write_f64(rec.total_ms);
  writer.write_string(rec.source);
  writer.write_u64(rec.spans.size());
  for (const obs::Span& span : rec.spans) {
    writer.write_u8(static_cast<std::uint8_t>(span.stage));
    writer.write_u64(span.start_ns);
    writer.write_u64(span.duration_ns);
  }
}

obs::TraceRecord read_trace_record(BufferReader& reader) {
  obs::TraceRecord rec;
  rec.trace_id = reader.read_u64();
  rec.total_ms = reader.read_f64();
  rec.source = reader.read_string();
  const std::uint64_t spans = reader.read_u64();
  if (spans > reader.remaining()) {
    throw SerializeError("wire: trace span count exceeds frame size");
  }
  rec.spans.reserve(static_cast<std::size_t>(spans));
  for (std::uint64_t i = 0; i < spans; ++i) {
    obs::Span span;
    const std::uint8_t stage = reader.read_u8();
    if (stage >= obs::kStageCount) {
      throw SerializeError("wire: bad trace stage byte " +
                           std::to_string(stage));
    }
    span.stage = static_cast<obs::Stage>(stage);
    span.start_ns = reader.read_u64();
    span.duration_ns = reader.read_u64();
    rec.spans.push_back(span);
  }
  return rec;
}

}  // namespace

Verb frame_verb(std::span<const std::uint8_t> frame) {
  if (frame.empty()) throw SerializeError("wire: empty frame");
  const std::uint8_t byte = frame.front();
  switch (static_cast<Verb>(byte)) {
    case Verb::kPredictBatch:
    case Verb::kDeploy:
    case Verb::kPublish:
    case Verb::kHealth:
    case Verb::kStats:
    case Verb::kDrain:
    case Verb::kMetrics:
    case Verb::kPredictReplies:
    case Verb::kAck:
    case Verb::kHealthReply:
    case Verb::kStatsReply:
    case Verb::kMetricsReply:
      return static_cast<Verb>(byte);
  }
  throw SerializeError("wire: unknown verb byte " + std::to_string(byte));
}

std::vector<std::uint8_t> encode_predict_batch(
    std::span<const serve::PredictRequest> requests) {
  BufferWriter writer = begin_frame(Verb::kPredictBatch);
  writer.write_u8(kPredictFrameVersion);
  writer.write_u64(requests.size());
  for (const auto& request : requests) {
    writer.write_u32(request.user_id);
    writer.write_u64(request.k);
    writer.write_u64(request.trace_id);
    writer.write_f64(request.deadline_ms);
    write_window(writer, request.window);
  }
  return writer.take();
}

std::vector<serve::PredictRequest> decode_predict_batch(
    std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kPredictBatch);
  check_frame_version(reader, Verb::kPredictBatch, kPredictFrameVersion);
  const std::uint64_t count = reader.read_u64();
  if (count > reader.remaining()) {  // every item is > 1 byte
    throw SerializeError("wire: predict batch count exceeds frame size");
  }
  std::vector<serve::PredictRequest> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    serve::PredictRequest request;
    request.user_id = reader.read_u32();
    request.k = static_cast<std::size_t>(reader.read_u64());
    request.trace_id = reader.read_u64();
    request.deadline_ms = reader.read_f64();
    request.window = read_window(reader);
    requests.push_back(request);
  }
  finish_decode(reader, Verb::kPredictBatch);
  return requests;
}

std::vector<std::uint8_t> encode_predict_replies(
    std::span<const serve::PredictResponse> responses) {
  BufferWriter writer = begin_frame(Verb::kPredictReplies);
  writer.write_u64(responses.size());
  for (const auto& response : responses) {
    writer.write_u32(response.user_id);
    writer.write_u8(response.ok ? 1 : 0);
    writer.write_u8(response.rejected ? 1 : 0);
    writer.write_u32(response.model_version);
    writer.write_u16_span(response.locations);
    writer.write_f64(response.latency_ms);
  }
  return writer.take();
}

std::vector<serve::PredictResponse> decode_predict_replies(
    std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kPredictReplies);
  const std::uint64_t count = reader.read_u64();
  if (count > reader.remaining()) {  // every item is > 1 byte
    throw SerializeError("wire: predict reply count exceeds frame size");
  }
  std::vector<serve::PredictResponse> responses;
  responses.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    serve::PredictResponse response;
    response.user_id = reader.read_u32();
    response.ok = reader.read_u8() != 0;
    response.rejected = reader.read_u8() != 0;
    response.model_version = reader.read_u32();
    response.locations = reader.read_u16_vector();
    response.latency_ms = reader.read_f64();
    responses.push_back(std::move(response));
  }
  finish_decode(reader, Verb::kPredictReplies);
  return responses;
}

std::vector<std::uint8_t> encode_deploy(const DeployCommand& command) {
  BufferWriter writer = begin_frame(Verb::kDeploy);
  writer.write_u32(command.user_id);
  writer.write_u32(command.version);
  writer.write_f64(command.temperature);
  writer.write_u8(static_cast<std::uint8_t>(command.spec.level));
  writer.write_u64(command.spec.num_locations);
  return writer.take();
}

DeployCommand decode_deploy(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kDeploy);
  DeployCommand command;
  command.user_id = reader.read_u32();
  command.version = reader.read_u32();
  command.temperature = reader.read_f64();
  const std::uint8_t level = reader.read_u8();
  if (level > static_cast<std::uint8_t>(mobility::SpatialLevel::kAp)) {
    throw SerializeError("wire: bad spatial level " + std::to_string(level));
  }
  command.spec.level = static_cast<mobility::SpatialLevel>(level);
  command.spec.num_locations =
      static_cast<std::size_t>(reader.read_u64());
  finish_decode(reader, Verb::kDeploy);
  return command;
}

std::vector<std::uint8_t> encode_publish(const PublishCommand& command) {
  BufferWriter writer = begin_frame(Verb::kPublish);
  writer.write_u32(command.user_id);
  writer.write_u32(command.version);
  return writer.take();
}

PublishCommand decode_publish(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kPublish);
  PublishCommand command;
  command.user_id = reader.read_u32();
  command.version = reader.read_u32();
  finish_decode(reader, Verb::kPublish);
  return command;
}

std::vector<std::uint8_t> encode_health() {
  return begin_frame(Verb::kHealth).take();
}

std::vector<std::uint8_t> encode_stats() {
  return begin_frame(Verb::kStats).take();
}

std::vector<std::uint8_t> encode_metrics() {
  return begin_frame(Verb::kMetrics).take();
}

std::vector<std::uint8_t> encode_drain() {
  return begin_frame(Verb::kDrain).take();
}

std::vector<std::uint8_t> encode_ack(const Ack& ack) {
  BufferWriter writer = begin_frame(Verb::kAck);
  writer.write_u8(ack.ok ? 1 : 0);
  writer.write_string(ack.message);
  return writer.take();
}

Ack decode_ack(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kAck);
  Ack ack;
  ack.ok = reader.read_u8() != 0;
  ack.message = reader.read_string();
  finish_decode(reader, Verb::kAck);
  return ack;
}

std::vector<std::uint8_t> encode_health_reply(const HealthReply& reply) {
  BufferWriter writer = begin_frame(Verb::kHealthReply);
  writer.write_u64(reply.deployments);
  writer.write_u8(reply.draining ? 1 : 0);
  return writer.take();
}

HealthReply decode_health_reply(std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kHealthReply);
  HealthReply reply;
  reply.deployments = reader.read_u64();
  reply.draining = reader.read_u8() != 0;
  finish_decode(reader, Verb::kHealthReply);
  return reply;
}

namespace {

void write_stats_state(BufferWriter& writer,
                       const serve::ServerStats::State& state) {
  writer.write_u64(state.requests);
  writer.write_u64(state.rejected);
  writer.write_u64(state.shed);
  writer.write_u64(state.peak_queue_depth);
  writer.write_u64(state.batches);
  writer.write_u64(state.batch_rows);
  writer.write_u64(state.max_batch);
  std::vector<std::uint64_t> hist(state.batch_hist.begin(),
                                  state.batch_hist.end());
  writer.write_u64_span(hist);
  writer.write_f64(state.forward_seconds);
  write_histogram_state(writer, state.latency);
}

serve::ServerStats::State read_stats_state(BufferReader& reader) {
  serve::ServerStats::State state;
  state.requests = static_cast<std::size_t>(reader.read_u64());
  state.rejected = static_cast<std::size_t>(reader.read_u64());
  state.shed = static_cast<std::size_t>(reader.read_u64());
  state.peak_queue_depth = static_cast<std::size_t>(reader.read_u64());
  state.batches = static_cast<std::size_t>(reader.read_u64());
  state.batch_rows = static_cast<std::size_t>(reader.read_u64());
  state.max_batch = static_cast<std::size_t>(reader.read_u64());
  const auto hist = reader.read_u64_vector();
  state.batch_hist.assign(hist.begin(), hist.end());
  state.forward_seconds = reader.read_f64();
  state.latency = read_histogram_state(reader);
  return state;
}

}  // namespace

std::vector<std::uint8_t> encode_stats_reply(
    const serve::ServerStats::State& state) {
  BufferWriter writer = begin_frame(Verb::kStatsReply);
  writer.write_u8(kStatsFrameVersion);
  write_stats_state(writer, state);
  return writer.take();
}

serve::ServerStats::State decode_stats_reply(
    std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kStatsReply);
  check_frame_version(reader, Verb::kStatsReply, kStatsFrameVersion);
  serve::ServerStats::State state = read_stats_state(reader);
  finish_decode(reader, Verb::kStatsReply);
  return state;
}

std::vector<std::uint8_t> encode_metrics_reply(
    const EngineMetricsReport& report) {
  BufferWriter writer = begin_frame(Verb::kMetricsReply);
  writer.write_u8(kStatsFrameVersion);
  write_stats_state(writer, report.stats);
  write_registry_state(writer, report.registry);
  writer.write_u64(report.traces.size());
  for (const obs::TraceRecord& rec : report.traces) {
    write_trace_record(writer, rec);
  }
  writer.write_u64(report.events.size());
  for (const obs::Event& event : report.events) {
    write_event(writer, event);
  }
  return writer.take();
}

EngineMetricsReport decode_metrics_reply(
    std::span<const std::uint8_t> frame) {
  BufferReader reader = begin_decode(frame, Verb::kMetricsReply);
  check_frame_version(reader, Verb::kMetricsReply, kStatsFrameVersion);
  EngineMetricsReport report;
  report.stats = read_stats_state(reader);
  report.registry = read_registry_state(reader);
  const std::uint64_t traces = reader.read_u64();
  if (traces > reader.remaining()) {
    throw SerializeError("wire: trace count exceeds frame size");
  }
  report.traces.reserve(static_cast<std::size_t>(traces));
  for (std::uint64_t i = 0; i < traces; ++i) {
    report.traces.push_back(read_trace_record(reader));
  }
  const std::uint64_t events = reader.read_u64();
  if (events > reader.remaining()) {
    throw SerializeError("wire: event count exceeds frame size");
  }
  report.events.reserve(static_cast<std::size_t>(events));
  for (std::uint64_t i = 0; i < events; ++i) {
    report.events.push_back(read_event(reader));
  }
  finish_decode(reader, Verb::kMetricsReply);
  return report;
}

}  // namespace pelican::router
