#include "router/partitioner.hpp"

#include <algorithm>
#include <iterator>
#include <stdexcept>

#include "common/rng.hpp"

namespace pelican::router {

namespace {

/// FNV-1a 64-bit, finished with SplitMix64 for avalanche: the ring needs
/// backend ids (often near-identical strings like ".../e0.sock" vs
/// ".../e1.sock") to land far apart.
std::uint64_t hash_string(const std::string& s, std::uint64_t salt) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return split_mix64(h);
}

/// Ring coordinate of a partition index.
std::uint64_t hash_partition(std::size_t p) {
  return split_mix64(static_cast<std::uint64_t>(p) * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

Partitioner::Partitioner(std::size_t num_partitions,
                         std::size_t virtual_nodes)
    : virtual_nodes_(virtual_nodes) {
  if (num_partitions == 0) {
    throw std::invalid_argument("Partitioner: num_partitions must be > 0");
  }
  if (virtual_nodes == 0) {
    throw std::invalid_argument("Partitioner: virtual_nodes must be > 0");
  }
  ownership_.assign(num_partitions, std::string{});
}

std::size_t Partitioner::add_backend(const std::string& id) {
  if (id.empty()) {
    throw std::invalid_argument("Partitioner: backend id must be non-empty");
  }
  if (contains(id)) return 0;
  for (std::size_t v = 0; v < virtual_nodes_; ++v) {
    const std::uint64_t point = hash_string(id, /*salt=*/v);
    const auto [it, inserted] = ring_.emplace(point, id);
    if (!inserted && id < it->second) it->second = id;
  }
  ++backend_count_;
  return rebuild();
}

std::size_t Partitioner::remove_backend(const std::string& id) {
  if (!contains(id)) return 0;
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == id ? ring_.erase(it) : std::next(it);
  }
  --backend_count_;
  return rebuild();
}

bool Partitioner::contains(const std::string& id) const {
  for (const auto& [point, owner] : ring_) {
    if (owner == id) return true;
  }
  return false;
}

std::size_t Partitioner::partition_of(std::uint32_t user_id) const noexcept {
  // Fibonacci hash, as DeploymentRegistry::shard_of: sequential and strided
  // user ids spread evenly over partitions.
  const std::uint64_t mixed =
      static_cast<std::uint64_t>(user_id) * 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(mixed >> 32) % ownership_.size();
}

const std::string& Partitioner::owner_of(std::uint32_t user_id) const {
  return owner_of_partition(partition_of(user_id));
}

const std::string& Partitioner::owner_of_partition(std::size_t p) const {
  if (backend_count_ == 0) {
    throw std::logic_error("Partitioner: no backends registered");
  }
  return ownership_.at(p);
}

std::vector<std::string> Partitioner::backends() const {
  std::vector<std::string> out;
  out.reserve(backend_count_);
  for (const auto& [point, owner] : ring_) {
    bool seen = false;
    for (const auto& existing : out) seen = seen || existing == owner;
    if (!seen) out.push_back(owner);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t Partitioner::rebuild() {
  std::size_t moved = 0;
  for (std::size_t p = 0; p < ownership_.size(); ++p) {
    const std::string* owner = &ownership_[p];
    if (ring_.empty()) {
      static const std::string kNone;
      owner = &kNone;
    } else {
      // First ring point clockwise of the partition's coordinate.
      auto it = ring_.lower_bound(hash_partition(p));
      if (it == ring_.end()) it = ring_.begin();
      owner = &it->second;
    }
    if (ownership_[p] != *owner) {
      ownership_[p] = *owner;
      ++moved;
    }
  }
  return moved;
}

}  // namespace pelican::router
