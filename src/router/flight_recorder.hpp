// FlightRecorder: the assembled flight recorder over a live fleet.
//
// Composes the obs building blocks around a Router (or any metrics+events
// source):
//
//   FleetSampler   polls Router::fleet_metrics() every sample_interval_ms,
//                  ring-buffering exact counter rates and per-interval
//                  histogram quantiles (obs/timeseries).
//   SloTracker     re-judges declarative objectives after every tick;
//                  breach/recovery transitions land in the router's
//                  metrics registry AND its event journal, so they ship
//                  through the same pipes as everything else.
//   event cache    the latest fleet-merged event journal (router +
//                  engines, wall-clock ordered), kept from each sample so
//                  /events answers without a fresh fleet pull.
//   ObsHttpServer  optional: mounts the whole thing at http_listen —
//                  /metrics (Prometheus text), /metrics.json,
//                  /timeseries, /events, /slo, /healthz — over the
//                  router/socket transport.
//
// The recorder only POLLS: it holds no locks of the router beyond what
// fleet_metrics() takes, and a scrape reads the recorder's own cached
// state, so exposition load never touches the serving path. One recorder
// per router; `pelican_statsz --serve` builds one over a scrape loop
// instead of an in-process router (the generic-source constructor).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "obs/events.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "router/obs_http.hpp"

namespace pelican::router {

class Router;

struct FlightRecorderConfig {
  double sample_interval_ms = 1000.0;
  std::size_t series_capacity = 600;  ///< ring length of every series
  std::vector<obs::SloSpec> slos;
  /// "unix:<path>" / "tcp:<host>:<port>" to mount the HTTP endpoint;
  /// empty = no server (the recorder still samples and evaluates).
  std::string http_listen;
};

class FlightRecorder {
 public:
  /// One poll's worth of fleet truth.
  struct FlightSample {
    obs::RegistryState registry;
    std::vector<obs::Event> events;
  };
  using Source = std::function<FlightSample()>;

  /// Records `router` (must outlive the recorder). SLO transition metrics
  /// and events go into the router's own registry/journal, so they flow
  /// into subsequent samples and fleet scrapes automatically.
  explicit FlightRecorder(Router& router, FlightRecorderConfig config = {});

  /// Generic-source form (statsz scrape loops, tests). `slo_metrics` /
  /// `slo_events` optionally receive SLO transitions; both must outlive
  /// the recorder.
  FlightRecorder(Source source, FlightRecorderConfig config,
                 obs::Registry* slo_metrics = nullptr,
                 obs::EventJournal* slo_events = nullptr);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Starts the background sampler (and the HTTP server when configured).
  void start();
  void stop();

  /// One synchronous sample tick (tests, --watch loops); works with or
  /// without start().
  void sample_now();

  [[nodiscard]] obs::TimeSeriesStore& store() noexcept {
    return sampler_.store();
  }
  [[nodiscard]] obs::FleetSampler& sampler() noexcept { return sampler_; }
  [[nodiscard]] obs::SloTracker& slos() noexcept { return slo_tracker_; }

  /// The fleet-merged event journal of the LAST sample (wall-clock order).
  [[nodiscard]] std::vector<obs::Event> events() const;

  /// Renderings of the recorder's cached state (what the HTTP endpoints
  /// serve; callable directly for dumps and tests).
  [[nodiscard]] std::string metrics_text() const;
  [[nodiscard]] std::string metrics_json() const;
  [[nodiscard]] std::string timeseries_json() const;
  [[nodiscard]] std::string events_json() const;
  [[nodiscard]] std::string slos_json() const;
  /// Everything at once: `{"flight":{"captured_unix_ms":...,
  /// "timeseries":...,"events":...,"slos":...}}` — the CI chaos-lane
  /// artifact format tools/bench_diff.py renders timelines from.
  [[nodiscard]] std::string flight_dump_json() const;

  /// Routes one parsed request to the endpoints above (the ObsHttpServer
  /// handler; public so tests can drive routing without sockets).
  [[nodiscard]] obs::HttpResponse handle(const obs::HttpRequest& request)
      const;

  [[nodiscard]] bool has_http() const noexcept { return http_ != nullptr; }
  /// Bound exposition address; only valid when has_http().
  [[nodiscard]] const Address& http_address() const { return http_->address(); }

 private:
  [[nodiscard]] obs::RegistryState last_registry() const;

  const FlightRecorderConfig config_;
  const Source source_;

  /// The latest sample's registry + merged events, written by the sampler
  /// tick, read by scrapes.
  mutable Mutex state_mutex_;
  obs::RegistryState last_registry_ PELICAN_GUARDED_BY(state_mutex_);
  std::vector<obs::Event> last_events_ PELICAN_GUARDED_BY(state_mutex_);
  std::uint64_t last_sample_ms_ PELICAN_GUARDED_BY(state_mutex_) = 0;

  obs::FleetSampler sampler_;
  obs::SloTracker slo_tracker_;
  std::unique_ptr<ObsHttpServer> http_;
};

}  // namespace pelican::router
