// ObsHttpServer: the socket-bound half of the HTTP exposition endpoint.
//
// obs/http owns the protocol (request parsing, response rendering — pure
// strings, no fds); this class owns the transport: a ListenSocket on the
// same unix:/tcp: addresses every other router socket speaks, an accept
// loop, and one short-lived handler thread per connection — the exact
// lifecycle discipline of EngineWorker (poll-with-timeout acceptor so
// stop() is observed, handlers tracked and reaped under an annotated
// mutex, acceptor joined BEFORE the listener closes).
//
// The server is routing-agnostic: it turns bytes into an HttpRequest,
// hands it to the injected handler, and writes the rendered response.
// FlightRecorder supplies the handler that knows about /metrics,
// /timeseries, /events, /slo, /healthz; tests can mount anything.
// Connections are one-shot (Connection: close) — a scrape is a fresh
// connect, which keeps the server stateless and the handler threads
// short-lived.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/mutex.hpp"
#include "obs/http.hpp"
#include "router/socket.hpp"

namespace pelican::router {

class ObsHttpServer {
 public:
  using Handler = std::function<obs::HttpResponse(const obs::HttpRequest&)>;

  /// Binds `listen_address` ("unix:<path>" or "tcp:<host>:<port>")
  /// immediately (throws WireError on bind failure) but accepts nothing
  /// until start().
  ObsHttpServer(const std::string& listen_address, Handler handler);
  ~ObsHttpServer();

  ObsHttpServer(const ObsHttpServer&) = delete;
  ObsHttpServer& operator=(const ObsHttpServer&) = delete;

  void start();
  void stop();

  /// The bound address (resolves "tcp:host:0" to the kernel-chosen port).
  [[nodiscard]] const Address& address() const noexcept {
    return listener_.address();
  }

  /// Requests served (any status) since construction.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    /// Written by the handler as its final locked action, read by the
    /// reaper — both under connections_mutex_ (inexpressible as a
    /// guarded_by: nested structs cannot name the enclosing mutex).
    bool done = false;
  };

  void accept_loop();
  void serve_connection(Connection* connection);
  void reap_finished_connections() PELICAN_REQUIRES(connections_mutex_);

  Handler handler_;
  ListenSocket listener_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread acceptor_;

  Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      PELICAN_GUARDED_BY(connections_mutex_);
};

}  // namespace pelican::router
