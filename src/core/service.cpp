#include "core/service.hpp"

#include "common/timer.hpp"
#include "nn/loss.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {

std::vector<std::uint16_t> DeployedModel::predict_top_k(
    const mobility::Window& window, std::size_t k) {
  return predict_top_k_batch(std::span<const mobility::Window>(&window, 1),
                             k)[0];
}

std::vector<std::vector<std::uint16_t>> DeployedModel::predict_top_k_batch(
    std::span<const mobility::Window> windows, std::size_t k,
    PredictStageSeconds* stages) {
  if (windows.empty()) return {};
  Stopwatch watch;
  // Sparse one-hot encoding: the LSTM input product becomes nnz row
  // gathers instead of an input_dim x 4*hidden GEMM per timestep, with
  // bit-identical logits (nn/sparse.hpp) — so this fast path cannot change
  // what any user is served.
  const nn::SparseSequence x = models::encode_windows_sparse(windows, spec_);
  if (stages != nullptr) {
    stages->encode = watch.seconds();
    watch.reset();
  }
  // Rank in the log domain: softmax at any temperature is strictly monotone
  // in the logits, so the top-k of the privacy-scaled confidences IS the
  // top-k of the logits. Ranking there sidesteps the float saturation of
  // the magnitude path at strong temperatures (ranks 2..k would otherwise
  // collapse into exact-zero ties), which is what keeps service quality
  // bit-identical with the privacy layer on — the Section V-B invariant.
  // A k-slot response reveals only the ordered index list it necessarily
  // reveals; graded magnitudes remain behind query().
  add_queries(windows.size());
  const nn::Matrix logits = model_.forward(x, /*training=*/false);
  if (stages != nullptr) {
    stages->forward = watch.seconds();
    watch.reset();
  }
  const auto top_rows = nn::topk_rows(logits, k);
  if (stages != nullptr) stages->rank = watch.seconds();
  std::vector<std::vector<std::uint16_t>> out;
  out.reserve(top_rows.size());
  for (const auto& top : top_rows) {
    std::vector<std::uint16_t> locations;
    locations.reserve(top.size());
    for (const std::size_t i : top) {
      locations.push_back(static_cast<std::uint16_t>(i));
    }
    out.push_back(std::move(locations));
  }
  return out;
}

}  // namespace pelican::core
