#include "core/service.hpp"

#include "nn/loss.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {

std::vector<std::uint16_t> DeployedModel::predict_top_k(
    const mobility::Window& window, std::size_t k) {
  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(1, spec_.input_dim(), 0.0f));
  models::encode_window(window, spec_, x, 0);
  // Rank in the log domain: softmax at any temperature is strictly monotone
  // in the logits, so the top-k of the privacy-scaled confidences IS the
  // top-k of the logits. Ranking there sidesteps the float saturation of
  // the magnitude path at strong temperatures (ranks 2..k would otherwise
  // collapse into exact-zero ties), which is what keeps service quality
  // bit-identical with the privacy layer on — the Section V-B invariant.
  // A k-slot response reveals only the ordered index list it necessarily
  // reveals; graded magnitudes remain behind query().
  ++queries_;
  const nn::Matrix logits = model_.forward(x, /*training=*/false);
  const auto top = nn::topk_indices(logits.row(0), k);
  std::vector<std::uint16_t> locations;
  locations.reserve(top.size());
  for (const std::size_t i : top) {
    locations.push_back(static_cast<std::uint16_t>(i));
  }
  return locations;
}

}  // namespace pelican::core
