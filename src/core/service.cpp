#include "core/service.hpp"

#include "nn/loss.hpp"

namespace pelican::core {

std::vector<std::uint16_t> DeployedModel::predict_top_k(
    const mobility::Window& window, std::size_t k) {
  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(1, spec_.input_dim(), 0.0f));
  mobility::encode_window(window, spec_, x, 0);
  const nn::Matrix confidences = query(x);
  const auto top = nn::topk_indices(confidences.row(0), k);
  std::vector<std::uint16_t> locations;
  locations.reserve(top.size());
  for (const std::size_t i : top) {
    locations.push_back(static_cast<std::uint16_t>(i));
  }
  return locations;
}

}  // namespace pelican::core
