// Umbrella header and high-level lifecycle helpers for the Pelican
// framework. Pulls together the four phases of Fig. 4 — cloud-based initial
// training, device-based personalization, deployment, and model updates —
// plus the privacy audit used throughout Section V-C4: attack a deployment
// with and without the privacy layer and report the reduction in leakage.
#pragma once

#include "attack/gradient_attack.hpp"
#include "attack/inversion.hpp"
#include "core/cloud.hpp"
#include "core/device.hpp"
#include "core/privacy_layer.hpp"
#include "core/service.hpp"

namespace pelican::core {

/// Per-k percentage reduction in attack accuracy:
/// 100 * (baseline - protected) / baseline, clamped at 0 when baseline is 0.
/// This is the y-axis of Fig. 5a/5b/5c.
[[nodiscard]] std::vector<double> leakage_reduction_percent(
    const attack::InversionResult& baseline,
    const attack::InversionResult& defended);

/// Result of attacking one deployment with and without the privacy layer.
struct PrivacyAudit {
  attack::InversionResult baseline;   ///< T = 1 (no defense).
  attack::InversionResult defended;   ///< Device's configured temperature.
  std::vector<double> reduction_percent;  ///< Parallel to baseline.ks.
};

/// Audits a personalized device deployment: runs the configured inversion
/// attack against the raw model and against the privacy-wrapped model.
/// `observation_windows` are serving-time inputs the provider legitimately
/// saw (used for the locations-of-interest filter and predict/estimate
/// priors). The attack's targets are the device's private training windows.
[[nodiscard]] PrivacyAudit audit_device(
    const Device& device,
    std::span<const mobility::Window> observation_windows,
    attack::PriorKind prior_kind, const attack::InversionConfig& config);

}  // namespace pelican::core
