// Cloud tier (Section V-A1/V-A3/V-A4): trains and versions the general
// model, serves it for device download, and optionally hosts uploaded
// personalized models for cloud deployment. Compute costs of each phase are
// accounted (the paper contrasts ~43,000 billion cycles of cloud training
// with ~15 billion of on-device personalization).
//
// General-model versions live in the shared store::ModelStore (scope
// kGeneralScope, user 0) rather than a private map, so the serving engine
// and model-update path (Section V-A4) read the exact artifacts the cloud
// trained. The cloud keeps only per-version training metadata (report +
// cost) alongside.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"
#include "core/service.hpp"
#include "models/general.hpp"
#include "models/window_dataset.hpp"
#include "store/model_store.hpp"

namespace pelican::core {

class CloudServer {
 public:
  /// Store scope holding general-model versions (user_id 0 by convention).
  static constexpr const char* kGeneralScope = "general";

  /// A fresh cloud with its own in-memory model store.
  CloudServer() : CloudServer(std::make_shared<store::ModelStore>()) {}

  /// A cloud publishing into a shared store (e.g. one the serving engine
  /// also reads, or a filesystem-backed store that survives restarts).
  /// Must be non-null.
  explicit CloudServer(std::shared_ptr<store::ModelStore> model_store);

  /// Trains a new general-model version on pooled contributor data, puts it
  /// into the model store, and returns its version id (monotonically
  /// increasing from 1).
  std::uint32_t train_general(const models::WindowDataset& contributors,
                              const models::GeneralModelConfig& config);

  /// "Downloads" a general model to a device (returns a deep copy — the
  /// cloud keeps serving the version to other users). Throws
  /// std::out_of_range naming the version id when it is unknown.
  [[nodiscard]] nn::SequenceClassifier download_general(
      std::uint32_t version) const;

  [[nodiscard]] std::uint32_t latest_version() const;
  [[nodiscard]] bool has_version(std::uint32_t version) const;

  /// Wall/CPU cost of training a given version. Throws std::out_of_range
  /// naming the version id when it is unknown.
  [[nodiscard]] const PhaseCost& training_cost(std::uint32_t version) const;

  /// Training report (losses, validation curve) of a given version. Throws
  /// std::out_of_range naming the version id when it is unknown.
  [[nodiscard]] const nn::TrainReport& training_report(
      std::uint32_t version) const;

  /// The store backing this cloud's general-model versions; the serving
  /// tier attaches to the same store to publish and pull model updates.
  [[nodiscard]] store::ModelStore& model_store() noexcept { return *store_; }
  [[nodiscard]] const store::ModelStore& model_store() const noexcept {
    return *store_;
  }
  [[nodiscard]] std::shared_ptr<store::ModelStore> shared_model_store()
      const noexcept {
    return store_;
  }

  /// Hosts a personalized model for cloud deployment; the cloud can query
  /// it only through the privacy-preserving DeployedModel interface.
  void host_personalized(std::uint32_t user_id, DeployedModel model);

  [[nodiscard]] bool hosts_user(std::uint32_t user_id) const {
    return hosted_.contains(user_id);
  }

  /// The hosted deployment of `user_id`. Throws std::out_of_range when the
  /// user is not hosted — use find_hosted() for a non-throwing lookup.
  [[nodiscard]] DeployedModel& hosted_model(std::uint32_t user_id);

  /// Non-throwing lookup: nullptr when the user is not hosted.
  [[nodiscard]] DeployedModel* find_hosted(std::uint32_t user_id);

  /// Releases every hosted deployment to the caller; afterwards the cloud
  /// server hosts no users. This is the hand-off to the serving engine's
  /// DeploymentRegistry (serve::DeploymentRegistry::adopt_hosted), which
  /// shards ownership so concurrent register/lookup/swap scales past this
  /// single-threaded map.
  [[nodiscard]] std::map<std::uint32_t, DeployedModel> take_hosted();

 private:
  [[noreturn]] static void throw_unknown_version(std::uint32_t version);

  struct VersionMeta {
    nn::TrainReport report;
    PhaseCost cost;
  };
  std::shared_ptr<store::ModelStore> store_;
  std::map<std::uint32_t, VersionMeta> meta_;
  std::map<std::uint32_t, DeployedModel> hosted_;
};

}  // namespace pelican::core
