// Cloud tier (Section V-A1/V-A3/V-A4): trains and versions the general
// model, serves it for device download, and optionally hosts uploaded
// personalized models for cloud deployment. Compute costs of each phase are
// accounted (the paper contrasts ~43,000 billion cycles of cloud training
// with ~15 billion of on-device personalization).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/timer.hpp"
#include "core/service.hpp"
#include "models/general.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {

class CloudServer {
 public:
  /// Trains a new general-model version on pooled contributor data and
  /// returns its version id (monotonically increasing from 1).
  std::uint32_t train_general(const models::WindowDataset& contributors,
                              const models::GeneralModelConfig& config);

  /// "Downloads" a general model to a device (returns a deep copy — the
  /// cloud keeps serving the version to other users).
  [[nodiscard]] nn::SequenceClassifier download_general(
      std::uint32_t version) const;

  [[nodiscard]] std::uint32_t latest_version() const;
  [[nodiscard]] bool has_version(std::uint32_t version) const {
    return versions_.contains(version);
  }

  /// Wall/CPU cost of training a given version.
  [[nodiscard]] const PhaseCost& training_cost(std::uint32_t version) const;

  /// Training report (losses, validation curve) of a given version.
  [[nodiscard]] const nn::TrainReport& training_report(
      std::uint32_t version) const;

  /// Hosts a personalized model for cloud deployment; the cloud can query
  /// it only through the privacy-preserving DeployedModel interface.
  void host_personalized(std::uint32_t user_id, DeployedModel model);

  [[nodiscard]] bool hosts_user(std::uint32_t user_id) const {
    return hosted_.contains(user_id);
  }

  /// The hosted deployment of `user_id`. Throws std::out_of_range when the
  /// user is not hosted — use find_hosted() for a non-throwing lookup.
  [[nodiscard]] DeployedModel& hosted_model(std::uint32_t user_id);

  /// Non-throwing lookup: nullptr when the user is not hosted.
  [[nodiscard]] DeployedModel* find_hosted(std::uint32_t user_id);

  /// Releases every hosted deployment to the caller; afterwards the cloud
  /// server hosts no users. This is the hand-off to the serving engine's
  /// DeploymentRegistry (serve::DeploymentRegistry::adopt_hosted), which
  /// shards ownership so concurrent register/lookup/swap scales past this
  /// single-threaded map.
  [[nodiscard]] std::map<std::uint32_t, DeployedModel> take_hosted();

 private:
  struct VersionEntry {
    nn::SequenceClassifier model;
    nn::TrainReport report;
    PhaseCost cost;
  };
  std::map<std::uint32_t, VersionEntry> versions_;
  std::map<std::uint32_t, DeployedModel> hosted_;
  std::uint32_t next_version_ = 1;
};

}  // namespace pelican::core
