#include "core/device.hpp"

#include <stdexcept>
#include "models/window_dataset.hpp"

namespace pelican::core {

Device::Device(std::uint32_t user_id, std::vector<mobility::Window> windows,
               mobility::EncodingSpec spec)
    : user_id_(user_id), data_(std::move(windows), spec), spec_(spec) {}

void Device::set_privacy_temperature(double temperature) {
  if (!(temperature > 0.0)) {
    throw std::invalid_argument("Device: temperature must be positive");
  }
  temperature_ = temperature;
}

PhaseCost Device::personalize(const CloudServer& cloud,
                              const models::PersonalizationConfig& config) {
  PhaseTimer timer;
  const nn::SequenceClassifier general =
      cloud.download_general(cloud.latest_version());
  personalized_ = models::personalize(general, data_, config);
  last_config_ = config;
  return timer.stop();
}

PhaseCost Device::update(std::vector<mobility::Window> new_windows,
                         const models::PersonalizationConfig& config) {
  if (!personalized_.has_value()) {
    throw std::logic_error("Device::update: personalize() has not run");
  }
  PhaseTimer timer;
  // Extend the private store; updates see old + new data.
  std::vector<mobility::Window> all(data_.windows().begin(),
                                    data_.windows().end());
  all.insert(all.end(), new_windows.begin(), new_windows.end());
  data_ = models::WindowDataset(std::move(all), spec_);
  personalized_ =
      models::update_personalized(personalized_->model, data_, config);
  last_config_ = config;
  return timer.stop();
}

DeployedModel Device::deploy_local() const {
  return DeployedModel(personalized_model().clone(), spec_,
                       PrivacyLayer(temperature_),
                       DeploymentSite::kOnDevice);
}

void Device::deploy_to_cloud(CloudServer& cloud) const {
  cloud.host_personalized(
      user_id_,
      DeployedModel(personalized_model().clone(), spec_,
                    PrivacyLayer(temperature_), DeploymentSite::kInCloud));
}

const nn::SequenceClassifier& Device::personalized_model() const {
  if (!personalized_.has_value()) {
    throw std::logic_error("Device: model not personalized yet");
  }
  return personalized_->model;
}

const nn::TrainReport& Device::personalization_report() const {
  if (!personalized_.has_value()) {
    throw std::logic_error("Device: model not personalized yet");
  }
  return personalized_->report;
}

}  // namespace pelican::core
