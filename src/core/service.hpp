// Model deployment and the service-provider query interface (Section V-A3).
//
// A DeployedModel bundles a personalized model with the user's PrivacyLayer
// and implements the attack::BlackBoxModel interface — by construction the
// service provider (and therefore the inversion adversary) can only ever
// observe privacy-scaled confidences. Deployment is either on-device or
// in-cloud; the query API is identical, which is what lets Pelican keep the
// defense effective in both placements.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "attack/blackbox.hpp"
#include "core/privacy_layer.hpp"
#include "mobility/dataset.hpp"
#include "nn/model.hpp"

namespace pelican::core {

enum class DeploymentSite : std::uint8_t { kOnDevice = 0, kInCloud };

[[nodiscard]] constexpr const char* to_string(DeploymentSite site) noexcept {
  return site == DeploymentSite::kOnDevice ? "device" : "cloud";
}

/// A personalized model as exposed to the mobile service.
class DeployedModel final : public attack::BlackBoxModel {
 public:
  DeployedModel(nn::SequenceClassifier model, mobility::EncodingSpec spec,
                PrivacyLayer privacy, DeploymentSite site)
      : model_(std::move(model)),
        spec_(spec),
        privacy_(privacy),
        site_(site) {}

  /// Black-box prediction: forward pass + privacy-scaled softmax. This is
  /// the ONLY read path; raw logits never leave the deployment.
  [[nodiscard]] nn::Matrix query(const nn::Sequence& input) override {
    ++queries_;
    return privacy_.apply(model_.forward(input, /*training=*/false));
  }

  [[nodiscard]] std::size_t num_classes() const override {
    return model_.num_classes();
  }
  [[nodiscard]] const mobility::EncodingSpec& spec() const override {
    return spec_;
  }

  /// Top-k next locations for a single encoded window — the service's
  /// primary operation (e.g. prefetching content for likely destinations).
  [[nodiscard]] std::vector<std::uint16_t> predict_top_k(
      const mobility::Window& window, std::size_t k);

  /// Batched top-k: encodes all windows into one multi-row sequence and runs
  /// ONE forward pass, so a coalescing serving engine amortizes the LSTM
  /// across B queries. Row r of the result is bit-identical to
  /// predict_top_k(windows[r], k): every kernel under forward() accumulates
  /// per-row in a fixed order and the top-k reduction is per-row, so batching
  /// never changes what any user is served (the Section V-B service-quality
  /// invariant, now also batch-size-independent).
  [[nodiscard]] std::vector<std::vector<std::uint16_t>> predict_top_k_batch(
      std::span<const mobility::Window> windows, std::size_t k);

  [[nodiscard]] DeploymentSite site() const noexcept { return site_; }
  [[nodiscard]] std::size_t query_count() const noexcept { return queries_; }
  [[nodiscard]] double temperature() const noexcept {
    return privacy_.temperature();
  }

  /// Replaces the model in place (Pelican model update, Section V-A4).
  void swap_model(nn::SequenceClassifier model) { model_ = std::move(model); }

  /// Owner-only access (the user's device); not part of the service API.
  [[nodiscard]] nn::SequenceClassifier& owner_model() noexcept {
    return model_;
  }

 private:
  nn::SequenceClassifier model_;
  mobility::EncodingSpec spec_;
  PrivacyLayer privacy_;
  DeploymentSite site_;
  std::size_t queries_ = 0;
};

}  // namespace pelican::core
