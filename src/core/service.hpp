// Model deployment and the service-provider query interface (Section V-A3).
//
// A DeployedModel bundles a personalized model with the user's PrivacyLayer
// and implements the attack::BlackBoxModel interface — by construction the
// service provider (and therefore the inversion adversary) can only ever
// observe privacy-scaled confidences. Deployment is either on-device or
// in-cloud; the query API is identical, which is what lets Pelican keep the
// defense effective in both placements.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "attack/blackbox.hpp"
#include "core/privacy_layer.hpp"
#include "mobility/dataset.hpp"
#include "nn/model.hpp"

namespace pelican::core {

enum class DeploymentSite : std::uint8_t { kOnDevice = 0, kInCloud };

[[nodiscard]] constexpr const char* to_string(DeploymentSite site) noexcept {
  return site == DeploymentSite::kOnDevice ? "device" : "cloud";
}

/// Per-stage wall-clock breakdown of one predict_top_k_batch call. A plain
/// out-param struct (not an obs type) so core stays below the observability
/// layer in the lattice; the serving tier maps these onto its stage
/// histograms and trace spans.
struct PredictStageSeconds {
  double encode = 0.0;   ///< window -> sparse one-hot encoding
  double forward = 0.0;  ///< LSTM + head forward pass
  double rank = 0.0;     ///< top-k ranking over the logits
};

/// A personalized model as exposed to the mobile service.
class DeployedModel final : public attack::BlackBoxModel {
 public:
  /// `model_version` tags which stored model version (store::ModelKey
  /// version) this deployment serves; 0 means "unversioned" (built directly
  /// from a model object rather than published from a store).
  DeployedModel(nn::SequenceClassifier model, mobility::EncodingSpec spec,
                PrivacyLayer privacy, DeploymentSite site,
                std::uint32_t model_version = 0)
      : model_(std::move(model)),
        spec_(spec),
        privacy_(privacy),
        site_(site),
        model_version_(model_version) {}

  /// Black-box prediction: forward pass + privacy-scaled softmax. This is
  /// the ONLY read path; raw logits never leave the deployment.
  ///
  /// Query accounting is per ROW served, not per forward call: a batched
  /// input of B rows spends B units of the attack query budget, exactly as
  /// B single queries would. Anything else would make privacy audits
  /// (Section V, attack query counts) depend on how the adversary batches.
  [[nodiscard]] nn::Matrix query(const nn::Sequence& input) override {
    add_queries(input.empty() ? 0 : input.front().rows());
    return privacy_.apply(model_.forward(input, /*training=*/false));
  }

  /// Sparse-encoded query: the same confidences, bit for bit, via the
  /// one-hot gather kernels (nn/sparse.hpp). Same per-row budget spend.
  [[nodiscard]] nn::Matrix query(const nn::SparseSequence& input) override {
    add_queries(input.empty() ? 0 : input.front().rows());
    return privacy_.apply(model_.forward(input, /*training=*/false));
  }

  // Movable so deployments can live in containers and be handed between
  // tiers; moving is not thread-safe (unlike the query counter, which is
  // atomic because a publisher reads it while serving threads add to it).
  // The counter lives behind a shared_ptr precisely so moves are safe while
  // replicas (see replicate()) are outstanding: the counter object's
  // address is stable no matter where the deployment itself moves. Moves
  // SHARE the counter with the moved-from shell rather than emptying it,
  // so a drained source still answers query_count() consistently.
  DeployedModel(DeployedModel&& other) noexcept
      : model_(std::move(other.model_)),
        spec_(other.spec_),
        privacy_(other.privacy_),
        site_(other.site_),
        model_version_(other.model_version_),
        queries_(other.queries_) {}
  DeployedModel& operator=(DeployedModel&& other) noexcept {
    model_ = std::move(other.model_);
    spec_ = other.spec_;
    privacy_ = other.privacy_;
    site_ = other.site_;
    model_version_ = other.model_version_;
    queries_ = other.queries_;
    return *this;
  }

  /// Deep copy: duplicates the model (and therefore its forward caches),
  /// privacy layer, and placement, and snapshots the current query count.
  /// The copy is fully independent — two clones can serve or be attacked
  /// concurrently without sharing any state.
  [[nodiscard]] DeployedModel clone() const {
    DeployedModel copy(model_.clone(), spec_, privacy_, site_,
                       model_version_);
    copy.set_query_count(query_count());
    return copy;
  }

  /// attack::BlackBoxModel::replicate: like clone(), but the replica's
  /// queries are charged to THIS deployment's budget (the clones exist only
  /// to give each scoring worker private forward caches; the adversary is
  /// still spending one user's query budget). The counter is shared by
  /// shared_ptr, so replicas stay valid even if this deployment moves or
  /// is destroyed first.
  [[nodiscard]] std::unique_ptr<attack::BlackBoxModel> replicate() override {
    auto copy = std::make_unique<DeployedModel>(model_.clone(), spec_,
                                                privacy_, site_,
                                                model_version_);
    copy->queries_ = queries_;
    return copy;
  }

  [[nodiscard]] std::size_t num_classes() const override {
    return model_.num_classes();
  }
  [[nodiscard]] const mobility::EncodingSpec& spec() const override {
    return spec_;
  }

  /// Top-k next locations for a single encoded window — the service's
  /// primary operation (e.g. prefetching content for likely destinations).
  [[nodiscard]] std::vector<std::uint16_t> predict_top_k(
      const mobility::Window& window, std::size_t k);

  /// Batched top-k: encodes all windows into one multi-row sequence and runs
  /// ONE forward pass, so a coalescing serving engine amortizes the LSTM
  /// across B queries. Row r of the result is bit-identical to
  /// predict_top_k(windows[r], k): every kernel under forward() accumulates
  /// per-row in a fixed order and the top-k reduction is per-row, so batching
  /// never changes what any user is served (the Section V-B service-quality
  /// invariant, now also batch-size-independent).
  ///
  /// When `stages` is non-null the encode/forward/rank wall-clock split is
  /// written into it (the timing reads cost three extra clock calls; passing
  /// nullptr — the default — keeps the call exactly as before).
  [[nodiscard]] std::vector<std::vector<std::uint16_t>> predict_top_k_batch(
      std::span<const mobility::Window> windows, std::size_t k,
      PredictStageSeconds* stages = nullptr);

  [[nodiscard]] DeploymentSite site() const noexcept { return site_; }
  [[nodiscard]] std::size_t query_count() const noexcept {
    return queries_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] double temperature() const noexcept {
    return privacy_.temperature();
  }
  [[nodiscard]] const PrivacyLayer& privacy() const noexcept {
    return privacy_;
  }
  /// Which stored model version this deployment serves (0 = unversioned).
  [[nodiscard]] std::uint32_t model_version() const noexcept {
    return model_version_;
  }

  /// True when this deployment serves an int8 artifact (the store published
  /// it with PublishFormat::kInt8). Queries then run the dequant-free
  /// quantized kernels; answers track an fp32 deployment of the same weights
  /// within the nn/quant.hpp tolerance rather than bit-identically.
  [[nodiscard]] bool quantized() const { return nn::is_quantized(model_); }

  /// Forwards to the model (nn/activations.hpp): opt this deployment into
  /// (or back out of) the bounded-error fast activation kernels.
  void set_activation_mode(nn::ActivationMode mode) noexcept {
    model_.set_activation_mode(mode);
  }

  /// Model-update bookkeeping: the attack query budget is cumulative per
  /// USER, not per model object, so a replacement deployment published for
  /// the same user inherits the count the old one accumulated.
  void set_query_count(std::size_t count) noexcept {
    queries_->store(count, std::memory_order_relaxed);
  }

  /// Replaces the model in place (on-device Pelican model update, Section
  /// V-A4). The serving engine's multi-user path does NOT use this — it
  /// publishes a whole replacement DeployedModel so in-flight forwards keep
  /// a consistent model (serve::DeploymentRegistry::publish).
  void swap_model(nn::SequenceClassifier model) { model_ = std::move(model); }

  /// Owner-only access (the user's device); not part of the service API.
  [[nodiscard]] nn::SequenceClassifier& owner_model() noexcept {
    return model_;
  }

 private:
  void add_queries(std::size_t rows) noexcept {
    queries_->fetch_add(rows, std::memory_order_relaxed);
  }

  nn::SequenceClassifier model_;
  mobility::EncodingSpec spec_;
  PrivacyLayer privacy_;
  DeploymentSite site_;
  std::uint32_t model_version_ = 0;
  // Atomic: a publisher snapshots the count (DeploymentRegistry::publish)
  // while serving threads add to it under only their per-deployment lock.
  // Behind a shared_ptr for address stability: scoring replicas (see
  // replicate()) hold the same counter, and the deployment itself may move
  // between containers/tiers while they do.
  std::shared_ptr<std::atomic<std::size_t>> queries_ =
      std::make_shared<std::atomic<std::size_t>>(0);
};

}  // namespace pelican::core
