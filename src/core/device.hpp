// Device tier (Section V-A2): holds the user's private trajectory, runs
// transfer-learning personalization locally, applies the user-chosen
// privacy temperature, and deploys the model (locally or by uploading to
// the cloud). Private windows never leave the Device object — only the
// trained model does, and only behind the privacy layer.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/timer.hpp"
#include "core/cloud.hpp"
#include "core/service.hpp"
#include "mobility/dataset.hpp"
#include "models/window_dataset.hpp"
#include "models/personalize.hpp"

namespace pelican::core {

class Device {
 public:
  /// `windows` is the user's private training data (kept on device);
  /// `spec` must match the general model's encoding.
  Device(std::uint32_t user_id, std::vector<mobility::Window> windows,
         mobility::EncodingSpec spec);

  [[nodiscard]] std::uint32_t user_id() const noexcept { return user_id_; }

  /// User-chosen privacy setting; kept secret from the service provider.
  void set_privacy_temperature(double temperature);
  [[nodiscard]] double privacy_temperature() const noexcept {
    return temperature_;
  }

  /// Downloads the latest general model from the cloud and personalizes it
  /// locally. Returns the wall/CPU cost of the on-device phase.
  PhaseCost personalize(const CloudServer& cloud,
                        const models::PersonalizationConfig& config);

  /// Re-invokes transfer learning with additional private data (model
  /// update, Section V-A4). Requires personalize() to have run.
  PhaseCost update(std::vector<mobility::Window> new_windows,
                   const models::PersonalizationConfig& config);

  /// Deploys locally; the returned DeployedModel lives on this device.
  [[nodiscard]] DeployedModel deploy_local() const;

  /// Uploads the (privacy-wrapped) model for cloud hosting.
  void deploy_to_cloud(CloudServer& cloud) const;

  [[nodiscard]] bool is_personalized() const noexcept {
    return personalized_.has_value();
  }
  [[nodiscard]] const nn::SequenceClassifier& personalized_model() const;
  [[nodiscard]] const nn::TrainReport& personalization_report() const;

  /// The device's private dataset (for owner-side evaluation only).
  [[nodiscard]] const models::WindowDataset& private_data() const noexcept {
    return data_;
  }

 private:
  std::uint32_t user_id_;
  models::WindowDataset data_;
  mobility::EncodingSpec spec_;
  double temperature_ = 1.0;
  std::optional<models::PersonalizedModel> personalized_;
  models::PersonalizationConfig last_config_;
};

}  // namespace pelican::core
