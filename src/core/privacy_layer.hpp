// Pelican's privacy enhancement (Section V-B): an extra layer between the
// model's linear output and the softmax that divides the raw scores by a
// user-chosen temperature T at *inference time only*.
//
// As T -> 0 the confidence vector saturates toward one-hot, so an inversion
// adversary — whose candidate scoring depends on graded confidence values —
// degenerates to prior-only guessing, while the confidence *ordering* (and
// hence the service's top-k accuracy) is exactly preserved. T is private to
// the user; the service provider sees only the scaled confidences.
#pragma once

#include <stdexcept>

#include "nn/loss.hpp"
#include "nn/matrix.hpp"

namespace pelican::core {

class PrivacyLayer {
 public:
  /// T = 1 is a transparent (no-op) layer; smaller T = more privacy.
  explicit PrivacyLayer(double temperature = 1.0)
      : temperature_(temperature) {
    if (!(temperature > 0.0)) {
      throw std::invalid_argument(
          "PrivacyLayer: temperature must be positive");
    }
  }

  [[nodiscard]] double temperature() const noexcept { return temperature_; }
  [[nodiscard]] bool is_transparent() const noexcept {
    return temperature_ == 1.0;
  }

  /// Scaled softmax over raw logits (Equation 1 of the paper).
  ///
  /// Precision note. The paper argues accuracy is unaffected because the
  /// ordering of confidences survives scaling "as long as appropriate
  /// precision is used in storing the confidence values". With any finite
  /// precision, a strong temperature saturates the tail to exact ties at
  /// zero — and that saturation is precisely where the privacy comes from:
  /// a magnitude-based inversion adversary can no longer distinguish
  /// candidate inputs. (An encoding that kept the *full* ordering in the
  /// stored magnitudes — e.g. subnormal nudges — would hand the ordering
  /// straight back to the adversary and void the defense; we verified this
  /// experimentally, see DESIGN.md §3.) apply() therefore returns the
  /// naturally quantized scaled softmax: ordering is exactly preserved for
  /// every confidence above the float precision floor, and the user's
  /// temperature choice trades tail precision for privacy.
  [[nodiscard]] nn::Matrix apply(const nn::Matrix& logits) const {
    return nn::softmax(logits, temperature_);
  }

  /// The paper's strongest evaluated setting (Fig. 5b flattens by ~1e-3).
  static constexpr double kStrongTemperature = 1e-3;

 private:
  double temperature_;
};

}  // namespace pelican::core
