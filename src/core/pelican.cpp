#include "core/pelican.hpp"

#include <algorithm>
#include <stdexcept>

namespace pelican::core {

std::vector<double> leakage_reduction_percent(
    const attack::InversionResult& baseline,
    const attack::InversionResult& defended) {
  if (baseline.ks != defended.ks) {
    throw std::invalid_argument(
        "leakage_reduction_percent: mismatched k grids");
  }
  std::vector<double> reduction(baseline.ks.size(), 0.0);
  for (std::size_t i = 0; i < baseline.ks.size(); ++i) {
    const double base = baseline.topk_accuracy[i];
    if (base <= 0.0) continue;
    reduction[i] =
        std::max(0.0, 100.0 * (base - defended.topk_accuracy[i]) / base);
  }
  return reduction;
}

PrivacyAudit audit_device(
    const Device& device,
    std::span<const mobility::Window> observation_windows,
    attack::PriorKind prior_kind, const attack::InversionConfig& config) {
  PrivacyAudit audit;
  const auto targets = device.private_data().windows();
  const auto& spec = device.private_data().spec();

  DeployedModel baseline(device.personalized_model().clone(), spec,
                         PrivacyLayer(1.0), DeploymentSite::kOnDevice);
  DeployedModel defended = device.deploy_local();

  // The adversary derives its prior from whatever deployment it can query.
  const auto baseline_prior = attack::make_prior(
      prior_kind, targets, baseline, observation_windows);
  const auto defended_prior = attack::make_prior(
      prior_kind, targets, defended, observation_windows);

  audit.baseline = attack::run_inversion(baseline, targets,
                                         observation_windows, baseline_prior,
                                         config);
  audit.defended = attack::run_inversion(defended, targets,
                                         observation_windows, defended_prior,
                                         config);
  audit.reduction_percent =
      leakage_reduction_percent(audit.baseline, audit.defended);
  return audit;
}

}  // namespace pelican::core
