#include "core/privacy_layer.hpp"

// PrivacyLayer is header-only (a single scaled-softmax call); this
// translation unit anchors the core library target.
