#include "core/cloud.hpp"

#include <string>
#include <utility>

#include "models/window_dataset.hpp"

namespace pelican::core {

CloudServer::CloudServer(std::shared_ptr<store::ModelStore> model_store)
    : store_(std::move(model_store)) {
  if (store_ == nullptr) {
    throw std::invalid_argument("CloudServer: model store must be non-null");
  }
}

void CloudServer::throw_unknown_version(std::uint32_t version) {
  throw std::out_of_range("CloudServer: unknown general-model version " +
                          std::to_string(version));
}

std::uint32_t CloudServer::train_general(
    const models::WindowDataset& contributors,
    const models::GeneralModelConfig& config) {
  PhaseTimer timer;
  models::GeneralModel trained =
      models::train_general_model(contributors, config);
  const std::uint32_t version =
      store_->put_next(kGeneralScope, 0, std::move(trained.model));
  meta_.emplace(version,
                VersionMeta{std::move(trained.report), timer.stop()});
  return version;
}

nn::SequenceClassifier CloudServer::download_general(
    std::uint32_t version) const {
  auto model = store_->find({kGeneralScope, 0, version});
  if (!model) throw_unknown_version(version);
  return *std::move(model);
}

std::uint32_t CloudServer::latest_version() const {
  const auto version = store_->find_latest(kGeneralScope, 0);
  if (!version) {
    throw std::logic_error("CloudServer: no general model trained yet");
  }
  return *version;
}

bool CloudServer::has_version(std::uint32_t version) const {
  return store_->contains({kGeneralScope, 0, version});
}

const PhaseCost& CloudServer::training_cost(std::uint32_t version) const {
  const auto it = meta_.find(version);
  if (it == meta_.end()) throw_unknown_version(version);
  return it->second.cost;
}

const nn::TrainReport& CloudServer::training_report(
    std::uint32_t version) const {
  const auto it = meta_.find(version);
  if (it == meta_.end()) throw_unknown_version(version);
  return it->second.report;
}

void CloudServer::host_personalized(std::uint32_t user_id,
                                    DeployedModel model) {
  hosted_.insert_or_assign(user_id, std::move(model));
}

DeployedModel& CloudServer::hosted_model(std::uint32_t user_id) {
  DeployedModel* model = find_hosted(user_id);
  if (model == nullptr) {
    throw std::out_of_range("CloudServer: user has no hosted model");
  }
  return *model;
}

DeployedModel* CloudServer::find_hosted(std::uint32_t user_id) {
  const auto it = hosted_.find(user_id);
  return it == hosted_.end() ? nullptr : &it->second;
}

std::map<std::uint32_t, DeployedModel> CloudServer::take_hosted() {
  return std::exchange(hosted_, {});
}

}  // namespace pelican::core
