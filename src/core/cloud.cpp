#include "core/cloud.hpp"

#include <utility>

#include "models/window_dataset.hpp"

namespace pelican::core {

std::uint32_t CloudServer::train_general(
    const models::WindowDataset& contributors,
    const models::GeneralModelConfig& config) {
  PhaseTimer timer;
  models::GeneralModel trained =
      models::train_general_model(contributors, config);
  const std::uint32_t version = next_version_++;
  versions_.emplace(version,
                    VersionEntry{std::move(trained.model),
                                 std::move(trained.report), timer.stop()});
  return version;
}

nn::SequenceClassifier CloudServer::download_general(
    std::uint32_t version) const {
  const auto it = versions_.find(version);
  if (it == versions_.end()) {
    throw std::out_of_range("CloudServer: unknown general-model version");
  }
  return it->second.model.clone();
}

std::uint32_t CloudServer::latest_version() const {
  if (versions_.empty()) {
    throw std::logic_error("CloudServer: no general model trained yet");
  }
  return versions_.rbegin()->first;
}

const PhaseCost& CloudServer::training_cost(std::uint32_t version) const {
  const auto it = versions_.find(version);
  if (it == versions_.end()) {
    throw std::out_of_range("CloudServer: unknown version");
  }
  return it->second.cost;
}

const nn::TrainReport& CloudServer::training_report(
    std::uint32_t version) const {
  const auto it = versions_.find(version);
  if (it == versions_.end()) {
    throw std::out_of_range("CloudServer: unknown version");
  }
  return it->second.report;
}

void CloudServer::host_personalized(std::uint32_t user_id,
                                    DeployedModel model) {
  hosted_.insert_or_assign(user_id, std::move(model));
}

DeployedModel& CloudServer::hosted_model(std::uint32_t user_id) {
  DeployedModel* model = find_hosted(user_id);
  if (model == nullptr) {
    throw std::out_of_range("CloudServer: user has no hosted model");
  }
  return *model;
}

DeployedModel* CloudServer::find_hosted(std::uint32_t user_id) {
  const auto it = hosted_.find(user_id);
  return it == hosted_.end() ? nullptr : &it->second;
}

std::map<std::uint32_t, DeployedModel> CloudServer::take_hosted() {
  return std::exchange(hosted_, {});
}

}  // namespace pelican::core
