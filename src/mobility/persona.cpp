#include "mobility/persona.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace pelican::mobility {

std::vector<std::uint16_t> Persona::home_domain() const {
  std::set<std::uint16_t> domain;
  domain.insert(dorm);
  for (const auto& slot : schedule) domain.insert(slot.building);
  domain.insert(dining_halls.begin(), dining_halls.end());
  domain.insert(library);
  domain.insert(gym);
  return {domain.begin(), domain.end()};
}

Persona generate_persona(const Campus& campus, std::uint32_t user_id,
                         const PersonaConfig& config, Rng& rng) {
  const auto dorms = campus.of_kind(BuildingKind::kDorm);
  const auto academic = campus.of_kind(BuildingKind::kAcademic);
  const auto dining = campus.of_kind(BuildingKind::kDining);
  const auto libraries = campus.of_kind(BuildingKind::kLibrary);
  const auto gyms = campus.of_kind(BuildingKind::kGym);
  if (dorms.empty() || academic.empty() || dining.empty() ||
      libraries.empty() || gyms.empty()) {
    throw std::invalid_argument(
        "generate_persona: campus lacks an essential building kind");
  }

  Persona persona;
  persona.user_id = user_id;
  persona.dorm = dorms[rng.below(dorms.size())];
  persona.routine_strength =
      rng.uniform(config.min_routine, config.max_routine);
  persona.outing_rate = rng.uniform(config.min_outing, config.max_outing);
  persona.gym_rate = rng.uniform(0.05, 0.4);
  persona.study_rate = rng.uniform(0.2, 0.8);

  // Course load: each course meets 2-3 times a week in a fixed room at a
  // fixed hour, like a real timetable.
  const auto courses = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(config.min_courses),
                static_cast<std::int64_t>(config.max_courses)));
  // Class hours start on the hour between 08:00 and 16:00.
  for (std::size_t c = 0; c < courses; ++c) {
    const std::uint16_t room = academic[rng.below(academic.size())];
    const auto start_hour = static_cast<std::uint16_t>(rng.range(8, 16));
    const auto duration =
        static_cast<std::uint16_t>(rng.chance(0.5) ? 50 : 75);
    const bool mon_wed = rng.chance(0.5);
    const std::uint8_t days[3] = {
        static_cast<std::uint8_t>(mon_wed ? 0 : 1),
        static_cast<std::uint8_t>(mon_wed ? 2 : 3),
        static_cast<std::uint8_t>(4)};
    const std::size_t meetings = rng.chance(0.5) ? 2 : 3;
    for (std::size_t m = 0; m < meetings; ++m) {
      ClassSlot slot;
      slot.day = days[m];
      slot.start_minute = static_cast<std::uint16_t>(start_hour * 60);
      slot.duration_minutes = duration;
      slot.building = room;
      persona.schedule.push_back(slot);
    }
  }
  std::sort(persona.schedule.begin(), persona.schedule.end(),
            [](const ClassSlot& a, const ClassSlot& b) {
              if (a.day != b.day) return a.day < b.day;
              return a.start_minute < b.start_minute;
            });
  // Drop exact-time collisions on the same day (a student can't be in two
  // rooms at once); keep the earlier-generated course's slot.
  persona.schedule.erase(
      std::unique(persona.schedule.begin(), persona.schedule.end(),
                  [](const ClassSlot& a, const ClassSlot& b) {
                    return a.day == b.day && a.start_minute == b.start_minute;
                  }),
      persona.schedule.end());

  const std::size_t hall_count = std::min<std::size_t>(
      dining.size(), 1 + rng.below(2));
  std::vector<std::uint16_t> halls(dining.begin(), dining.end());
  rng.shuffle(halls);
  halls.resize(hall_count);
  persona.dining_halls = std::move(halls);

  persona.library = libraries[rng.below(libraries.size())];
  persona.gym = gyms[rng.below(gyms.size())];
  return persona;
}

}  // namespace pelican::mobility
