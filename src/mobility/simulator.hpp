// Session simulator: turns a persona into weeks of contiguous WiFi sessions.
//
// The simulation reproduces the trace semantics the paper extracts from real
// AP logs: while a student is on campus their device is always associated
// with some AP, so consecutive sessions are back-to-back in time
// (entry(t) = entry(t-1) + duration(t-1)) — the continuity assumption behind
// the time-based inversion attack. Days follow a wake → classes → meals →
// study/gym → dorm structure with persona-controlled noise.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "mobility/campus.hpp"
#include "mobility/persona.hpp"
#include "mobility/types.hpp"

namespace pelican::mobility {

struct SimulationConfig {
  int weeks = 10;  ///< The paper's trace spans September-November (~10 wks).
  /// Probability that a visit connects to the user's usual AP in a building
  /// (vs a nearby alternate). Sticky APs are what make AP-level prediction
  /// feasible at all.
  double preferred_ap_affinity = 0.85;
};

/// Simulates `config.weeks` of sessions. Deterministic given the rng state.
[[nodiscard]] Trajectory simulate(const Campus& campus, const Persona& persona,
                                  const SimulationConfig& config, Rng rng);

/// The AP a user habitually connects to inside a building (stable per
/// (user, building) pair, independent of simulation time).
[[nodiscard]] std::uint16_t preferred_ap(const Campus& campus,
                                         std::uint32_t user_id,
                                         std::uint16_t building);

}  // namespace pelican::mobility
