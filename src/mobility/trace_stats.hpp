// Per-user mobility characteristics used by the paper's analysis:
// degree of mobility (Fig. 3b: number of distinct locations visited) and
// summary statistics for sanity-checking generated traces.
#pragma once

#include <cstddef>
#include <span>

#include "mobility/types.hpp"

namespace pelican::mobility {

struct TraceStats {
  std::size_t sessions = 0;
  std::size_t distinct_buildings = 0;
  std::size_t distinct_aps = 0;
  double mean_sessions_per_day = 0.0;
  double mean_duration_minutes = 0.0;
  /// Shannon entropy (bits) of the building visit distribution — higher
  /// means less concentrated mobility.
  double building_entropy_bits = 0.0;
  /// Fraction of minutes spent in the single most-visited building.
  double top_building_time_share = 0.0;
};

[[nodiscard]] TraceStats compute_stats(const Trajectory& trajectory);

/// Degree of mobility at a spatial level: # of distinct locations visited
/// (the x-axis of Fig. 3b).
[[nodiscard]] std::size_t degree_of_mobility(const Trajectory& trajectory,
                                             SpatialLevel level);

/// True iff consecutive sessions are back-to-back (entry(t) =
/// entry(t-1) + duration(t-1)) — the continuity property the time-based
/// attack relies on.
[[nodiscard]] bool is_contiguous(const Trajectory& trajectory);

}  // namespace pelican::mobility
