#include "mobility/trace_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

namespace pelican::mobility {

namespace {

constexpr const char* kSessionHeader =
    "user_id,start_minute,duration_minutes,building,ap";
constexpr const char* kEventHeader = "device_id,timestamp_minute,ap";

/// Splits a CSV line of integer fields; throws on junk.
std::vector<std::int64_t> parse_int_row(const std::string& line,
                                        std::size_t expected_fields,
                                        std::size_t line_number) {
  std::vector<std::int64_t> fields;
  std::size_t begin = 0;
  while (begin <= line.size()) {
    const std::size_t comma = line.find(',', begin);
    const std::size_t end = comma == std::string::npos ? line.size() : comma;
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(line.data() + begin, line.data() + end, value);
    if (ec != std::errc() || ptr != line.data() + end) {
      throw std::runtime_error("CSV parse error at line " +
                               std::to_string(line_number) + ": '" + line +
                               "'");
    }
    fields.push_back(value);
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  if (fields.size() != expected_fields) {
    throw std::runtime_error("CSV field count mismatch at line " +
                             std::to_string(line_number));
  }
  return fields;
}

void expect_header(std::istream& in, const char* header) {
  std::string line;
  if (!std::getline(in, line) || line != header) {
    throw std::runtime_error(std::string("CSV header mismatch; expected '") +
                             header + "'");
  }
}

}  // namespace

void write_sessions_csv(std::ostream& out,
                        std::span<const Trajectory> trajectories) {
  out << kSessionHeader << '\n';
  for (const Trajectory& trajectory : trajectories) {
    for (const Session& s : trajectory.sessions) {
      out << trajectory.user_id << ',' << s.start_minute << ','
          << s.duration_minutes << ',' << s.building << ',' << s.ap << '\n';
    }
  }
}

void write_sessions_csv(const std::filesystem::path& path,
                        std::span<const Trajectory> trajectories) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  write_sessions_csv(out, trajectories);
  if (!out.flush()) {
    throw std::runtime_error("write failed: " + path.string());
  }
}

std::vector<Trajectory> read_sessions_csv(std::istream& in) {
  expect_header(in, kSessionHeader);
  std::map<std::uint32_t, Trajectory> by_user;
  std::string line;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = parse_int_row(line, 5, line_number);
    Session s;
    s.start_minute = fields[1];
    s.duration_minutes = static_cast<std::int32_t>(fields[2]);
    s.building = static_cast<std::uint16_t>(fields[3]);
    s.ap = static_cast<std::uint16_t>(fields[4]);
    auto& trajectory = by_user[static_cast<std::uint32_t>(fields[0])];
    trajectory.user_id = static_cast<std::uint32_t>(fields[0]);
    trajectory.sessions.push_back(s);
  }
  std::vector<Trajectory> out;
  out.reserve(by_user.size());
  for (auto& [id, trajectory] : by_user) {
    std::sort(trajectory.sessions.begin(), trajectory.sessions.end(),
              [](const Session& a, const Session& b) {
                return a.start_minute < b.start_minute;
              });
    out.push_back(std::move(trajectory));
  }
  return out;
}

std::vector<Trajectory> read_sessions_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open for reading: " + path.string());
  }
  return read_sessions_csv(in);
}

void write_events_csv(std::ostream& out, std::span<const ApEvent> events) {
  out << kEventHeader << '\n';
  for (const ApEvent& event : events) {
    out << event.device_id << ',' << event.timestamp_minute << ','
        << event.ap << '\n';
  }
}

std::vector<ApEvent> read_events_csv(std::istream& in) {
  expect_header(in, kEventHeader);
  std::vector<ApEvent> events;
  std::string line;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    const auto fields = parse_int_row(line, 3, line_number);
    events.push_back({fields[1], static_cast<std::uint32_t>(fields[0]),
                      static_cast<std::uint16_t>(fields[2])});
  }
  return events;
}

}  // namespace pelican::mobility
