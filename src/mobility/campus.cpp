#include "mobility/campus.hpp"

#include <algorithm>
#include <stdexcept>

namespace pelican::mobility {

const char* to_string(BuildingKind kind) noexcept {
  switch (kind) {
    case BuildingKind::kDorm:
      return "dorm";
    case BuildingKind::kAcademic:
      return "academic";
    case BuildingKind::kDining:
      return "dining";
    case BuildingKind::kLibrary:
      return "library";
    case BuildingKind::kGym:
      return "gym";
    case BuildingKind::kOther:
      return "other";
  }
  return "unknown";
}

Campus Campus::generate(const CampusConfig& config, std::uint64_t seed) {
  if (config.buildings == 0 || config.buildings > 10000) {
    throw std::invalid_argument("Campus: buildings must be in [1, 10000]");
  }
  if (config.mean_aps_per_building == 0) {
    throw std::invalid_argument("Campus: need at least one AP per building");
  }
  const double fraction_total =
      config.dorm_fraction + config.academic_fraction +
      config.dining_fraction + config.library_fraction + config.gym_fraction;
  if (fraction_total > 1.0 + 1e-9) {
    throw std::invalid_argument("Campus: kind fractions exceed 1");
  }

  Rng rng(split_mix64(seed ^ 0xCA11AB1E5EEDULL));
  Campus campus;
  campus.by_kind_.resize(6);

  const auto n = config.buildings;
  // Guarantee at least one of each essential kind even at tiny scales.
  std::vector<BuildingKind> kinds;
  kinds.reserve(n);
  auto count_for = [&](double fraction, std::size_t minimum) {
    return std::max<std::size_t>(
        minimum, static_cast<std::size_t>(fraction * static_cast<double>(n)));
  };
  const std::size_t dorms = count_for(config.dorm_fraction, 1);
  const std::size_t academic = count_for(config.academic_fraction, 1);
  const std::size_t dining = count_for(config.dining_fraction, 1);
  const std::size_t library = count_for(config.library_fraction, 1);
  const std::size_t gym = count_for(config.gym_fraction, 1);
  if (dorms + academic + dining + library + gym > n) {
    throw std::invalid_argument(
        "Campus: too few buildings for one of each kind");
  }
  for (std::size_t i = 0; i < dorms; ++i) kinds.push_back(BuildingKind::kDorm);
  for (std::size_t i = 0; i < academic; ++i) {
    kinds.push_back(BuildingKind::kAcademic);
  }
  for (std::size_t i = 0; i < dining; ++i) {
    kinds.push_back(BuildingKind::kDining);
  }
  for (std::size_t i = 0; i < library; ++i) {
    kinds.push_back(BuildingKind::kLibrary);
  }
  for (std::size_t i = 0; i < gym; ++i) kinds.push_back(BuildingKind::kGym);
  while (kinds.size() < n) kinds.push_back(BuildingKind::kOther);
  rng.shuffle(kinds);

  campus.buildings_.reserve(n);
  std::uint16_t next_ap = 0;
  for (std::size_t id = 0; id < n; ++id) {
    Building b;
    b.kind = kinds[id];
    // AP count varies around the mean; large public buildings get more.
    const double mean = static_cast<double>(config.mean_aps_per_building);
    const double boost =
        (b.kind == BuildingKind::kLibrary || b.kind == BuildingKind::kDining)
            ? 1.5
            : 1.0;
    const auto count = static_cast<std::uint16_t>(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(rng.normal(mean * boost, mean * 0.3))));
    b.first_ap = next_ap;
    b.ap_count = count;
    next_ap = static_cast<std::uint16_t>(next_ap + count);
    campus.by_kind_[static_cast<std::size_t>(b.kind)].push_back(
        static_cast<std::uint16_t>(id));
    for (std::uint16_t a = 0; a < count; ++a) {
      campus.ap_to_building_.push_back(static_cast<std::uint16_t>(id));
    }
    campus.buildings_.push_back(b);
  }
  campus.num_aps_ = next_ap;
  return campus;
}

std::uint16_t Campus::building_of_ap(std::uint16_t ap) const {
  if (ap >= ap_to_building_.size()) {
    throw std::out_of_range("Campus::building_of_ap: bad AP id");
  }
  return ap_to_building_[ap];
}

}  // namespace pelican::mobility
