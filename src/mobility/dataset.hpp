// Dataset pipeline: trajectories -> sliding windows of discrete features.
//
// The prediction task follows Section IV-A exactly:
//   M : (x_{t-2}, x_{t-1}) -> l_t,   x = [entry-bin, duration-bin, loc, dow]
// Each timestep is described as a tuple of discretized features; the
// EncodingSpec fixes the one-hot block layout used by the models layer. The
// location block always spans the *full* campus domain (all buildings or all
// APs) regardless of which locations a particular user visits — the "domain
// equalization" of Section III-A3 that makes transfer learning between the
// multi-user source domain and single-user target domains trivial.
//
// This header is nn-free on purpose: the mobility layer depends only on
// common. The one-hot materialization lives one layer up, in
// models/window_dataset.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mobility/campus.hpp"
#include "mobility/types.hpp"

namespace pelican::mobility {

inline constexpr std::size_t kWindowSteps = 2;  // (x_{t-2}, x_{t-1})

/// Layout of the one-hot encoding of a timestep. Blocks, in order:
/// entry bin (48) | duration bin (24) | location (num_locations) | dow (7).
struct EncodingSpec {
  SpatialLevel level = SpatialLevel::kBuilding;
  std::size_t num_locations = 0;

  static EncodingSpec for_campus(const Campus& campus, SpatialLevel level) {
    return {level, campus.num_locations(level)};
  }

  [[nodiscard]] std::size_t entry_offset() const noexcept { return 0; }
  [[nodiscard]] std::size_t duration_offset() const noexcept {
    return kEntryBins;
  }
  [[nodiscard]] std::size_t location_offset() const noexcept {
    return kEntryBins + kDurationBins;
  }
  [[nodiscard]] std::size_t day_offset() const noexcept {
    return location_offset() + num_locations;
  }
  [[nodiscard]] std::size_t input_dim() const noexcept {
    return day_offset() + kDaysPerWeek;
  }

  bool operator==(const EncodingSpec&) const = default;
};

/// Discretized features of one timestep.
struct StepFeatures {
  std::uint8_t entry_bin = 0;
  std::uint8_t duration_bin = 0;
  std::uint8_t day_of_week = 0;
  std::uint16_t location = 0;

  bool operator==(const StepFeatures&) const = default;
};

/// One supervised sample: two known steps plus the next location label.
/// `start_minute` (of the oldest step) is kept for week-based subsetting
/// (Table IV) and train/test splitting.
struct Window {
  StepFeatures steps[kWindowSteps];
  std::uint16_t next_location = 0;
  std::int64_t start_minute = 0;

  bool operator==(const Window&) const = default;
};

/// Extracts discretized features from a session at a spatial level.
[[nodiscard]] StepFeatures make_step(const Session& session,
                                     SpatialLevel level);

/// Slides a 3-session window over the trajectory.
[[nodiscard]] std::vector<Window> make_windows(const Trajectory& trajectory,
                                               SpatialLevel level);

/// Time-ordered train/test split (the paper uses 80/20).
struct WindowSplit {
  std::vector<Window> train;
  std::vector<Window> test;
};
[[nodiscard]] WindowSplit split_windows(std::span<const Window> windows,
                                        double train_fraction = 0.8);

/// Windows whose first step falls in the first `weeks` weeks (Table IV
/// trains personalized models on 2/4/6/8-week prefixes).
[[nodiscard]] std::vector<Window> windows_in_first_weeks(
    std::span<const Window> windows, int weeks);

/// Marginal distribution of the sensitive variable (location) in a window
/// set: how often each location appears as a *historical* step. This is the
/// prior "p" of the inversion attack (Section III-B2).
[[nodiscard]] std::vector<double> location_marginals(
    std::span<const Window> windows, std::size_t num_locations);

}  // namespace pelican::mobility
