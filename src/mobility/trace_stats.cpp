#include "mobility/trace_stats.hpp"

#include <cmath>
#include <map>
#include <set>

namespace pelican::mobility {

TraceStats compute_stats(const Trajectory& trajectory) {
  TraceStats stats;
  stats.sessions = trajectory.sessions.size();
  if (trajectory.sessions.empty()) return stats;

  std::set<std::uint16_t> buildings, aps;
  std::map<std::uint16_t, double> minutes_by_building;
  double total_minutes = 0.0;
  double total_duration = 0.0;
  for (const Session& s : trajectory.sessions) {
    buildings.insert(s.building);
    aps.insert(s.ap);
    minutes_by_building[s.building] += s.duration_minutes;
    total_minutes += s.duration_minutes;
    total_duration += s.duration_minutes;
  }
  stats.distinct_buildings = buildings.size();
  stats.distinct_aps = aps.size();
  stats.mean_duration_minutes =
      total_duration / static_cast<double>(stats.sessions);

  const std::int64_t span = trajectory.sessions.back().end_minute() -
                            trajectory.sessions.front().start_minute;
  const double days =
      std::max(1.0, static_cast<double>(span) / kMinutesPerDay);
  stats.mean_sessions_per_day = static_cast<double>(stats.sessions) / days;

  double entropy = 0.0;
  double top_share = 0.0;
  for (const auto& [building, minutes] : minutes_by_building) {
    const double p = minutes / total_minutes;
    if (p > 0.0) entropy -= p * std::log2(p);
    top_share = std::max(top_share, p);
  }
  stats.building_entropy_bits = entropy;
  stats.top_building_time_share = top_share;
  return stats;
}

std::size_t degree_of_mobility(const Trajectory& trajectory,
                               SpatialLevel level) {
  std::set<std::uint16_t> distinct;
  for (const Session& s : trajectory.sessions) {
    distinct.insert(s.location(level));
  }
  return distinct.size();
}

bool is_contiguous(const Trajectory& trajectory) {
  for (std::size_t i = 1; i < trajectory.sessions.size(); ++i) {
    if (trajectory.sessions[i].start_minute !=
        trajectory.sessions[i - 1].end_minute()) {
      return false;
    }
  }
  return true;
}

}  // namespace pelican::mobility
