#include "mobility/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace pelican::mobility {

StepFeatures make_step(const Session& session, SpatialLevel level) {
  StepFeatures step;
  step.entry_bin = static_cast<std::uint8_t>(session.entry_bin());
  step.duration_bin = static_cast<std::uint8_t>(session.duration_bin());
  step.day_of_week = static_cast<std::uint8_t>(session.day_of_week());
  step.location = session.location(level);
  return step;
}

std::vector<Window> make_windows(const Trajectory& trajectory,
                                 SpatialLevel level) {
  std::vector<Window> windows;
  const auto& sessions = trajectory.sessions;
  if (sessions.size() < 3) return windows;
  windows.reserve(sessions.size() - 2);
  for (std::size_t i = 0; i + 2 < sessions.size(); ++i) {
    Window window;
    window.steps[0] = make_step(sessions[i], level);
    window.steps[1] = make_step(sessions[i + 1], level);
    window.next_location = sessions[i + 2].location(level);
    window.start_minute = sessions[i].start_minute;
    windows.push_back(window);
  }
  return windows;
}

WindowSplit split_windows(std::span<const Window> windows,
                          double train_fraction) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("split_windows: fraction must be in (0, 1)");
  }
  WindowSplit split;
  const auto cut = static_cast<std::size_t>(
      static_cast<double>(windows.size()) * train_fraction);
  split.train.assign(windows.begin(),
                     windows.begin() + static_cast<std::ptrdiff_t>(cut));
  split.test.assign(windows.begin() + static_cast<std::ptrdiff_t>(cut),
                    windows.end());
  return split;
}

std::vector<Window> windows_in_first_weeks(std::span<const Window> windows,
                                           int weeks) {
  if (weeks <= 0) {
    throw std::invalid_argument("windows_in_first_weeks: weeks must be > 0");
  }
  const std::int64_t limit =
      static_cast<std::int64_t>(weeks) * kMinutesPerWeek;
  std::vector<Window> subset;
  for (const Window& w : windows) {
    if (w.start_minute < limit) subset.push_back(w);
  }
  return subset;
}

std::vector<double> location_marginals(std::span<const Window> windows,
                                       std::size_t num_locations) {
  std::vector<double> counts(num_locations, 0.0);
  double total = 0.0;
  for (const Window& w : windows) {
    for (const StepFeatures& step : w.steps) {
      if (step.location >= num_locations) {
        throw std::out_of_range("location_marginals: location out of domain");
      }
      counts[step.location] += 1.0;
      total += 1.0;
    }
  }
  if (total > 0.0) {
    for (double& c : counts) c /= total;
  }
  return counts;
}

}  // namespace pelican::mobility
