// Raw WiFi AP event log handling — the paper's preprocessing front door.
//
// Section IV-A: "Each AP event includes a timestamp, event type, MAC address
// of the device and the AP... Using well known methods for extracting device
// trajectories from WiFi logs, we extract fine-grained mobility trajectory".
// This module implements that extraction so the library can consume real AP
// logs, not just the synthetic simulator: association events are grouped per
// device, AP flaps shorter than a threshold are merged, and gaps are closed
// to the session-contiguity invariant the attacks rely on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mobility/campus.hpp"
#include "mobility/types.hpp"

namespace pelican::mobility {

/// One raw AP log record. Only association events carry information here;
/// disassociation is implied by the next association (devices on a campus
/// network are effectively always associated somewhere while present).
struct ApEvent {
  std::int64_t timestamp_minute = 0;
  std::uint32_t device_id = 0;
  std::uint16_t ap = 0;

  bool operator==(const ApEvent&) const = default;
};

struct SessionizeConfig {
  /// Successive same-building associations closer than this are merged into
  /// one session (AP flapping / roaming between rooms).
  int merge_below_minutes = 10;
  /// Sessions shorter than this after merging are dropped as noise.
  int min_session_minutes = 5;
  /// A device silent for longer than this is treated as having left campus;
  /// the trajectory is split so no fake "session" spans the absence.
  int absence_gap_minutes = 8 * 60;
};

/// Extracts per-device trajectories from a raw event log. Events may be
/// unordered; they are grouped by device and sorted by time. Each session's
/// duration runs until the device's next association (or the end of its
/// presence window). The result satisfies is_contiguous() within each
/// presence period.
[[nodiscard]] std::vector<Trajectory> sessionize(
    std::span<const ApEvent> events, const Campus& campus,
    const SessionizeConfig& config = {});

/// Inverse of sessionize for testing and export: emits one association
/// event at each session start.
[[nodiscard]] std::vector<ApEvent> to_events(const Trajectory& trajectory);

}  // namespace pelican::mobility
