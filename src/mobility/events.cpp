#include "mobility/events.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pelican::mobility {

std::vector<Trajectory> sessionize(std::span<const ApEvent> events,
                                   const Campus& campus,
                                   const SessionizeConfig& config) {
  if (config.merge_below_minutes < 0 || config.min_session_minutes < 0 ||
      config.absence_gap_minutes <= 0) {
    throw std::invalid_argument("sessionize: negative thresholds");
  }

  // Group events per device, time-sorted.
  std::map<std::uint32_t, std::vector<ApEvent>> per_device;
  for (const ApEvent& event : events) {
    if (event.ap >= campus.num_aps()) {
      throw std::out_of_range("sessionize: AP id outside campus");
    }
    per_device[event.device_id].push_back(event);
  }

  std::vector<Trajectory> trajectories;
  trajectories.reserve(per_device.size());

  for (auto& [device_id, device_events] : per_device) {
    std::sort(device_events.begin(), device_events.end(),
              [](const ApEvent& a, const ApEvent& b) {
                return a.timestamp_minute < b.timestamp_minute;
              });

    Trajectory trajectory;
    trajectory.user_id = device_id;

    // Build raw sessions: each association lasts until the next one (or the
    // device's departure, bounded by the absence gap).
    std::vector<Session> raw;
    for (std::size_t i = 0; i < device_events.size(); ++i) {
      const ApEvent& event = device_events[i];
      std::int64_t end;
      if (i + 1 < device_events.size()) {
        const std::int64_t next = device_events[i + 1].timestamp_minute;
        end = (next - event.timestamp_minute > config.absence_gap_minutes)
                  ? event.timestamp_minute + config.absence_gap_minutes
                  : next;
      } else {
        // Last event: close the session at the absence bound.
        end = event.timestamp_minute + config.absence_gap_minutes;
      }
      Session session;
      session.start_minute = event.timestamp_minute;
      session.duration_minutes = static_cast<std::int32_t>(
          end - event.timestamp_minute);
      session.ap = event.ap;
      session.building = campus.building_of_ap(event.ap);
      if (session.duration_minutes > 0) raw.push_back(session);
    }

    // Merge same-building flaps: a short hop back to the same building is
    // one continuous stay as far as mobility semantics are concerned.
    std::vector<Session> merged;
    for (const Session& session : raw) {
      if (!merged.empty() && merged.back().building == session.building &&
          session.start_minute == merged.back().end_minute() &&
          session.duration_minutes < config.merge_below_minutes) {
        merged.back().duration_minutes += session.duration_minutes;
        continue;
      }
      merged.push_back(session);
    }
    // Second pass: absorb too-short sessions into the preceding stay when
    // contiguous (noise suppression), else drop them.
    std::vector<Session> cleaned;
    for (const Session& session : merged) {
      if (session.duration_minutes >= config.min_session_minutes) {
        cleaned.push_back(session);
        continue;
      }
      if (!cleaned.empty() &&
          cleaned.back().end_minute() == session.start_minute) {
        cleaned.back().duration_minutes += session.duration_minutes;
      }
      // else: isolated blip, dropped
    }
    trajectory.sessions = std::move(cleaned);
    if (!trajectory.sessions.empty()) {
      trajectories.push_back(std::move(trajectory));
    }
  }
  return trajectories;
}

std::vector<ApEvent> to_events(const Trajectory& trajectory) {
  std::vector<ApEvent> events;
  events.reserve(trajectory.sessions.size());
  for (const Session& session : trajectory.sessions) {
    events.push_back(
        {session.start_minute, trajectory.user_id, session.ap});
  }
  return events;
}

}  // namespace pelican::mobility
