// Synthetic campus topology: buildings of different kinds, each hosting a
// block of WiFi access points.
//
// This substitutes for the paper's real campus (156 buildings, 5104 APs):
// the attacks and defenses depend only on the topology's *shape* — a mix of
// dorms, academic and social buildings with ~20 APs each — which the
// generator reproduces at a configurable scale.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mobility/types.hpp"

namespace pelican::mobility {

enum class BuildingKind : std::uint8_t {
  kDorm = 0,
  kAcademic,
  kDining,
  kLibrary,
  kGym,
  kOther,
};

[[nodiscard]] const char* to_string(BuildingKind kind) noexcept;

struct Building {
  BuildingKind kind = BuildingKind::kOther;
  std::uint16_t first_ap = 0;  ///< First AP id in this building's block.
  std::uint16_t ap_count = 0;
};

struct CampusConfig {
  std::size_t buildings = 40;
  std::size_t mean_aps_per_building = 10;
  // Fractions of each building kind; remainder becomes kOther. The defaults
  // roughly mirror a residential campus.
  double dorm_fraction = 0.30;
  double academic_fraction = 0.40;
  double dining_fraction = 0.10;
  double library_fraction = 0.05;
  double gym_fraction = 0.05;
};

/// Immutable campus map shared by all personas and simulations.
class Campus {
 public:
  /// Deterministically generates a campus from a seed.
  static Campus generate(const CampusConfig& config, std::uint64_t seed);

  [[nodiscard]] std::size_t num_buildings() const noexcept {
    return buildings_.size();
  }
  [[nodiscard]] std::size_t num_aps() const noexcept { return num_aps_; }

  [[nodiscard]] const Building& building(std::size_t id) const {
    return buildings_.at(id);
  }

  /// All building ids of one kind (possibly empty).
  [[nodiscard]] std::span<const std::uint16_t> of_kind(
      BuildingKind kind) const noexcept {
    return by_kind_[static_cast<std::size_t>(kind)];
  }

  /// Building that hosts the given AP.
  [[nodiscard]] std::uint16_t building_of_ap(std::uint16_t ap) const;

  /// Number of locations at the given spatial level.
  [[nodiscard]] std::size_t num_locations(SpatialLevel level) const noexcept {
    return level == SpatialLevel::kBuilding ? num_buildings() : num_aps();
  }

 private:
  std::vector<Building> buildings_;
  std::vector<std::vector<std::uint16_t>> by_kind_;
  std::vector<std::uint16_t> ap_to_building_;
  std::size_t num_aps_ = 0;
};

}  // namespace pelican::mobility
