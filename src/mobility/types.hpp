// Core mobility-trace types and the paper's discretization scheme
// (Section IV-A): session-entry in 30-minute bins, session-duration in
// 10-minute bins capped at 4 hours, location at building or AP granularity,
// and day-of-week.
#pragma once

#include <cstdint>
#include <vector>

namespace pelican::mobility {

inline constexpr int kMinutesPerDay = 24 * 60;
inline constexpr int kMinutesPerEntryBin = 30;
inline constexpr int kMinutesPerDurationBin = 10;
inline constexpr int kMaxDurationMinutes = 240;  // durations capped at 4 h
inline constexpr int kEntryBins = kMinutesPerDay / kMinutesPerEntryBin;  // 48
inline constexpr int kDurationBins =
    kMaxDurationMinutes / kMinutesPerDurationBin;  // 24
inline constexpr int kDaysPerWeek = 7;
inline constexpr int kMinutesPerWeek = kDaysPerWeek * kMinutesPerDay;

/// Location granularity of a model / experiment (Fig. 3a contrasts the two).
enum class SpatialLevel : std::uint8_t { kBuilding = 0, kAp = 1 };

[[nodiscard]] constexpr const char* to_string(SpatialLevel level) noexcept {
  return level == SpatialLevel::kBuilding ? "bldg" : "ap";
}

/// One contiguous WiFi association period of a device. WiFi sessions are
/// back-to-back while the user is on campus, which is the continuity
/// property the time-based inversion attack exploits.
struct Session {
  std::int64_t start_minute = 0;  ///< Absolute minutes since trace start.
  std::int32_t duration_minutes = 0;  ///< True (uncapped) duration.
  std::uint16_t building = 0;
  std::uint16_t ap = 0;  ///< Campus-global AP id.

  /// 30-minute slot within the day, 0..47.
  [[nodiscard]] int entry_bin() const noexcept {
    return static_cast<int>((start_minute % kMinutesPerDay) /
                            kMinutesPerEntryBin);
  }

  /// 10-minute duration bin, capped at 4 h, 0..23.
  [[nodiscard]] int duration_bin() const noexcept {
    const int capped =
        duration_minutes >= kMaxDurationMinutes
            ? kMaxDurationMinutes - 1
            : (duration_minutes < 0 ? 0 : duration_minutes);
    return capped / kMinutesPerDurationBin;
  }

  /// 0 = Monday ... 6 = Sunday (trace starts on a Monday).
  [[nodiscard]] int day_of_week() const noexcept {
    return static_cast<int>((start_minute / kMinutesPerDay) % kDaysPerWeek);
  }

  [[nodiscard]] std::int64_t end_minute() const noexcept {
    return start_minute + duration_minutes;
  }

  /// Location id at the requested spatial level.
  [[nodiscard]] std::uint16_t location(SpatialLevel level) const noexcept {
    return level == SpatialLevel::kBuilding ? building : ap;
  }
};

/// A single user's time-ordered session history.
struct Trajectory {
  std::uint32_t user_id = 0;
  std::vector<Session> sessions;
};

}  // namespace pelican::mobility
