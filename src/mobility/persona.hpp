// Per-user behavioral profile. A persona is what makes one student's traces
// different from another's: dorm assignment, a weekly class schedule,
// dining/library/gym habits, and two scalar knobs the paper's analysis
// varies across users —
//   * routine_strength: how reliably the schedule is followed (drives the
//     mobility-predictability spectrum of Fig. 3c), and
//   * outing_rate: propensity for unscheduled visits (drives the
//     degree-of-mobility spectrum of Fig. 3b).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "mobility/campus.hpp"

namespace pelican::mobility {

/// A recurring weekly commitment (e.g. a class or a lab).
struct ClassSlot {
  std::uint8_t day = 0;        ///< 0 = Monday .. 6 = Sunday.
  std::uint16_t start_minute = 0;  ///< Minute within the day.
  std::uint16_t duration_minutes = 75;
  std::uint16_t building = 0;
};

struct Persona {
  std::uint32_t user_id = 0;
  std::uint16_t dorm = 0;
  std::vector<ClassSlot> schedule;        ///< Sorted by (day, start).
  std::vector<std::uint16_t> dining_halls;  ///< Preferred, most-liked first.
  std::uint16_t library = 0;
  std::uint16_t gym = 0;
  double routine_strength = 0.8;  ///< P(attend a scheduled slot).
  double outing_rate = 0.1;       ///< P(unscheduled extra visit per gap).
  double gym_rate = 0.2;          ///< P(evening gym visit).
  double study_rate = 0.5;        ///< P(evening library visit).

  /// Buildings this persona ever visits on purpose (dorm, classes, dining,
  /// library, gym). The target domain D_t of Section III-A3.
  [[nodiscard]] std::vector<std::uint16_t> home_domain() const;
};

struct PersonaConfig {
  std::size_t min_courses = 3;
  std::size_t max_courses = 6;
  double min_routine = 0.55;
  double max_routine = 0.95;
  double min_outing = 0.02;
  double max_outing = 0.35;
};

/// Deterministically generates a persona for `user_id` on `campus`.
[[nodiscard]] Persona generate_persona(const Campus& campus,
                                       std::uint32_t user_id,
                                       const PersonaConfig& config, Rng& rng);

}  // namespace pelican::mobility
