// CSV import/export for trajectories and raw AP event logs, so the library
// can exchange traces with external tools (and so users with real WiFi logs
// can feed them into the pipeline after anonymization).
//
// Formats (header line required):
//   sessions:  user_id,start_minute,duration_minutes,building,ap
//   events:    device_id,timestamp_minute,ap
#pragma once

#include <filesystem>
#include <iosfwd>
#include <vector>

#include "mobility/events.hpp"
#include "mobility/types.hpp"

namespace pelican::mobility {

/// Writes trajectories as session CSV rows (one file may hold many users).
void write_sessions_csv(std::ostream& out,
                        std::span<const Trajectory> trajectories);
void write_sessions_csv(const std::filesystem::path& path,
                        std::span<const Trajectory> trajectories);

/// Reads a session CSV back into per-user trajectories (grouped by user_id,
/// ordered by start time). Throws SerializeError-style std::runtime_error on
/// malformed rows.
[[nodiscard]] std::vector<Trajectory> read_sessions_csv(std::istream& in);
[[nodiscard]] std::vector<Trajectory> read_sessions_csv(
    const std::filesystem::path& path);

/// Raw AP event logs in the paper's schema.
void write_events_csv(std::ostream& out, std::span<const ApEvent> events);
[[nodiscard]] std::vector<ApEvent> read_events_csv(std::istream& in);

}  // namespace pelican::mobility
