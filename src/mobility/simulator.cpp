#include "mobility/simulator.hpp"

#include <algorithm>
#include <vector>

namespace pelican::mobility {

namespace {

/// A planned visit within one day; sessions are derived from the plan.
struct Visit {
  int start = 0;  // minute within day
  int end = 0;
  std::uint16_t building = 0;
};

/// Picks the AP for a visit: usually the preferred one, sometimes a
/// neighbor (people sit in different rooms).
std::uint16_t pick_ap(const Campus& campus, const Persona& persona,
                      std::uint16_t building, double affinity, Rng& rng) {
  const Building& b = campus.building(building);
  const std::uint16_t base = preferred_ap(campus, persona.user_id, building);
  if (b.ap_count <= 1 || rng.chance(affinity)) return base;
  const std::uint16_t offset = static_cast<std::uint16_t>(
      1 + rng.below(static_cast<std::uint64_t>(b.ap_count - 1)));
  return static_cast<std::uint16_t>(
      b.first_ap + (base - b.first_ap + offset) % b.ap_count);
}

/// Appends a visit, clamping to the day and skipping empty intervals.
void push_visit(std::vector<Visit>& plan, int start, int end,
                std::uint16_t building) {
  start = std::max(start, 0);
  end = std::min(end, kMinutesPerDay);
  if (end <= start) return;
  plan.push_back({start, end, building});
}

std::uint16_t random_outing_target(const Campus& campus,
                                   const Persona& persona, Rng& rng) {
  // Outings favor social buildings but can be anywhere on campus.
  if (rng.chance(0.4)) {
    const auto others = campus.of_kind(BuildingKind::kOther);
    if (!others.empty()) return others[rng.below(others.size())];
  }
  if (rng.chance(0.3) && !persona.dining_halls.empty()) {
    return persona.dining_halls[rng.below(persona.dining_halls.size())];
  }
  return static_cast<std::uint16_t>(rng.below(campus.num_buildings()));
}

/// Builds the day's visit plan: anchored on attended classes, with meals,
/// study/gym and random outings filled into the gaps, dorm elsewhere.
std::vector<Visit> plan_day(const Campus& campus, const Persona& persona,
                            int day_of_week, Rng& rng) {
  std::vector<Visit> anchors;

  const bool weekend = day_of_week >= 5;

  // Attended classes are immovable anchors.
  for (const auto& slot : persona.schedule) {
    if (slot.day != day_of_week) continue;
    if (!rng.chance(persona.routine_strength)) continue;  // skipped class
    push_visit(anchors, slot.start_minute,
               slot.start_minute + slot.duration_minutes, slot.building);
  }

  // Lunch and dinner: routine users eat at consistent halls and times.
  if (!persona.dining_halls.empty()) {
    const std::uint16_t hall =
        persona.dining_halls[rng.chance(0.8)
                                 ? 0
                                 : rng.below(persona.dining_halls.size())];
    if (rng.chance(weekend ? 0.5 : 0.85)) {
      const int lunch = 11 * 60 + 30 +
                        static_cast<int>(rng.below(90));  // 11:30-13:00
      push_visit(anchors, lunch, lunch + 30 + static_cast<int>(rng.below(31)),
                 hall);
    }
    if (rng.chance(weekend ? 0.6 : 0.8)) {
      const int dinner =
          17 * 60 + 30 + static_cast<int>(rng.below(90));  // 17:30-19:00
      push_visit(anchors, dinner,
                 dinner + 30 + static_cast<int>(rng.below(31)), hall);
    }
  }

  // Evening study session or gym.
  if (!weekend && rng.chance(persona.study_rate)) {
    const int start = 19 * 60 + 30 + static_cast<int>(rng.below(60));
    push_visit(anchors, start, start + 60 + static_cast<int>(rng.below(121)),
               persona.library);
  }
  if (rng.chance(persona.gym_rate)) {
    const int start = 16 * 60 + static_cast<int>(rng.below(180));
    push_visit(anchors, start, start + 45 + static_cast<int>(rng.below(46)),
               persona.gym);
  }

  // Unscheduled outings.
  const int outings = rng.chance(persona.outing_rate * (weekend ? 2.0 : 1.0))
                          ? 1 + static_cast<int>(rng.below(2))
                          : 0;
  for (int i = 0; i < outings; ++i) {
    const int start = 10 * 60 + static_cast<int>(rng.below(10 * 60));
    push_visit(anchors, start, start + 20 + static_cast<int>(rng.below(101)),
               random_outing_target(campus, persona, rng));
  }

  // Resolve overlaps deterministically: earlier start wins, later visits are
  // pushed back (students are in one place at a time).
  std::sort(anchors.begin(), anchors.end(), [](const Visit& a,
                                               const Visit& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.end < b.end;
  });
  std::vector<Visit> resolved;
  for (Visit v : anchors) {
    if (!resolved.empty() && v.start < resolved.back().end) {
      const int shift = resolved.back().end - v.start;
      v.start += shift;
      v.end += shift;
    }
    if (v.start >= kMinutesPerDay) continue;
    v.end = std::min(v.end, kMinutesPerDay);
    if (v.end > v.start) resolved.push_back(v);
  }

  // Fill every gap with dorm time -> contiguous coverage of the whole day.
  std::vector<Visit> plan;
  int cursor = 0;
  for (const Visit& v : resolved) {
    if (v.start > cursor) {
      push_visit(plan, cursor, v.start, persona.dorm);
    }
    plan.push_back(v);
    cursor = v.end;
  }
  if (cursor < kMinutesPerDay) {
    push_visit(plan, cursor, kMinutesPerDay, persona.dorm);
  }

  // Merge adjacent same-building visits (e.g. dorm-dorm around midnight).
  std::vector<Visit> merged;
  for (const Visit& v : plan) {
    if (!merged.empty() && merged.back().building == v.building &&
        merged.back().end == v.start) {
      merged.back().end = v.end;
    } else {
      merged.push_back(v);
    }
  }
  return merged;
}

}  // namespace

std::uint16_t preferred_ap(const Campus& campus, std::uint32_t user_id,
                           std::uint16_t building) {
  const Building& b = campus.building(building);
  const std::uint64_t h =
      split_mix64((static_cast<std::uint64_t>(user_id) << 16) ^ building);
  return static_cast<std::uint16_t>(b.first_ap + h % b.ap_count);
}

Trajectory simulate(const Campus& campus, const Persona& persona,
                    const SimulationConfig& config, Rng rng) {
  Trajectory trajectory;
  trajectory.user_id = persona.user_id;

  const int days = config.weeks * kDaysPerWeek;
  for (int day = 0; day < days; ++day) {
    const int dow = day % kDaysPerWeek;
    const std::int64_t day_base = static_cast<std::int64_t>(day) *
                                  kMinutesPerDay;
    for (const Visit& visit : plan_day(campus, persona, dow, rng)) {
      Session session;
      session.start_minute = day_base + visit.start;
      session.duration_minutes = visit.end - visit.start;
      session.building = visit.building;
      session.ap = pick_ap(campus, persona, visit.building,
                           config.preferred_ap_affinity, rng);
      trajectory.sessions.push_back(session);
    }
  }
  return trajectory;
}

}  // namespace pelican::mobility
