// Figure 5c — impact of the privacy layer across spatial levels: percent
// reduction in leakage vs top-k at building and AP granularity.
//
// Paper shape: the reduction is larger at the coarse (building) level than
// the fine (AP) level for k > 1, and the top-1 reduction is bounded at 0
// for the spatial level where the attack degenerates to the prior.
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

namespace {

using namespace pelican;
using namespace pelican::bench;

std::vector<double> reductions(Pipeline& pipeline,
                               const std::vector<std::size_t>& ks) {
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = ks;

  const auto base =
      run_attack_over_users(pipeline, config, attack::PriorKind::kTrue, 1.0);
  const auto defended = run_attack_over_users(
      pipeline, config, attack::PriorKind::kTrue,
      core::PrivacyLayer::kStrongTemperature);
  std::vector<double> out(ks.size(), 0.0);
  for (std::size_t i = 0; i < ks.size(); ++i) {
    if (base.mean_topk[i] > 0.0) {
      out[i] = std::max(0.0, 100.0 *
                                 (base.mean_topk[i] - defended.mean_topk[i]) /
                                 base.mean_topk[i]);
    }
  }
  return out;
}

}  // namespace

int main() {
  const auto scale = ScaleConfig::from_env();
  Pipeline buildings(scale, mobility::SpatialLevel::kBuilding);
  Pipeline aps(scale, mobility::SpatialLevel::kAp);
  print_banner(std::cout,
               "Figure 5c: privacy-layer reduction by spatial level "
               "(A1, T=1e-3)");
  print_scale_banner(buildings);

  const std::vector<std::size_t> ks = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto bldg = reductions(buildings, ks);
  const auto ap = reductions(aps, ks);

  Table table({"top-k", "building reduction %", "AP reduction %", "paper"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    table.add_row({std::to_string(ks[i]), Table::num(bldg[i], 1),
                   Table::num(ap[i], 1),
                   i == 0 ? "top-1 reduction bounded at 0" : ""});
  }
  std::cout << table;

  double bldg_mean = 0.0, ap_mean = 0.0;
  for (std::size_t i = 1; i < ks.size(); ++i) {
    bldg_mean += bldg[i];
    ap_mean += ap[i];
  }
  std::cout << "mean reduction for k>1: building "
            << Table::num(bldg_mean / 9.0, 1) << "% vs AP "
            << Table::num(ap_mean / 9.0, 1) << "%\n";
  std::cout << "shape (defense effective at both levels): "
            << ((bldg_mean / 9.0) > 10.0 ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
