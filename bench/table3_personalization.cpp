// Table III — aggregate train/test accuracy of the four personalization
// methods at building and AP level.
//
// Paper shape: Reuse is worst everywhere; the transfer-learning methods win
// on test accuracy; TL FE shows the smallest train-test gap (least
// overfitting); AP level is much harder than building level.
#include <iostream>

#include "common/table.hpp"
#include "harness/pipeline.hpp"
#include "nn/metrics.hpp"
#include "models/window_dataset.hpp"

namespace {

using namespace pelican;
using namespace pelican::bench;

struct MethodRow {
  double train_top1 = 0.0;
  double test_top1 = 0.0;
  double test_top2 = 0.0;
  double test_top3 = 0.0;
};

MethodRow evaluate_method(Pipeline& pipeline,
                          models::PersonalizationMethod method,
                          std::size_t user_count) {
  MethodRow row;
  const std::vector<std::size_t> ks = {1, 2, 3};
  for (std::size_t u = 0; u < user_count; ++u) {
    auto personalized = pipeline.personalized(u, method);
    auto& user = pipeline.users()[u];
    const models::WindowDataset train(user.train_windows, pipeline.spec());
    const models::WindowDataset test(user.test_windows, pipeline.spec());
    row.train_top1 += nn::topk_accuracy(personalized.model, train, 1);
    const auto test_accs = nn::topk_accuracies(personalized.model, test, ks);
    row.test_top1 += test_accs[0];
    row.test_top2 += test_accs[1];
    row.test_top3 += test_accs[2];
  }
  const double n = static_cast<double>(user_count);
  row.train_top1 *= 100.0 / n;
  row.test_top1 *= 100.0 / n;
  row.test_top2 *= 100.0 / n;
  row.test_top3 *= 100.0 / n;
  return row;
}

/// Paper's Table III values for the reference column.
const char* paper_row(mobility::SpatialLevel level,
                      models::PersonalizationMethod method) {
  using M = models::PersonalizationMethod;
  if (level == mobility::SpatialLevel::kBuilding) {
    switch (method) {
      case M::kReuse:
        return "52.2 / 53.0 / 60.1 / 63.7";
      case M::kFreshLstm:
        return "70.3 / 60.0 / 72.0 / 78.6";
      case M::kFeatureExtraction:
        return "67.8 / 61.2 / 72.6 / 79.1";
      case M::kFineTuning:
        return "76.5 / 60.7 / 73.2 / 79.6";
    }
  } else {
    switch (method) {
      case M::kReuse:
        return "27.0 / 28.0 / 32.2 / 34.4";
      case M::kFreshLstm:
        return "51.4 / 44.4 / 57.6 / 63.4";
      case M::kFeatureExtraction:
        return "60.6 / 48.5 / 61.9 / 66.5";
      case M::kFineTuning:
        return "68.4 / 47.9 / 62.3 / 67.4";
    }
  }
  return "";
}

void run_level(const ScaleConfig& scale, mobility::SpatialLevel level,
               Table& table, double& fe_gap, double& ft_gap) {
  Pipeline pipeline(scale, level);
  const std::size_t user_count =
      std::min<std::size_t>(pipeline.users().size(), 8);

  using M = models::PersonalizationMethod;
  for (const M method : {M::kReuse, M::kFreshLstm, M::kFeatureExtraction,
                         M::kFineTuning}) {
    const MethodRow row = evaluate_method(pipeline, method, user_count);
    table.add_row({std::string(mobility::to_string(level)),
                   models::to_string(method), Table::num(row.train_top1, 1),
                   Table::num(row.test_top1, 1), Table::num(row.test_top2, 1),
                   Table::num(row.test_top3, 1), paper_row(level, method)});
    if (level == mobility::SpatialLevel::kBuilding) {
      if (method == M::kFeatureExtraction) {
        fe_gap = row.train_top1 - row.test_top1;
      }
      if (method == M::kFineTuning) ft_gap = row.train_top1 - row.test_top1;
    }
  }
}

}  // namespace

int main() {
  const auto scale = ScaleConfig::from_env();
  print_banner(std::cout,
               "Table III: personalization methods, train/test accuracy");

  Table table({"level", "method", "train top-1 %", "test top-1 %",
               "test top-2 %", "test top-3 %",
               "paper (train / top-1 / top-2 / top-3)"});
  double fe_gap = 0.0, ft_gap = 0.0;
  run_level(scale, mobility::SpatialLevel::kBuilding, table, fe_gap, ft_gap);
  run_level(scale, mobility::SpatialLevel::kAp, table, fe_gap, ft_gap);
  std::cout << table;

  std::cout << "overfitting gap (train - test top-1, building): TL FE "
            << Table::num(fe_gap, 1) << " vs TL FT " << Table::num(ft_gap, 1)
            << "; paper: FE 6.6 vs FT 15.8\n";
  std::cout << "shape (TL FE least overfit): "
            << (fe_gap <= ft_gap + 1.0 ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
