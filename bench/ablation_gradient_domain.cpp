// Ablation — gradient-descent inversion vs location-domain size.
//
// The paper finds the gradient-descent attack weak (<16% top-3) and
// hypothesizes this is "due to the large domain size and discrete nature"
// of mobility locations (150 buildings / 2956 APs). At this repo's reduced
// default scale (40 buildings) the gradient attack is much stronger, so
// this ablation tests the paper's hypothesis directly: run the same attack
// against the building-level (40-class) and AP-level (435-class) models.
// If the hypothesis holds, accuracy should fall sharply with domain size.
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

namespace {

using namespace pelican;
using namespace pelican::bench;

AttackSweep gradient_sweep(Pipeline& pipeline) {
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kGradientDescent;
  config.ks = {1, 3};
  config.max_windows = 8;  // per-window optimization is the cost driver
  attack::GradientAttackConfig gradient_config;
  return run_gradient_over_users(pipeline, config, attack::PriorKind::kTrue,
                                 gradient_config);
}

AttackSweep time_based_sweep(Pipeline& pipeline) {
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {1, 3};
  config.max_windows = 8;
  return run_attack_over_users(pipeline, config, attack::PriorKind::kTrue);
}

}  // namespace

int main() {
  const auto scale = ScaleConfig::from_env();
  Pipeline buildings(scale, mobility::SpatialLevel::kBuilding);
  Pipeline aps(scale, mobility::SpatialLevel::kAp);
  print_banner(std::cout,
               "Ablation: gradient-descent attack vs location-domain size");
  print_scale_banner(buildings);

  const auto gd_bldg = gradient_sweep(buildings);
  const auto gd_ap = gradient_sweep(aps);
  const auto tb_bldg = time_based_sweep(buildings);
  const auto tb_ap = time_based_sweep(aps);

  Table table({"level (domain size)", "gradient top-3 %",
               "time-based top-3 %", "paper GD"});
  table.add_row({"building (" + std::to_string(buildings.spec().num_locations)
                     + " classes)",
                 Table::num(gd_bldg.mean_at(3), 1),
                 Table::num(tb_bldg.mean_at(3), 1),
                 "<16% at 150 classes"});
  table.add_row({"AP (" + std::to_string(aps.spec().num_locations) +
                     " classes)",
                 Table::num(gd_ap.mean_at(3), 1),
                 Table::num(tb_ap.mean_at(3), 1), ""});
  std::cout << table;

  const double drop = gd_bldg.mean_at(3) - gd_ap.mean_at(3);
  std::cout << "gradient accuracy drop from 40 to "
            << aps.spec().num_locations << " classes: "
            << Table::num(drop, 1)
            << " points (paper hypothesis: GD degrades with domain size)\n";
  std::cout << "shape (GD weakens with domain size faster than TB): "
            << ((drop > 0.0 &&
                 drop > (tb_bldg.mean_at(3) - tb_ap.mean_at(3)))
                    ? "HOLDS"
                    : "DIFFERS")
            << "\n";
  return 0;
}
