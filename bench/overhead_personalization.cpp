// Section V-C2 — overhead of model personalization: wall time and estimated
// CPU cycles of cloud-based general training vs device-based
// transfer-learning personalization.
//
// Paper values: general training ~43,000 billion cycles / 4.55 hours on a
// GPU server; personalization ~15 (TL FE) and ~14 (TL FT) billion cycles /
// 6.62 and 5.92 seconds per user on a low-end 2.2 GHz CPU. The reproduction
// target is the orders-of-magnitude ratio, not the absolute numbers.
#include <iostream>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "harness/pipeline.hpp"
#include "models/general.hpp"
#include "models/personalize.hpp"
#include "models/window_dataset.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(),
                    mobility::SpatialLevel::kBuilding);
  print_banner(std::cout, "Section V-C2: personalization overhead");
  print_scale_banner(pipeline);

  // Measure fresh (cache-independent) single runs of each phase.
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = pipeline.scale().hidden_dim;
  general_config.train.epochs = pipeline.scale().general_epochs;
  general_config.train.batch_size = 128;
  general_config.train.lr = 1e-3;
  PhaseTimer general_timer;
  auto general =
      models::train_general_model(pipeline.contributor_data(), general_config)
          .model;
  const PhaseCost general_cost = general_timer.stop();

  auto personal_config = pipeline.personalization_config();
  auto& user = pipeline.users()[0];
  const models::WindowDataset user_data(user.train_windows,
                                          pipeline.spec());

  personal_config.method = models::PersonalizationMethod::kFeatureExtraction;
  PhaseTimer fe_timer;
  (void)models::personalize(general, user_data, personal_config);
  const PhaseCost fe_cost = fe_timer.stop();

  personal_config.method = models::PersonalizationMethod::kFineTuning;
  PhaseTimer ft_timer;
  (void)models::personalize(general, user_data, personal_config);
  const PhaseCost ft_cost = ft_timer.stop();

  Table table({"phase", "wall seconds", "est. cycles (billions)",
               "paper cycles (billions)", "paper time"});
  table.add_row({"cloud: general training",
                 Table::num(general_cost.wall_seconds, 2),
                 Table::num(static_cast<double>(general_cost.est_cycles) /
                            1e9, 2),
                 "43000", "4.55 h"});
  table.add_row({"device: TL FE personalization",
                 Table::num(fe_cost.wall_seconds, 2),
                 Table::num(static_cast<double>(fe_cost.est_cycles) / 1e9, 2),
                 "15", "6.62 s"});
  table.add_row({"device: TL FT personalization",
                 Table::num(ft_cost.wall_seconds, 2),
                 Table::num(static_cast<double>(ft_cost.est_cycles) / 1e9, 2),
                 "14", "5.92 s"});
  std::cout << table;

  const double ratio =
      general_cost.cpu_seconds / std::max(1e-9, fe_cost.cpu_seconds);
  std::cout << "general / personalization CPU ratio: " << Table::num(ratio, 1)
            << "x (paper: ~2900x at full scale)\n";
  std::cout << "shape (personalization orders of magnitude cheaper): "
            << (ratio > 10.0 ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
