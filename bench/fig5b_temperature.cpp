// Figure 5b — impact of varying the privacy parameter (temperature) during
// inference: percent reduction in privacy leakage as T sweeps 1e-1..1e-5.
//
// Paper shape: reduction grows as the temperature decreases and then
// flattens out (the confidence scores are already saturated).
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(),
                    mobility::SpatialLevel::kBuilding);
  print_banner(std::cout,
               "Figure 5b: privacy parameter sweep (A1, top-3, TL FE)");
  print_scale_banner(pipeline);

  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {3};

  const auto baseline =
      run_attack_over_users(pipeline, config, attack::PriorKind::kTrue, 1.0);

  Table table({"temperature", "attack top-3 %", "reduction %",
               "paper trend"});
  double last_reduction = 0.0;
  std::vector<double> reductions;
  for (const double temperature : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    const auto defended = run_attack_over_users(
        pipeline, config, attack::PriorKind::kTrue, temperature);
    const double reduction =
        baseline.mean_at(3) <= 0.0
            ? 0.0
            : std::max(0.0, 100.0 *
                                (baseline.mean_at(3) - defended.mean_at(3)) /
                                baseline.mean_at(3));
    reductions.push_back(reduction);
    std::ostringstream t;
    t << temperature;
    table.add_row({t.str(), Table::num(defended.mean_at(3), 1),
                   Table::num(reduction, 1),
                   "grows as T shrinks, then flattens"});
    last_reduction = reduction;
  }
  std::cout << "undefended attack top-3: "
            << Table::num(baseline.mean_at(3), 1) << "%\n";
  std::cout << table;

  const bool shape_holds = reductions.back() + 1e-9 >= reductions.front() &&
                           std::abs(reductions[4] - reductions[3]) < 10.0;
  std::cout << "shape (monotone-then-flat in 1/T): "
            << (shape_holds ? "HOLDS" : "DIFFERS") << "\n";
  (void)last_reduction;
  return 0;
}
