// Figure 2c — impact of prior knowledge p: true marginals vs none vs
// predicted (observe model outputs) vs crude estimate (75% on the top
// value).
//
// Paper shape: true is best; predict/estimate trail it by ~5-10 points;
// none is clearly worst; the gap between true and the approximations grows
// with k, with estimate growing slowest.
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(), mobility::SpatialLevel::kBuilding);
  print_banner(std::cout, "Figure 2c: prior knowledge (A1, time-based)");
  print_scale_banner(pipeline);

  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  const auto truth = run_attack_over_users(pipeline, config,
                                           attack::PriorKind::kTrue);
  const auto none = run_attack_over_users(pipeline, config,
                                          attack::PriorKind::kNone);
  const auto predict = run_attack_over_users(pipeline, config,
                                             attack::PriorKind::kPredict);
  const auto estimate = run_attack_over_users(pipeline, config,
                                              attack::PriorKind::kEstimate);

  Table table({"top-k", "true %", "none %", "predict %", "estimate %"});
  for (std::size_t i = 0; i < config.ks.size(); ++i) {
    table.add_row({std::to_string(config.ks[i]),
                   Table::num(truth.mean_topk[i]),
                   Table::num(none.mean_topk[i]),
                   Table::num(predict.mean_topk[i]),
                   Table::num(estimate.mean_topk[i])});
  }
  std::cout << table;
  std::cout << "paper: true best; predict/estimate ~5-10 points below true; "
               "none worst\n";

  const bool shape_holds = truth.mean_at(3) >= predict.mean_at(3) - 5.0 &&
                           truth.mean_at(3) >= none.mean_at(3);
  std::cout << "shape (true >= predict, true >= none): "
            << (shape_holds ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
