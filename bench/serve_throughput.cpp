// Throughput of the pelican_serve engine: requests/sec of batched, sharded
// serving vs. the single-query DeployedModel baseline.
//
// The workload is many users querying their own personalized deployment
// (the paper's cloud-hosted serving mode at production scale). Weights do
// not affect serving cost, so deployments are untrained clones of one
// model — what matters is the forward-pass shape and the engine around it.
// Sweeps batch size and shard count; the acceptance target is batched
// serving >= 2x single-query requests/sec on >= 4 cores.
//
// Honors PELICAN_BENCH_SCALE (tiny | default | paper) and writes
// machine-readable results via harness/results.hpp.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "harness/results.hpp"
#include "nn/model.hpp"
#include "obs/timeseries.hpp"
#include "serve/scheduler.hpp"

using namespace pelican;

namespace {

struct ServeScale {
  std::string name;
  std::size_t num_locations;
  std::size_t hidden_dim;
  std::size_t users;
  std::size_t requests;
};

ServeScale scale_from_env() {
  const char* env = std::getenv("PELICAN_BENCH_SCALE");
  const std::string name = env == nullptr ? "default" : env;
  if (name == "tiny") return {"tiny", 16, 16, 32, 2000};
  if (name == "paper") return {"paper", 150, 64, 1024, 100000};
  return {"default", 40, 32, 256, 20000};
}

mobility::Window random_window(Rng& rng, std::size_t num_locations) {
  mobility::Window window;
  for (auto& step : window.steps) {
    step.entry_bin = static_cast<std::uint8_t>(rng.below(mobility::kEntryBins));
    step.duration_bin =
        static_cast<std::uint8_t>(rng.below(mobility::kDurationBins));
    step.day_of_week =
        static_cast<std::uint8_t>(rng.below(mobility::kDaysPerWeek));
    step.location = static_cast<std::uint16_t>(rng.below(num_locations));
  }
  window.next_location = static_cast<std::uint16_t>(rng.below(num_locations));
  return window;
}

/// Registry of `users` deployments, each a clone of `model`.
std::unique_ptr<serve::DeploymentRegistry> build_registry(
    const ServeScale& scale, std::size_t shards,
    const nn::SequenceClassifier& model, const mobility::EncodingSpec& spec) {
  auto registry = std::make_unique<serve::DeploymentRegistry>(shards);
  for (std::uint32_t user = 0; user < scale.users; ++user) {
    registry->deploy(user,
                     core::DeployedModel(model.clone(), spec,
                                         core::PrivacyLayer(1.0),
                                         core::DeploymentSite::kInCloud));
  }
  return registry;
}

}  // namespace

int main() {
  const ServeScale scale = scale_from_env();
  const std::size_t cores = std::thread::hardware_concurrency();

  print_banner(std::cout, "serve_throughput: batched, sharded serving engine");
  std::cout << "scale " << scale.name << ": " << scale.users << " users, "
            << scale.requests << " requests, " << scale.num_locations
            << " locations, hidden " << scale.hidden_dim << ", " << cores
            << " cores\n";

  const mobility::EncodingSpec spec{mobility::SpatialLevel::kBuilding,
                                    scale.num_locations};
  Rng rng(2021);
  const nn::SequenceClassifier model = nn::make_one_layer_lstm(
      spec.input_dim(), scale.hidden_dim, scale.num_locations,
      /*dropout_rate=*/0.0, rng);

  std::vector<serve::PredictRequest> requests;
  requests.reserve(scale.requests);
  for (std::size_t i = 0; i < scale.requests; ++i) {
    requests.push_back({static_cast<std::uint32_t>(rng.below(scale.users)),
                        random_window(rng, scale.num_locations), 3});
  }

  Table table({"mode", "shards", "max batch", "req/s", "vs single",
               "mean batch", "p50 ms", "p99 ms"});

  // --- Single-query baseline: one thread, one request per forward ---------
  auto baseline_registry = build_registry(scale, 8, model, spec);
  std::vector<double> baseline_latency_ms;
  baseline_latency_ms.reserve(requests.size());
  const Stopwatch baseline_watch;
  for (const auto& request : requests) {
    const Stopwatch one;
    const auto top = baseline_registry->with_model(
        request.user_id, [&](core::DeployedModel& deployed) {
          return deployed.predict_top_k(request.window, request.k);
        });
    baseline_latency_ms.push_back(one.milliseconds());
    if (top.empty()) return 1;  // keep the work observable
  }
  const double baseline_rps =
      static_cast<double>(requests.size()) / baseline_watch.seconds();
  table.add_row({"single-query", "8", "1", Table::num(baseline_rps, 0), "1.0x",
                 "1.00", Table::num(stats::percentile(baseline_latency_ms, 50), 3),
                 Table::num(stats::percentile(baseline_latency_ms, 99), 3)});

  // --- Engine sweep: synchronous coalesced serving ------------------------
  // Sync latencies are measured from serve() entry, so they reflect queue
  // position rather than per-request cost; percentiles are reported for the
  // async (open-loop submit) run below instead.
  double best_batched_rps = 0.0;
  const struct {
    std::size_t shards;
    std::size_t max_batch;
  } sweep[] = {{8, 1}, {8, 8}, {8, 32}, {1, 32}};
  for (const auto& config : sweep) {
    auto registry = build_registry(scale, config.shards, model, spec);
    serve::BatchScheduler scheduler(
        *registry, {.max_batch = config.max_batch,
                    .max_delay = std::chrono::microseconds(2000)});
    const Stopwatch watch;
    const auto responses = scheduler.serve(requests);
    const double rps =
        static_cast<double>(responses.size()) / watch.seconds();
    for (const auto& response : responses) {
      if (!response.ok) return 1;
    }
    if (config.max_batch > 1) best_batched_rps = std::max(best_batched_rps, rps);
    const auto snap = scheduler.stats().snapshot();
    table.add_row({"engine-sync", std::to_string(config.shards),
                   std::to_string(config.max_batch), Table::num(rps, 0),
                   Table::num(rps / baseline_rps, 1) + "x",
                   Table::num(snap.mean_batch_size, 2), "-", "-"});
  }

  // --- Async path: open-loop submit from 4 client threads ----------------
  {
    auto registry = build_registry(scale, 8, model, spec);
    serve::BatchScheduler scheduler(
        *registry, {.max_batch = 32,
                    .max_delay = std::chrono::microseconds(2000)});
    std::vector<std::future<serve::PredictResponse>> futures(requests.size());
    const std::size_t clients = 4;
    const Stopwatch watch;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t i = c; i < requests.size(); i += clients) {
          futures[i] = scheduler.submit(requests[i]);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (auto& future : futures) {
      if (!future.get().ok) return 1;
    }
    const double rps =
        static_cast<double>(requests.size()) / watch.seconds();
    const auto snap = scheduler.stats().snapshot();
    table.add_row({"engine-async", "8", "32", Table::num(rps, 0),
                   Table::num(rps / baseline_rps, 1) + "x",
                   Table::num(snap.mean_batch_size, 2),
                   Table::num(snap.p50_latency_ms, 3),
                   Table::num(snap.p99_latency_ms, 3)});
  }

  // --- Tracing overhead: the batch-1 serve path, instrumentation on/off --
  // Batch-1 is the worst case for per-request instrumentation (nothing to
  // amortize a span over). Interleaved best-of-3 per mode so drift hits
  // both sides equally.
  double traced_rps = 0.0;
  double untraced_rps = 0.0;
  {
    auto registry = build_registry(scale, 8, model, spec);
    serve::BatchScheduler scheduler(
        *registry, {.max_batch = 1,
                    .max_delay = std::chrono::microseconds(2000)});
    const auto run = [&] {
      const Stopwatch watch;
      const auto responses = scheduler.serve(requests);
      for (const auto& response : responses) {
        if (!response.ok) std::exit(1);
      }
      return watch.seconds();
    };
    (void)run();  // warmup
    // Alternate modes and SUM the per-mode time: machine drift (noisy
    // neighbors, frequency shifts) then lands on both sides about equally,
    // which a best-of-N per mode cannot guarantee.
    double untraced_seconds = 0.0;
    double traced_seconds = 0.0;
    for (int rep = 0; rep < 10; ++rep) {
      scheduler.set_instrumentation(false);
      untraced_seconds += run();
      scheduler.set_instrumentation(true);
      traced_seconds += run();
    }
    untraced_rps =
        10.0 * static_cast<double>(requests.size()) / untraced_seconds;
    traced_rps = 10.0 * static_cast<double>(requests.size()) / traced_seconds;
    table.add_row({"engine-untraced", "8", "1", Table::num(untraced_rps, 0),
                   Table::num(untraced_rps / baseline_rps, 1) + "x", "1.00",
                   "-", "-"});
    table.add_row({"engine-traced", "8", "1", Table::num(traced_rps, 0),
                   Table::num(traced_rps / baseline_rps, 1) + "x", "1.00",
                   "-", "-"});
  }

  // --- Flight-recorder overhead: the sampler thread + event sites on the
  // UNinstrumented batch-1 path. The sampler polls the scheduler's registry
  // off-thread every 50ms (20x the flight recorder's default cadence) and
  // the event sites are behind the same instrumentation flag as spans, so
  // the serving threads should pay nothing measurable.
  double bare_rps = 0.0;
  double recorded_rps = 0.0;
  {
    auto registry = build_registry(scale, 8, model, spec);
    serve::BatchScheduler scheduler(
        *registry, {.max_batch = 1,
                    .max_delay = std::chrono::microseconds(2000)});
    scheduler.set_instrumentation(false);
    const auto run = [&] {
      const Stopwatch watch;
      const auto responses = scheduler.serve(requests);
      for (const auto& response : responses) {
        if (!response.ok) std::exit(1);
      }
      return watch.seconds();
    };
    (void)run();  // warmup
    obs::FleetSampler sampler(
        [&scheduler] { return scheduler.metrics().state(); },
        obs::FleetSamplerConfig{.interval_ms = 50.0, .capacity = 4096});
    // Interleaved like the tracing comparison, but best-of-reps (the
    // nn_micro discipline) instead of summed: the claim under test is the
    // SERVING THREADS' cost (registry contention, flag checks), and on a
    // saturated single-core box a summed comparison mostly measures the
    // sampler thread's timeslices — by-design off-thread work that no
    // serving request waits on.
    double bare_seconds = std::numeric_limits<double>::infinity();
    double recorded_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 10; ++rep) {
      bare_seconds = std::min(bare_seconds, run());
      sampler.start();
      recorded_seconds = std::min(recorded_seconds, run());
      sampler.stop();
    }
    bare_rps = static_cast<double>(requests.size()) / bare_seconds;
    recorded_rps = static_cast<double>(requests.size()) / recorded_seconds;
    table.add_row({"engine-bare", "8", "1", Table::num(bare_rps, 0),
                   Table::num(bare_rps / baseline_rps, 1) + "x", "1.00", "-",
                   "-"});
    table.add_row({"engine-recorded", "8", "1", Table::num(recorded_rps, 0),
                   Table::num(recorded_rps / baseline_rps, 1) + "x", "1.00",
                   "-", "-"});
  }

  std::cout << table;
  bench::write_bench_json("serve_throughput", table);

  const bool holds = best_batched_rps >= 2.0 * baseline_rps;
  std::cout << "batched >= 2x single-query on " << cores
            << " cores: " << (holds ? "HOLDS" : "DIFFERS") << " ("
            << Table::num(best_batched_rps / baseline_rps, 2) << "x)\n";
  if (cores < 4 && !holds) {
    std::cout << "note: acceptance target applies at >= 4 cores\n";
  }
  const double overhead =
      untraced_rps > 0.0 ? 1.0 - traced_rps / untraced_rps : 0.0;
  const bool tracing_holds = overhead <= 0.02;
  std::cout << "tracing overhead <= 2% on the batch-1 path: "
            << (tracing_holds ? "HOLDS" : "DIFFERS") << " ("
            << Table::num(overhead * 100.0, 2) << "%)\n";
  const double recorder_overhead =
      bare_rps > 0.0 ? 1.0 - recorded_rps / bare_rps : 0.0;
  const bool recorder_holds = recorder_overhead <= 0.01;
  std::cout << "flight-recorder overhead <= 1% on the uninstrumented "
               "batch-1 path: "
            << (recorder_holds ? "HOLDS" : "DIFFERS") << " ("
            << Table::num(recorder_overhead * 100.0, 2) << "%)\n";
  if (cores < 2 && !recorder_holds) {
    std::cout << "note: on a single core the sampler thread's timeslices "
                 "are charged to the serving threads; target applies at "
                 ">= 2 cores\n";
  }
  return 0;
}
