// Figure 3c — impact of mobility predictability: per-user attack accuracy
// against the personalized model's own accuracy (the paper's proxy for
// predictability), with regression analysis.
//
// Paper shape: STRONG correlation at building level (r = 0.804, p = 0.029);
// weak at AP level (r = 0.078). More predictable users leak more — the
// efficacy/privacy trade-off.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/attack_runner.hpp"
#include "nn/metrics.hpp"
#include "models/window_dataset.hpp"

namespace {

using namespace pelican;
using namespace pelican::bench;

stats::Correlation analyze(Pipeline& pipeline, Table& table) {
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {3};
  const auto sweep =
      run_attack_over_users(pipeline, config, attack::PriorKind::kTrue);

  std::vector<double> model_accuracy, attack_accuracy;
  for (std::size_t u = 0; u < pipeline.users().size(); ++u) {
    auto& user = pipeline.users()[u];
    const models::WindowDataset test(user.test_windows, pipeline.spec());
    const double top1 = 100.0 * nn::topk_accuracy(user.model, test, 1);
    model_accuracy.push_back(top1);
    attack_accuracy.push_back(100.0 * sweep.per_user[u].at_k(3));
    table.add_row({std::string(mobility::to_string(pipeline.level())),
                   std::to_string(user.persona.user_id),
                   Table::num(top1, 1),
                   Table::num(attack_accuracy.back(), 1)});
  }
  return stats::pearson(model_accuracy, attack_accuracy);
}

}  // namespace

int main() {
  const auto scale = ScaleConfig::from_env();
  Pipeline buildings(scale, mobility::SpatialLevel::kBuilding);
  Pipeline aps(scale, mobility::SpatialLevel::kAp);
  print_banner(std::cout,
               "Figure 3c: mobility predictability vs privacy leakage");
  print_scale_banner(buildings);

  Table table({"level", "user", "model top-1 %", "attack top-3 %"});
  const auto bldg_corr = analyze(buildings, table);
  const auto ap_corr = analyze(aps, table);
  std::cout << table;

  Table summary({"level", "pearson r", "p-value", "paper r", "paper p"});
  summary.add_row({"bldg", Table::num(bldg_corr.r, 3),
                   Table::num(bldg_corr.p_value, 4), "0.804", "0.029"});
  summary.add_row({"ap", Table::num(ap_corr.r, 3),
                   Table::num(ap_corr.p_value, 4), "0.078", "0.031 (n.s.)"});
  std::cout << summary;

  const bool shape_holds = bldg_corr.r > 0.3 && bldg_corr.r > ap_corr.r - 0.1;
  std::cout << "shape (predictability drives building-level leakage): "
            << (shape_holds ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
