// Figure 2a — impact of attack method: brute force vs gradient descent vs
// time-based enumeration, aggregate inversion attack accuracy vs top-k.
//
// Paper shape to reproduce: time-based ~= brute force (both reaching ~80%
// by top-3 at building level), gradient descent far behind (<16%).
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(), mobility::SpatialLevel::kBuilding);
  print_banner(std::cout, "Figure 2a: attack methods (building level, A1, true prior)");
  print_scale_banner(pipeline);

  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.ks = {1, 3, 5, 7};

  config.method = attack::AttackMethod::kTimeBased;
  const AttackSweep time_based =
      run_attack_over_users(pipeline, config, attack::PriorKind::kTrue);

  attack::GradientAttackConfig gradient_config;
  attack::InversionConfig gradient_sweep_config = config;
  // The gradient attack optimizes each window individually (150 iterations
  // of forward+backward at batch 1); cap the per-user windows so the sweep
  // stays minutes, not hours. Accuracy is stable well below this cap.
  gradient_sweep_config.max_windows = 10;
  const AttackSweep gradient = run_gradient_over_users(
      pipeline, gradient_sweep_config, attack::PriorKind::kTrue,
      gradient_config);

  // Brute force enumerates the full feature space; run it on a subset of
  // users/windows to keep wall time sane and report the subset size.
  config.method = attack::AttackMethod::kBruteForce;
  std::vector<double> brute_mean(config.ks.size(), 0.0);
  const std::size_t brute_users =
      std::min<std::size_t>(2, pipeline.users().size());
  const std::size_t brute_windows = 3;
  for (std::size_t u = 0; u < brute_users; ++u) {
    auto& user = pipeline.users()[u];
    core::DeployedModel deployment(user.model.clone(), pipeline.spec(),
                                   core::PrivacyLayer(1.0),
                                   core::DeploymentSite::kOnDevice);
    const auto prior = attack::make_prior(attack::PriorKind::kTrue,
                                          user.train_windows, deployment,
                                          user.test_windows);
    attack::InversionConfig brute_config = config;
    brute_config.max_windows = brute_windows;
    const auto result =
        attack::run_inversion(deployment, user.train_windows,
                              user.test_windows, prior, brute_config);
    for (std::size_t i = 0; i < config.ks.size(); ++i) {
      brute_mean[i] += result.topk_accuracy[i];
    }
  }
  for (double& acc : brute_mean) {
    acc = 100.0 * acc / static_cast<double>(brute_users);
  }

  Table table({"top-k", "brute force %", "time-based %", "gradient %",
               "paper: BF/TB ~80 @k=3, GD <16"});
  const double paper_bf[] = {60.0, 79.6, 86.0, 90.0};   // Fig. 2a (approx)
  const double paper_tb[] = {60.0, 77.6, 85.0, 89.0};
  const double paper_gd[] = {5.0, 15.6, 20.0, 25.0};
  for (std::size_t i = 0; i < config.ks.size(); ++i) {
    table.add_row({std::to_string(config.ks[i]), Table::num(brute_mean[i]),
                   Table::num(time_based.mean_topk[i]),
                   Table::num(gradient.mean_topk[i]),
                   "BF " + Table::num(paper_bf[i], 1) + " / TB " +
                       Table::num(paper_tb[i], 1) + " / GD " +
                       Table::num(paper_gd[i], 1)});
  }
  std::cout << table;
  std::cout << "(brute force measured on " << brute_users << " users x "
            << brute_windows << " windows)\n";

  const bool shape_holds =
      time_based.mean_at(3) > 2.0 * gradient.mean_at(3) &&
      std::abs(time_based.mean_at(3) - brute_mean[1]) < 25.0;
  std::cout << "shape (TB ~= BF >> GD): " << (shape_holds ? "HOLDS" : "DIFFERS")
            << "\n";
  return 0;
}
