// Figure 3a — impact of mobility spatial level: the attack at building
// granularity vs access-point granularity.
//
// Paper shape: the coarse (building) scale leaks substantially more than
// the fine (AP) scale at every k, and both grow with k.
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  const auto scale = ScaleConfig::from_env();
  Pipeline buildings(scale, mobility::SpatialLevel::kBuilding);
  Pipeline aps(scale, mobility::SpatialLevel::kAp);
  print_banner(std::cout, "Figure 3a: spatial level (A1, time-based, true prior)");
  print_scale_banner(buildings);
  print_scale_banner(aps);

  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

  const auto bldg = run_attack_over_users(buildings, config,
                                          attack::PriorKind::kTrue);
  const auto ap = run_attack_over_users(aps, config,
                                        attack::PriorKind::kTrue);

  Table table({"top-k", "building %", "AP %", "paper"});
  for (std::size_t i = 0; i < config.ks.size(); ++i) {
    table.add_row({std::to_string(config.ks[i]), Table::num(bldg.mean_topk[i]),
                   Table::num(ap.mean_topk[i]),
                   i == 2 ? "bldg ~78, AP lower" : ""});
  }
  std::cout << table;

  const bool shape_holds = bldg.mean_at(3) > ap.mean_at(3);
  std::cout << "shape (building leaks more than AP): "
            << (shape_holds ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
