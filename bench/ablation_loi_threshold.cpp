// Ablation — the locations-of-interest search-space reduction.
//
// Section III-B2 proposes pruning the enumeration space to locations whose
// observed confidence ever reaches a threshold ("i.e. 1%"). This ablation
// sweeps that threshold and reports the attack accuracy / query cost
// trade-off: too-aggressive pruning drops the true location from the guess
// set; too-lax pruning pays brute-force-like query counts.
#include <iostream>
#include <sstream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(),
                    mobility::SpatialLevel::kBuilding);
  print_banner(std::cout,
               "Ablation: locations-of-interest threshold (A1, time-based, "
               "true prior)");
  print_scale_banner(pipeline);

  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {1, 3};

  Table table({"LOI threshold", "attack top-3 %", "queries/window",
               "seconds total"});
  for (const double threshold : {0.10, 0.05, 0.01, 0.001, 1e-6}) {
    config.loi_threshold = threshold;
    const auto sweep =
        run_attack_over_users(pipeline, config, attack::PriorKind::kTrue);
    std::size_t windows = 0;
    for (const auto& result : sweep.per_user) {
      windows += result.windows_attacked;
    }
    std::ostringstream t;
    t << threshold;
    table.add_row({t.str(), Table::num(sweep.mean_at(3), 1),
                   Table::num(static_cast<double>(sweep.total_queries) /
                              static_cast<double>(windows), 0),
                   Table::num(sweep.total_seconds, 2)});
  }
  std::cout << table;
  std::cout << "paper uses 1%: accuracy should be near-flat down the sweep "
               "while query cost explodes at the loose end\n";
  return 0;
}
