// Table II — runtime of attack methods.
//
// Paper values (100 users, building level): brute force 82.18 h, gradient
// descent 6.27 h, time-based 0.68 h — i.e. brute force is >120x the
// time-based method and gradient descent ~9x. Absolute times depend on
// hardware and scale; the *ratios* are the reproduction target.
#include <algorithm>
#include <iostream>
#include <thread>

#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "harness/attack_runner.hpp"
#include "harness/results.hpp"
#include "models/window_dataset.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(), mobility::SpatialLevel::kBuilding);
  print_banner(std::cout, "Table II: runtime of attack methods (A1, building level)");
  print_scale_banner(pipeline);

  // All three methods attack the same windows of the same users.
  const std::size_t runtime_users =
      std::min<std::size_t>(2, pipeline.users().size());
  const std::size_t runtime_windows = 3;

  double seconds_per_window[3] = {0.0, 0.0, 0.0};
  std::size_t attacked[3] = {0, 0, 0};

  for (std::size_t u = 0; u < runtime_users; ++u) {
    auto& user = pipeline.users()[u];
    core::DeployedModel deployment(user.model.clone(), pipeline.spec(),
                                   core::PrivacyLayer(1.0),
                                   core::DeploymentSite::kOnDevice);
    const auto prior = attack::make_prior(attack::PriorKind::kTrue,
                                          user.train_windows, deployment,
                                          user.test_windows);
    attack::InversionConfig config;
    config.adversary = attack::Adversary::kA1;
    config.ks = {3};
    config.max_windows = runtime_windows;

    config.method = attack::AttackMethod::kBruteForce;
    const auto brute = attack::run_inversion(
        deployment, user.train_windows, user.test_windows, prior, config);
    seconds_per_window[0] += brute.attack_seconds;
    attacked[0] += brute.windows_attacked;

    attack::GradientAttackConfig gradient_config;
    const auto gradient = attack::run_gradient_inversion(
        user.model, pipeline.spec(), user.train_windows, prior, config,
        gradient_config);
    seconds_per_window[1] += gradient.attack_seconds;
    attacked[1] += gradient.windows_attacked;

    config.method = attack::AttackMethod::kTimeBased;
    const auto time_based = attack::run_inversion(
        deployment, user.train_windows, user.test_windows, prior, config);
    seconds_per_window[2] += time_based.attack_seconds;
    attacked[2] += time_based.windows_attacked;
  }

  for (int m = 0; m < 3; ++m) {
    seconds_per_window[m] /= static_cast<double>(attacked[m]);
  }
  const double tb = seconds_per_window[2];

  Table table({"method", "sec/window", "ratio vs time-based",
               "paper hours (100 users)", "paper ratio"});
  table.add_row({"brute force", Table::num(seconds_per_window[0], 4),
                 Table::num(seconds_per_window[0] / tb, 1) + "x", "82.18",
                 "120.9x"});
  table.add_row({"gradient descent", Table::num(seconds_per_window[1], 4),
                 Table::num(seconds_per_window[1] / tb, 1) + "x", "6.27",
                 "9.2x"});
  table.add_row({"time-based", Table::num(seconds_per_window[2], 4), "1.0x",
                 "0.68", "1.0x"});
  std::cout << table;
  bench::write_bench_json("table2_attack_runtime", table);

  const bool shape_holds = seconds_per_window[0] > 20.0 * tb &&
                           seconds_per_window[1] > tb;
  std::cout << "shape (BF >> GD > TB): " << (shape_holds ? "HOLDS" : "DIFFERS")
            << "\n";

  // ROADMAP "Attack parallelism": brute-force candidate enumeration now
  // fills per-entry-bin slices across ThreadPool::global(). Measure the
  // enumeration speedup against the serial reference on the same window.
  {
    auto& user = pipeline.users()[0];
    std::vector<std::uint16_t> all_locations(pipeline.spec().num_locations);
    for (std::size_t i = 0; i < all_locations.size(); ++i) {
      all_locations[i] = static_cast<std::uint16_t>(i);
    }
    const mobility::Window& window = user.train_windows.front();
    const int reps = 30;
    std::size_t candidates = 0;
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      candidates = attack::enumerate_candidates(
                       attack::AttackMethod::kBruteForce,
                       attack::Adversary::kA1, window, all_locations, {},
                       /*parallel=*/false)
                       .size();
    }
    const double serial_ms = watch.milliseconds() / reps;
    watch.reset();
    for (int r = 0; r < reps; ++r) {
      candidates = attack::enumerate_candidates(
                       attack::AttackMethod::kBruteForce,
                       attack::Adversary::kA1, window, all_locations, {},
                       /*parallel=*/true)
                       .size();
    }
    const double parallel_ms = watch.milliseconds() / reps;

    Table enum_table({"candidates", "threads", "serial ms", "parallel ms",
                      "speedup"});
    enum_table.add_row(
        {std::to_string(candidates),
         std::to_string(std::thread::hardware_concurrency()),
         Table::num(serial_ms, 3), Table::num(parallel_ms, 3),
         Table::num(serial_ms / parallel_ms, 2) + "x"});
    print_banner(std::cout, "brute-force enumeration parallelism");
    std::cout << enum_table;
    bench::write_bench_json("table2_enumeration_speedup", enum_table);
  }

  // ISSUE 4 ("Attack parallelism, phase 2"): candidate *scoring* fast
  // paths. Row 1 — sparse one-hot scoring vs the dense-encoded reference
  // it replaced (bit-identical scores, nnz-row input products). Row 2 —
  // serial vs pool-parallel scoring over per-worker DeployedModel replicas
  // (on a 1-core host this degenerates to ~1.0x; the thread count is in
  // the table so the trajectory artifact stays interpretable).
  {
    auto& user = pipeline.users()[0];
    core::DeployedModel deployment(user.model.clone(), pipeline.spec(),
                                   core::PrivacyLayer(1.0),
                                   core::DeploymentSite::kOnDevice);
    const auto prior = attack::make_prior(attack::PriorKind::kTrue,
                                          user.train_windows, deployment,
                                          user.test_windows);
    std::vector<std::uint16_t> all_locations(pipeline.spec().num_locations);
    for (std::size_t i = 0; i < all_locations.size(); ++i) {
      all_locations[i] = static_cast<std::uint16_t>(i);
    }
    const mobility::Window& window = user.train_windows.front();
    const auto candidates = attack::enumerate_candidates(
        attack::AttackMethod::kBruteForce, attack::Adversary::kA1, window,
        all_locations, prior);
    constexpr std::size_t kQueryBatch = 1024;

    // The pre-ISSUE-4 scoring loop: dense one-hot materialization and a
    // dense query per batch. Kept as the measured baseline.
    const auto dense_reference = [&] {
      const mobility::EncodingSpec& spec = deployment.spec();
      std::vector<double> scores(deployment.num_classes(), 0.0);
      for (std::size_t start = 0; start < candidates.size();
           start += kQueryBatch) {
        const std::size_t count =
            std::min(kQueryBatch, candidates.size() - start);
        nn::Sequence x(mobility::kWindowSteps,
                       nn::Matrix(count, spec.input_dim(), 0.0f));
        for (std::size_t i = 0; i < count; ++i) {
          models::encode_steps(candidates[start + i].steps, spec, x, i);
        }
        const nn::Matrix confidences = deployment.query(x);
        for (std::size_t i = 0; i < count; ++i) {
          const std::uint16_t guess = candidates[start + i].guess;
          const double score =
              static_cast<double>(confidences(i, window.next_location)) *
              prior[guess];
          scores[guess] = std::max(scores[guess], score);
        }
      }
      return scores;
    };

    const int reps = 3;
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) (void)dense_reference();
    const double dense_ms = watch.milliseconds() / reps;
    watch.reset();
    for (int r = 0; r < reps; ++r) {
      (void)attack::score_candidates(deployment, candidates,
                                     window.next_location, prior,
                                     kQueryBatch);
    }
    const double sparse_ms = watch.milliseconds() / reps;

    const std::size_t pool_workers = ThreadPool::global().size();
    auto replicas = attack::make_scoring_replicas(
        deployment, std::max<std::size_t>(pool_workers, 1));
    watch.reset();
    for (int r = 0; r < reps; ++r) {
      (void)attack::score_candidates_parallel(deployment, candidates,
                                              window.next_location, prior,
                                              kQueryBatch, replicas);
    }
    const double parallel_ms = watch.milliseconds() / reps;

    Table score_table({"scoring path", "candidates", "threads", "ms/window",
                       "speedup vs dense serial"});
    const auto row = [&](const char* name, double ms) {
      score_table.add_row(
          {name, std::to_string(candidates.size()),
           std::to_string(std::thread::hardware_concurrency()),
           Table::num(ms, 3), Table::num(dense_ms / ms, 2) + "x"});
    };
    row("dense serial (pre-ISSUE-4)", dense_ms);
    row("sparse serial", sparse_ms);
    row("sparse parallel replicas", parallel_ms);
    print_banner(std::cout, "brute-force candidate scoring fast paths");
    std::cout << score_table;
    bench::write_bench_json("table2_scoring_speedup", score_table);
  }
  return 0;
}
