// Figure 3b — impact of degree of mobility: per-user attack accuracy
// against the number of distinct locations the user visits, at both
// spatial levels, with the regression analysis the paper reports.
//
// Paper shape: WEAK correlation — r = 0.337 (building) and 0.107 (AP); the
// attack works regardless of how mobile the user is.
#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/attack_runner.hpp"
#include "mobility/trace_stats.hpp"

namespace {

using namespace pelican;
using namespace pelican::bench;

stats::Correlation analyze(Pipeline& pipeline, Table& table) {
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {3};
  const auto sweep =
      run_attack_over_users(pipeline, config, attack::PriorKind::kTrue);

  std::vector<double> mobility_degree, attack_accuracy;
  for (std::size_t u = 0; u < pipeline.users().size(); ++u) {
    mobility_degree.push_back(static_cast<double>(degree_of_mobility(
        pipeline.users()[u].trajectory, pipeline.level())));
    attack_accuracy.push_back(100.0 * sweep.per_user[u].at_k(3));
    table.add_row({std::string(mobility::to_string(pipeline.level())),
                   std::to_string(pipeline.users()[u].persona.user_id),
                   Table::num(mobility_degree.back(), 0),
                   Table::num(attack_accuracy.back(), 1)});
  }
  return stats::pearson(mobility_degree, attack_accuracy);
}

}  // namespace

int main() {
  const auto scale = ScaleConfig::from_env();
  Pipeline buildings(scale, mobility::SpatialLevel::kBuilding);
  Pipeline aps(scale, mobility::SpatialLevel::kAp);
  print_banner(std::cout,
               "Figure 3b: degree of mobility vs privacy leakage (top-3)");
  print_scale_banner(buildings);

  Table table({"level", "user", "#distinct locations", "attack top-3 %"});
  const auto bldg_corr = analyze(buildings, table);
  const auto ap_corr = analyze(aps, table);
  std::cout << table;

  Table summary({"level", "pearson r", "p-value", "paper r", "paper p"});
  summary.add_row({"bldg", Table::num(bldg_corr.r, 3),
                   Table::num(bldg_corr.p_value, 4), "0.337", "<=0.05"});
  summary.add_row({"ap", Table::num(ap_corr.r, 3),
                   Table::num(ap_corr.p_value, 4), "0.107", "<=0.05"});
  std::cout << summary;

  const bool shape_holds =
      std::abs(bldg_corr.r) < 0.65 && std::abs(ap_corr.r) < 0.65;
  std::cout << "shape (weak effect of mobility degree): "
            << (shape_holds ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
