// Ablation — classic Markov-chain personalization vs the paper's methods.
//
// The paper's related work (Section II) notes that pre-deep-learning
// personalized mobility models were Markov chains. This ablation puts that
// baseline next to Reuse and TL FE: Markov chains exploit only the location
// sequence, so the LSTM's access to temporal features (entry bin, duration,
// day-of-week) plus the general model's inductive bias should win on test
// accuracy — the gap that motivates Pelican's transfer-learning design.
#include <iostream>

#include "common/table.hpp"
#include "harness/pipeline.hpp"
#include "models/markov.hpp"
#include "nn/metrics.hpp"
#include "models/window_dataset.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(),
                    mobility::SpatialLevel::kBuilding);
  print_banner(std::cout,
               "Ablation: Markov-chain baseline vs LSTM personalization "
               "(building level)");
  print_scale_banner(pipeline);

  const std::size_t user_count =
      std::min<std::size_t>(pipeline.users().size(), 8);
  const std::vector<std::size_t> ks = {1, 2, 3};

  double markov1[3] = {0, 0, 0}, markov2[3] = {0, 0, 0};
  double reuse[3] = {0, 0, 0}, tl_fe[3] = {0, 0, 0};

  for (std::size_t u = 0; u < user_count; ++u) {
    auto& user = pipeline.users()[u];
    const models::WindowDataset test(user.test_windows, pipeline.spec());

    models::MarkovChain order1(pipeline.spec().num_locations, 1);
    order1.fit(user.train_windows);
    models::MarkovChain order2(pipeline.spec().num_locations, 2);
    order2.fit(user.train_windows);

    auto reuse_model = pipeline.personalized(
        u, models::PersonalizationMethod::kReuse);
    auto& fe_model = user.model;

    for (std::size_t i = 0; i < ks.size(); ++i) {
      markov1[i] += order1.topk_accuracy(user.test_windows, ks[i]);
      markov2[i] += order2.topk_accuracy(user.test_windows, ks[i]);
      reuse[i] += nn::topk_accuracy(reuse_model.model, test, ks[i]);
      tl_fe[i] += nn::topk_accuracy(fe_model, test, ks[i]);
    }
  }

  Table table({"method", "test top-1 %", "test top-2 %", "test top-3 %"});
  auto row = [&](const char* name, const double* accs) {
    table.add_row({name,
                   Table::num(100.0 * accs[0] / user_count, 1),
                   Table::num(100.0 * accs[1] / user_count, 1),
                   Table::num(100.0 * accs[2] / user_count, 1)});
  };
  row("Markov order-1", markov1);
  row("Markov order-2", markov2);
  row("Reuse (general model)", reuse);
  row("TL FE (Pelican)", tl_fe);
  std::cout << table;

  const bool shape_holds =
      tl_fe[2] / user_count >= markov1[2] / user_count - 0.02;
  std::cout << "shape (transfer learning >= Markov baseline at top-3): "
            << (shape_holds ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
