// Table IV — effect of training-data size (2/4/6/8 weeks) on the fresh
// LSTM and the two transfer-learning personalization methods, building
// level.
//
// Paper shape: accuracy grows with more weeks for every method; the fresh
// LSTM overfits badly at small sizes (train accuracy ~87-92% with test in
// the 40s-50s) while TL FE keeps the smallest train-test gap throughout.
#include <iostream>

#include "common/table.hpp"
#include "harness/pipeline.hpp"
#include "nn/metrics.hpp"
#include "models/window_dataset.hpp"

namespace {

using namespace pelican;
using namespace pelican::bench;

const char* paper_cell(int weeks, models::PersonalizationMethod method) {
  using M = models::PersonalizationMethod;
  switch (weeks) {
    case 2:
      return method == M::kFreshLstm   ? "86.8 / 46.9"
             : method == M::kFeatureExtraction ? "67.7 / 49.9"
                                               : "73.0 / 51.3";
    case 4:
      return method == M::kFreshLstm   ? "91.6 / 52.2"
             : method == M::kFeatureExtraction ? "68.9 / 56.6"
                                               : "78.4 / 56.8";
    case 6:
      return method == M::kFreshLstm   ? "91.8 / 54.1"
             : method == M::kFeatureExtraction ? "69.0 / 58.3"
                                               : "77.7 / 58.9";
    default:
      return method == M::kFreshLstm   ? "70.3 / 60.0"
             : method == M::kFeatureExtraction ? "67.8 / 61.2"
                                               : "76.5 / 60.7";
  }
}

}  // namespace

int main() {
  const auto scale = ScaleConfig::from_env();
  Pipeline pipeline(scale, mobility::SpatialLevel::kBuilding);
  print_banner(std::cout, "Table IV: training-data size (building level)");
  print_scale_banner(pipeline);

  const std::size_t user_count =
      std::min<std::size_t>(pipeline.users().size(), 6);
  // Week budgets must fit inside the 80% training split.
  const int max_weeks = scale.weeks * 4 / 5;
  std::vector<int> week_grid = {2, 4, 6, 8};
  std::erase_if(week_grid, [&](int w) { return w > max_weeks; });

  using M = models::PersonalizationMethod;
  Table table({"train weeks", "method", "train top-1 %", "test top-1 %",
               "gap", "paper (train / test top-1)"});

  double fresh_small_gap = 0.0, fe_small_gap = 0.0;
  for (const int weeks : week_grid) {
    for (const M method :
         {M::kFreshLstm, M::kFeatureExtraction, M::kFineTuning}) {
      double train_acc = 0.0, test_acc = 0.0;
      for (std::size_t u = 0; u < user_count; ++u) {
        auto personalized = pipeline.personalized(u, method, weeks);
        auto& user = pipeline.users()[u];
        const models::WindowDataset train(
            mobility::windows_in_first_weeks(user.train_windows, weeks),
            pipeline.spec());
        const models::WindowDataset test(user.test_windows,
                                           pipeline.spec());
        train_acc += nn::topk_accuracy(personalized.model, train, 1);
        test_acc += nn::topk_accuracy(personalized.model, test, 1);
      }
      train_acc *= 100.0 / static_cast<double>(user_count);
      test_acc *= 100.0 / static_cast<double>(user_count);
      table.add_row({std::to_string(weeks), models::to_string(method),
                     Table::num(train_acc, 1), Table::num(test_acc, 1),
                     Table::num(train_acc - test_acc, 1),
                     paper_cell(weeks, method)});
      if (weeks == week_grid.front()) {
        if (method == M::kFreshLstm) fresh_small_gap = train_acc - test_acc;
        if (method == M::kFeatureExtraction) {
          fe_small_gap = train_acc - test_acc;
        }
      }
    }
  }
  std::cout << table;
  std::cout << "shape (fresh LSTM overfits more than TL FE at small data): "
            << (fresh_small_gap > fe_small_gap - 1.0 ? "HOLDS" : "DIFFERS")
            << "\n";
  return 0;
}
