// Throughput of the routed multi-process fleet vs the single-process
// engine: requests/sec through Router -> wire -> N pelican_engined
// processes, swept over fleet size, against the same workload served by an
// in-process DeploymentRegistry + BatchScheduler.
//
// What this measures: the cost of the routing tier (framing, sockets, one
// hop) and what it buys (N registries, N schedulers, N process heaps — the
// scaling unit of the ROADMAP's cross-process sharding). On one host the
// engines share the physical cores with each other and the router, so the
// single-host speedup from process count is bounded; the interesting
// numbers are the wire overhead at fleet=1 and the trend as processes
// increase (which becomes real scaling the moment the addresses point at
// other hosts).
//
// Honors PELICAN_BENCH_SCALE (tiny | default | paper) and writes
// machine-readable results via harness/results.hpp.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "harness/results.hpp"
#include "nn/model.hpp"
#include "router/local_fleet.hpp"
#include "router/router.hpp"
#include "serve/scheduler.hpp"
#include "store/model_store.hpp"

using namespace pelican;

namespace {

struct RouterScale {
  std::string name;
  std::size_t num_locations;
  std::size_t hidden_dim;
  std::size_t users;
  std::size_t requests;
};

RouterScale scale_from_env() {
  const char* env = std::getenv("PELICAN_BENCH_SCALE");
  const std::string name = env == nullptr ? "default" : env;
  if (name == "tiny") return {"tiny", 16, 16, 32, 2000};
  if (name == "paper") return {"paper", 150, 64, 512, 50000};
  return {"default", 40, 32, 256, 20000};
}

mobility::Window random_window(Rng& rng, std::size_t num_locations) {
  mobility::Window window;
  for (auto& step : window.steps) {
    step.entry_bin = static_cast<std::uint8_t>(rng.below(mobility::kEntryBins));
    step.duration_bin =
        static_cast<std::uint8_t>(rng.below(mobility::kDurationBins));
    step.day_of_week =
        static_cast<std::uint8_t>(rng.below(mobility::kDaysPerWeek));
    step.location = static_cast<std::uint16_t>(rng.below(num_locations));
  }
  window.next_location = static_cast<std::uint16_t>(rng.below(num_locations));
  return window;
}

/// Serves `requests` through `serve_fn` from `clients` threads, each
/// forwarding its strided slice as batches of `batch`. Returns wall
/// seconds.
template <typename ServeFn>
double drive(const std::vector<serve::PredictRequest>& requests,
             std::size_t clients, std::size_t batch, ServeFn&& serve_fn) {
  const Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<serve::PredictRequest> slice;
      slice.reserve(batch);
      for (std::size_t i = c; i < requests.size(); i += clients) {
        slice.push_back(requests[i]);
        if (slice.size() == batch) {
          serve_fn(slice);
          slice.clear();
        }
      }
      if (!slice.empty()) serve_fn(slice);
    });
  }
  for (auto& thread : threads) thread.join();
  return watch.seconds();
}

/// $PELICAN_STATSZ if set, else the ../tools/pelican_statsz sibling of the
/// calling binary — the same resolution LocalFleet uses for pelican_engined.
std::string statsz_path() {
  if (const char* env = std::getenv("PELICAN_STATSZ")) return env;
  std::error_code ec;
  const auto self = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) {
    const auto candidate =
        self.parent_path().parent_path() / "tools" / "pelican_statsz";
    if (std::filesystem::exists(candidate)) return candidate.string();
  }
  return {};
}

/// Scrapes the live fleet with pelican_statsz --json into the bench results
/// directory (the snapshot CI uploads next to the bench JSON). The router's
/// own self-report — hedge/retry/quarantine counters, router-side stage
/// histograms — rides along as a serialized metrics frame, merged by statsz
/// as the pseudo-engine "router". Best-effort: a missing binary or failed
/// scrape warns, never fails the bench.
void snapshot_fleet_metrics(const std::vector<std::string>& addresses,
                            router::Router& front_door) {
  const std::string statsz = statsz_path();
  if (statsz.empty()) {
    std::cerr << "warning: pelican_statsz not found (set PELICAN_STATSZ); "
                 "skipping fleet metrics snapshot\n";
    return;
  }
  const std::filesystem::path dir = bench::bench_results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::filesystem::path router_report = dir / "router_report.bin";
  {
    const auto frame = router::encode_metrics_reply(front_door.self_report());
    std::ofstream file(router_report, std::ios::binary | std::ios::trunc);
    file.write(reinterpret_cast<const char*>(frame.data()),
               static_cast<std::streamsize>(frame.size()));
  }
  const std::filesystem::path out = dir / "statsz_snapshot.json";
  std::string command = statsz + " --json --out " + out.string() +
                        " --router-file " + router_report.string();
  for (const auto& address : addresses) command += " --engine " + address;
  if (std::system(command.c_str()) != 0) {
    std::cerr << "warning: pelican_statsz snapshot failed\n";
    return;
  }
  std::cout << "statsz snapshot: " << out.string() << "\n";
}

}  // namespace

int main() {
  const RouterScale scale = scale_from_env();
  const std::size_t cores = std::thread::hardware_concurrency();
  const std::size_t clients = 4;
  const std::size_t client_batch = 64;

  print_banner(std::cout,
               "router_throughput: multi-process fleet vs single process");
  std::cout << "scale " << scale.name << ": " << scale.users << " users, "
            << scale.requests << " requests, " << scale.num_locations
            << " locations, hidden " << scale.hidden_dim << ", " << cores
            << " cores, " << clients << " client threads\n";

  const mobility::EncodingSpec spec{mobility::SpatialLevel::kBuilding,
                                    scale.num_locations};
  Rng rng(2026);
  const nn::SequenceClassifier model = nn::make_one_layer_lstm(
      spec.input_dim(), scale.hidden_dim, scale.num_locations,
      /*dropout_rate=*/0.0, rng);

  std::vector<serve::PredictRequest> requests;
  requests.reserve(scale.requests);
  for (std::size_t i = 0; i < scale.requests; ++i) {
    requests.push_back({static_cast<std::uint32_t>(rng.below(scale.users)),
                        random_window(rng, scale.num_locations), 3});
  }

  Table table({"mode", "processes", "req/s", "vs single-proc", "router p50 ms",
               "router p99 ms", "engine mean batch"});

  // --- Single-process baseline: the PR 2/3 engine, no wire ---------------
  double baseline_rps = 0.0;
  {
    serve::DeploymentRegistry registry(/*shards=*/16);
    for (std::uint32_t user = 0; user < scale.users; ++user) {
      registry.deploy(user,
                      core::DeployedModel(model.clone(), spec,
                                          core::PrivacyLayer(1.0),
                                          core::DeploymentSite::kInCloud,
                                          /*model_version=*/1));
    }
    serve::BatchScheduler scheduler(
        registry, {.max_batch = 32,
                   .max_delay = std::chrono::microseconds(2000)});
    const double seconds =
        drive(requests, clients, client_batch,
              [&](const std::vector<serve::PredictRequest>& slice) {
                const auto responses = scheduler.serve(slice);
                for (const auto& response : responses) {
                  if (!response.ok) std::exit(1);
                }
              });
    baseline_rps = static_cast<double>(requests.size()) / seconds;
    const auto snap = scheduler.stats().snapshot();
    table.add_row({"engine (in-process)", "1", Table::num(baseline_rps, 0),
                   "1.0x", "-", "-", Table::num(snap.mean_batch_size, 2)});
  }

  // --- Fleet sweep: 1/2/4 engine processes behind the router -------------
  const std::filesystem::path fleet_root =
      std::filesystem::temp_directory_path() /
      ("pelican_router_bench_" + std::to_string(::getpid()));
  {
    // One store shared by every fleet size: per-user copies of the model.
    store::ModelStore store(
        std::make_unique<store::FilesystemBackend>(fleet_root / "store"));
    for (std::uint32_t user = 0; user < scale.users; ++user) {
      store.put({"personal", user, 1}, model.clone());
    }
  }

  for (const std::size_t processes : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
    router::LocalFleetConfig fleet_config;
    fleet_config.root = fleet_root;
    fleet_config.processes = processes;
    fleet_config.extra_args = {"--max-batch", "32", "--max-delay-us", "2000",
                               "--shards", "16"};
    router::LocalFleet fleet(fleet_config);

    router::Router front_door;
    for (const auto& address : fleet.addresses()) {
      (void)front_door.add_backend(address);
    }
    for (std::uint32_t user = 0; user < scale.users; ++user) {
      front_door.deploy(user, 1, spec, /*temperature=*/1.0);
    }

    const double seconds =
        drive(requests, clients, client_batch,
              [&](const std::vector<serve::PredictRequest>& slice) {
                const auto responses = front_door.serve(slice);
                for (const auto& response : responses) {
                  if (!response.ok) std::exit(1);
                }
              });
    const double rps = static_cast<double>(requests.size()) / seconds;

    const auto router_snap = front_door.stats().snapshot();
    const auto fleet_snap = front_door.fleet_stats();
    table.add_row({"router fleet", std::to_string(processes),
                   Table::num(rps, 0),
                   Table::num(rps / baseline_rps, 2) + "x",
                   Table::num(router_snap.p50_latency_ms, 3),
                   Table::num(router_snap.p99_latency_ms, 3),
                   Table::num(fleet_snap.mean_batch_size, 2)});

    if (processes == 4) {
      // Largest fleet, still live and full of stage histograms + traces:
      // scrape it the way an operator would.
      snapshot_fleet_metrics(fleet.addresses(), front_door);
    }

    front_door.drain_fleet();
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      if (fleet.reap(i) != 0) {
        std::cerr << "warning: engine " << i << " did not drain cleanly\n";
      }
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(fleet_root, ec);

  std::cout << table;
  bench::write_bench_json("router_throughput", table);
  return 0;
}
