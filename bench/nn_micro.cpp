// Library-level microbenchmarks (google-benchmark): the kernels every
// experiment sits on — GEMM, LSTM forward/backward, softmax (with the
// privacy layer's extreme temperatures), and batched black-box queries.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"

namespace {

using namespace pelican;
using namespace pelican::nn;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::randn(n, n, 1.0f, rng);
  const Matrix b = Matrix::randn(n, n, 1.0f, rng);
  Matrix out;
  for (auto _ : state) {
    matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_LstmForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Lstm lstm(128, 64, rng);
  Sequence input(2, Matrix::randn(batch, 128, 1.0f, rng));
  for (auto _ : state) {
    auto out = lstm.forward(input, false);
    benchmark::DoNotOptimize(out.back().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmForward)->Arg(32)->Arg(256)->Arg(1024);

void BM_LstmBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Lstm lstm(128, 64, rng);
  Sequence input(2, Matrix::randn(batch, 128, 1.0f, rng));
  Sequence dout(2);
  dout[1] = Matrix::randn(batch, 64, 1.0f, rng);
  for (auto _ : state) {
    (void)lstm.forward(input, false);
    auto dx = lstm.backward(dout);
    benchmark::DoNotOptimize(dx[0].data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmBackward)->Arg(32)->Arg(256);

void BM_SoftmaxTemperature(benchmark::State& state) {
  Rng rng(4);
  const Matrix logits = Matrix::randn(256, 150, 2.0f, rng);
  const double temperature = state.range(0) == 0 ? 1.0 : 1e-3;
  for (auto _ : state) {
    auto probs = softmax(logits, temperature);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SoftmaxTemperature)->Arg(0)->Arg(1);

void BM_ModelQueryBatch(benchmark::State& state) {
  // The attack's inner loop: a batched candidate query through the
  // two-layer model (building-scale input dim).
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto model = make_two_layer_lstm(127, 64, 40, 0.1, rng);
  Sequence input(2, Matrix(batch, 127, 0.0f));
  Rng fill(6);
  for (auto& step : input) {
    for (std::size_t r = 0; r < batch; ++r) {
      step(r, fill.below(127)) = 1.0f;
    }
  }
  for (auto _ : state) {
    auto probs = model.predict_proba(input);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ModelQueryBatch)->Arg(64)->Arg(512)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
