// Library-level microbenchmarks (google-benchmark): the kernels every
// experiment sits on — GEMM (packed dense + batch-1 column split), the LSTM
// forward in both encodings (dense vs one-hot SparseRows), softmax at the
// privacy layer's extreme temperatures, and batched black-box queries.
//
// Besides the google-benchmark output, main() times the ISSUE-4-tracked
// kernel comparisons with the harness Stopwatch and drops them as a Table
// JSON (build/bench_results/nn_micro.json) so the CI bench-trajectory
// artifact and tools/bench_diff.py see these kernels alongside the
// experiment benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "harness/results.hpp"
#include "nn/activations.hpp"
#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/model.hpp"
#include "nn/quant_lstm.hpp"
#include "nn/sparse.hpp"

namespace {

using namespace pelican;
using namespace pelican::nn;

/// One-hot input in the mobility-encoding shape: four hot columns per row.
SparseSequence one_hot_input(std::size_t steps, std::size_t batch,
                             std::size_t dim, Rng& rng) {
  SparseSequence x(steps, SparseRows(batch, dim));
  for (auto& step : x) {
    step.reserve(4 * batch);
    for (std::size_t r = 0; r < batch; ++r) {
      for (std::size_t block = 0; block < 4; ++block) {
        const std::size_t lo = dim * block / 4;
        const std::size_t hi = dim * (block + 1) / 4;
        step.add(r, lo + rng.below(hi - lo), 1.0f);
      }
    }
  }
  return x;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = Matrix::randn(n, n, 1.0f, rng);
  const Matrix b = Matrix::randn(n, n, 1.0f, rng);
  Matrix out;
  for (auto _ : state) {
    matmul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulBtBatch1(benchmark::State& state) {
  // The single-query forward shape: one input row against a wide packed
  // weight (n outputs), the case the column-threaded split targets.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Matrix a = Matrix::randn(1, 256, 1.0f, rng);
  const Matrix w = Matrix::randn(n, 256, 1.0f, rng);
  Matrix out;
  for (auto _ : state) {
    matmul_bt(a, w, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 256 * n);
}
BENCHMARK(BM_MatmulBtBatch1)->Arg(256)->Arg(4096);

void BM_LstmForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Lstm lstm(128, 64, rng);
  Sequence input(2, Matrix::randn(batch, 128, 1.0f, rng));
  for (auto _ : state) {
    auto out = lstm.forward(input, false);
    benchmark::DoNotOptimize(out.back().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmForward)->Arg(32)->Arg(256)->Arg(1024);

void BM_LstmForwardOneHot(benchmark::State& state) {
  // Sparse vs dense on the SAME one-hot input (range(1) selects the
  // encoding): the ISSUE 4 fast path. Results are bit-identical; only the
  // input product changes (nnz row gathers vs input_dim x 4H GEMM).
  const auto batch = static_cast<std::size_t>(state.range(0));
  const bool sparse = state.range(1) != 0;
  Rng rng(3);
  Lstm lstm(128, 64, rng);
  const SparseSequence input = one_hot_input(2, batch, 128, rng);
  const Sequence dense_input = to_dense(input);
  for (auto _ : state) {
    auto out = sparse ? lstm.forward_sparse(input, false)
                      : lstm.forward(dense_input, false);
    benchmark::DoNotOptimize(out.back().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmForwardOneHot)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_LstmForwardFastAct(benchmark::State& state) {
  // ISSUE 6 gate-dominated shape: batch-1 one-hot forward where the input
  // product is nnz gathers, so runtime is mostly the 4H gate activations.
  // range(1) selects exact libm (0) vs the vectorized polynomial kernels
  // (1, ActivationMode::kFastApprox).
  const auto hidden = static_cast<std::size_t>(state.range(0));
  const bool fast = state.range(1) != 0;
  Rng rng(8);
  Lstm lstm(128, hidden, rng);
  lstm.set_activation_mode(fast ? ActivationMode::kFastApprox
                                : ActivationMode::kExact);
  const SparseSequence input = one_hot_input(8, 1, 128, rng);
  for (auto _ : state) {
    auto out = lstm.forward_sparse(input, false);
    benchmark::DoNotOptimize(out.back().data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_LstmForwardFastAct)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

void BM_QuantizedLstmForward(benchmark::State& state) {
  // fp32 Lstm vs its int8 QuantizedLstm on the same one-hot input
  // (range(1) selects the weight format). Both run exact activations, so
  // the delta isolates the weight-product change (int8 panel gathers +
  // int8-row recurrence vs fp32).
  const auto batch = static_cast<std::size_t>(state.range(0));
  const bool int8 = state.range(1) != 0;
  Rng rng(9);
  Lstm lstm(128, 64, rng);
  QuantizedLstm qlstm(QuantizedMatrix::quantize_rows(lstm.w_ih()),
                      QuantizedMatrix::quantize_rows(lstm.w_hh()),
                      lstm.bias());
  const SparseSequence input = one_hot_input(8, batch, 128, rng);
  for (auto _ : state) {
    auto out = int8 ? qlstm.forward_sparse(input, false)
                    : lstm.forward_sparse(input, false);
    benchmark::DoNotOptimize(out.back().data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * batch);
}
BENCHMARK(BM_QuantizedLstmForward)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({32, 0})
    ->Args({32, 1});

void BM_LstmBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Lstm lstm(128, 64, rng);
  Sequence input(2, Matrix::randn(batch, 128, 1.0f, rng));
  Sequence dout(2);
  dout[1] = Matrix::randn(batch, 64, 1.0f, rng);
  for (auto _ : state) {
    (void)lstm.forward(input, false);
    auto dx = lstm.backward(dout);
    benchmark::DoNotOptimize(dx[0].data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmBackward)->Arg(32)->Arg(256);

void BM_SoftmaxTemperature(benchmark::State& state) {
  Rng rng(4);
  const Matrix logits = Matrix::randn(256, 150, 2.0f, rng);
  const double temperature = state.range(0) == 0 ? 1.0 : 1e-3;
  for (auto _ : state) {
    auto probs = softmax(logits, temperature);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_SoftmaxTemperature)->Arg(0)->Arg(1);

void BM_ModelQueryBatch(benchmark::State& state) {
  // The attack's inner loop: a batched candidate query through the
  // two-layer model (building-scale input dim), via the sparse encoding
  // the attack scorer now uses.
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto model = make_two_layer_lstm(127, 64, 40, 0.1, rng);
  Rng fill(6);
  SparseSequence input(2, SparseRows(batch, 127));
  for (auto& step : input) {
    for (std::size_t r = 0; r < batch; ++r) {
      step.add(r, fill.below(127), 1.0f);
    }
  }
  for (auto _ : state) {
    auto probs = model.predict_proba(input);
    benchmark::DoNotOptimize(probs.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ModelQueryBatch)->Arg(64)->Arg(512)->Arg(1024);

/// The PR 5 serving path, reproduced as the gate_fwd acceptance baseline:
/// per-step no-pack products (matmul_bt's batch-1 dot kernel — the seed had
/// no cross-timestep pack hoist) and the separate scalar bias/activation/
/// cell-update loops the fused gate pass replaced. write_kernel_table()
/// checks it bit-identical to today's exact-mode forward before timing, so
/// the row measures the same function either side.
Sequence seed_forward_sparse(const Lstm& lstm, const SparseSequence& input) {
  const std::size_t hidden = lstm.hidden_dim();
  const std::size_t batch = input[0].rows();
  const float* bias = lstm.bias().row(0).data();
  Sequence output(input.size());
  Matrix h_prev(batch, hidden, 0.0f);
  Matrix c_prev(batch, hidden, 0.0f);
  for (std::size_t t = 0; t < input.size(); ++t) {
    Matrix gates;
    sparse_matmul_bt(input[t], lstm.w_ih(), gates);
    matmul_bt(h_prev, lstm.w_hh(), gates, /*accumulate=*/true);
    Matrix c_next(batch, hidden);
    Matrix h_next(batch, hidden);
    for (std::size_t r = 0; r < batch; ++r) {
      float* g = gates.data() + r * 4 * hidden;
      const float* cp = c_prev.data() + r * hidden;
      float* cn = c_next.data() + r * hidden;
      float* hn = h_next.data() + r * hidden;
      for (std::size_t j = 0; j < 4 * hidden; ++j) g[j] += bias[j];
      for (std::size_t j = 0; j < hidden; ++j) g[j] = sigmoid(g[j]);
      for (std::size_t j = hidden; j < 2 * hidden; ++j) g[j] = sigmoid(g[j]);
      for (std::size_t j = 2 * hidden; j < 3 * hidden; ++j)
        g[j] = std::tanh(g[j]);
      for (std::size_t j = 3 * hidden; j < 4 * hidden; ++j)
        g[j] = sigmoid(g[j]);
      for (std::size_t j = 0; j < hidden; ++j) {
        cn[j] = g[hidden + j] * cp[j] + g[j] * g[2 * hidden + j];
        hn[j] = g[3 * hidden + j] * std::tanh(cn[j]);
      }
    }
    c_prev = std::move(c_next);
    h_prev = h_next;
    output[t] = std::move(h_next);
  }
  return output;
}

/// Best-of-reps wall time of fn() in milliseconds. Minimum, not median:
/// these cases run tens of microseconds, so on a contended host any rep
/// can absorb a scheduler slice — the fastest rep is the least-perturbed
/// estimate of the kernel itself, and it is the stable statistic for the
/// CI trajectory.
template <typename Fn>
double time_ms(Fn&& fn, int reps = 9, int iters_per_rep = 20) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (int i = 0; i < iters_per_rep; ++i) fn();
    const double ms = watch.milliseconds() / iters_per_rep;
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

/// The CI-tracked kernel table: dense-vs-sparse LSTM forward at the
/// acceptance batch sizes plus the batch-1 GEMM, written via the same
/// Table::to_json path as every experiment bench.
void write_kernel_table() {
  Table table({"case", "baseline_ms", "fast_ms", "speedup"});
  Rng rng(42);
  Lstm lstm(128, 64, rng);

  for (const std::size_t batch : {std::size_t{1}, std::size_t{32},
                                  std::size_t{1024}}) {
    Rng data_rng(43);
    const SparseSequence sparse = one_hot_input(2, batch, 128, data_rng);
    const Sequence dense = to_dense(sparse);
    const double dense_ms =
        time_ms([&] { (void)lstm.forward(dense, false); });
    const double sparse_ms =
        time_ms([&] { (void)lstm.forward_sparse(sparse, false); });
    table.add_row({"lstm_fwd_onehot_b" + std::to_string(batch),
                   Table::num(dense_ms, 5), Table::num(sparse_ms, 5),
                   Table::num(dense_ms / sparse_ms, 2) + "x"});
  }

  {
    // Batch-1 GEMM, dot kernel vs the legacy branchy scalar loop it
    // replaced (kept here as the baseline so the delta stays visible in
    // the bench trajectory).
    Rng data_rng(44);
    const Matrix a = Matrix::randn(1, 256, 1.0f, data_rng);
    const Matrix w = Matrix::randn(1024, 256, 1.0f, data_rng);
    Matrix out;
    const auto legacy = [&] {
      out.resize(1, w.rows());
      for (std::size_t j = 0; j < w.rows(); ++j) {
        const float* b_row = w.data() + j * a.cols();
        float dot = 0.0f;
        for (std::size_t kk = 0; kk < a.cols(); ++kk) {
          const float av = a.data()[kk];
          if (av == 0.0f) continue;
          dot += av * b_row[kk];
        }
        out.data()[j] += dot;
      }
    };
    const double legacy_ms = time_ms(legacy);
    const double packed_ms = time_ms([&] { matmul_bt(a, w, out); });
    table.add_row({"gemm_bt_b1_256x1024", Table::num(legacy_ms, 5),
                   Table::num(packed_ms, 5),
                   Table::num(legacy_ms / packed_ms, 2) + "x"});
  }

  // ISSUE 6 rows. gate_fwd: the PR 5 serving path (seed_forward_sparse —
  // checked bit-identical to exact mode first) vs the fast-activation
  // forward on the same one-hot input; batch 1 is the acceptance case,
  // must clear 1.5x. quant_fwd: fp32 vs int8 weights, exact activations in
  // both, so each row isolates the weight-format change.
  for (const std::size_t hidden : {std::size_t{64}, std::size_t{128}}) {
    for (const std::size_t batch : {std::size_t{1}, std::size_t{32}}) {
      Rng gate_rng(45);
      Lstm gate_lstm(128, hidden, gate_rng);
      const SparseSequence input = one_hot_input(8, batch, 128, gate_rng);

      gate_lstm.set_activation_mode(ActivationMode::kExact);
      {
        const Sequence seed = seed_forward_sparse(gate_lstm, input);
        const Sequence exact = gate_lstm.forward_sparse(input, false);
        if (seed.back() != exact.back()) {
          std::cerr << "WARNING: seed replica diverged from exact forward "
                       "(gate_fwd baseline is not a faithful PR 5 path)\n";
        }
      }
      const double seed_ms =
          time_ms([&] { (void)seed_forward_sparse(gate_lstm, input); });
      gate_lstm.set_activation_mode(ActivationMode::kFastApprox);
      const double fast_ms =
          time_ms([&] { (void)gate_lstm.forward_sparse(input, false); });
      table.add_row({"gate_fwd_b" + std::to_string(batch) + "_h" +
                         std::to_string(hidden),
                     Table::num(seed_ms, 5), Table::num(fast_ms, 5),
                     Table::num(seed_ms / fast_ms, 2) + "x"});

      gate_lstm.set_activation_mode(ActivationMode::kExact);
      QuantizedLstm qlstm(QuantizedMatrix::quantize_rows(gate_lstm.w_ih()),
                          QuantizedMatrix::quantize_rows(gate_lstm.w_hh()),
                          gate_lstm.bias());
      const double fp32_ms =
          time_ms([&] { (void)gate_lstm.forward_sparse(input, false); });
      const double int8_ms =
          time_ms([&] { (void)qlstm.forward_sparse(input, false); });
      table.add_row({"quant_fwd_b" + std::to_string(batch) + "_h" +
                         std::to_string(hidden),
                     Table::num(fp32_ms, 5), Table::num(int8_ms, 5),
                     Table::num(fp32_ms / int8_ms, 2) + "x"});
    }
  }

  std::cout << table;
  pelican::bench::write_bench_json("nn_micro", table);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_kernel_table();
  return 0;
}
