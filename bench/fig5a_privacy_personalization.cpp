// Figure 5a — impact of the privacy layer on personalized models: percent
// reduction in privacy leakage vs top-k, for TL FE and TL FT models.
//
// Paper shape: 46-54% reduction across k; highest at k=1 (where the attack
// collapses to the prior), a dip around k=2, and TL FT reductions at or
// above TL FE.
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

namespace {

using namespace pelican;
using namespace pelican::bench;

std::vector<double> reductions_for(Pipeline& pipeline,
                                   models::PersonalizationMethod method,
                                   const std::vector<std::size_t>& ks) {
  attack::InversionConfig config;
  config.adversary = attack::Adversary::kA1;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = ks;
  config.max_windows = pipeline.scale().attack_windows_per_user;

  std::vector<double> reduction(ks.size(), 0.0);
  const std::size_t user_count =
      std::min<std::size_t>(pipeline.users().size(), 8);
  for (std::size_t u = 0; u < user_count; ++u) {
    auto personalized = pipeline.personalized(u, method);
    auto& user = pipeline.users()[u];

    core::Device device(user.persona.user_id, user.train_windows,
                        pipeline.spec());
    // Audit needs a personalized device; inject the cached model through
    // the same deployment path the system uses.
    core::DeployedModel baseline(personalized.model.clone(), pipeline.spec(),
                                 core::PrivacyLayer(1.0),
                                 core::DeploymentSite::kOnDevice);
    core::DeployedModel defended(personalized.model.clone(), pipeline.spec(),
                                 core::PrivacyLayer(
                                     core::PrivacyLayer::kStrongTemperature),
                                 core::DeploymentSite::kOnDevice);
    const auto prior = attack::make_prior(attack::PriorKind::kTrue,
                                          user.train_windows, baseline,
                                          user.test_windows);
    const auto base = attack::run_inversion(
        baseline, user.train_windows, user.test_windows, prior, config);
    const auto prot = attack::run_inversion(
        defended, user.train_windows, user.test_windows, prior, config);
    const auto r = core::leakage_reduction_percent(base, prot);
    for (std::size_t i = 0; i < ks.size(); ++i) reduction[i] += r[i];
  }
  for (double& v : reduction) v /= static_cast<double>(user_count);
  return reduction;
}

}  // namespace

int main() {
  Pipeline pipeline(ScaleConfig::from_env(),
                    mobility::SpatialLevel::kBuilding);
  print_banner(std::cout,
               "Figure 5a: privacy-layer leakage reduction by "
               "personalization method (A1, T=1e-3)");
  print_scale_banner(pipeline);

  const std::vector<std::size_t> ks = {1, 3, 5, 7, 9};
  const auto fe = reductions_for(
      pipeline, models::PersonalizationMethod::kFeatureExtraction, ks);
  const auto ft = reductions_for(
      pipeline, models::PersonalizationMethod::kFineTuning, ks);

  Table table({"top-k", "TL FE reduction %", "TL FT reduction %", "paper"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    table.add_row({std::to_string(ks[i]), Table::num(fe[i], 1),
                   Table::num(ft[i], 1), "46-54% band"});
  }
  std::cout << table;

  const bool shape_holds = fe[1] > 10.0 && ft[1] > 10.0;
  std::cout << "shape (substantial reduction for both TL methods): "
            << (shape_holds ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
