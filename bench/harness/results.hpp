// Machine-readable bench output — the first step of the CI-tracked bench
// trajectory (ROADMAP): every bench that prints a Table can also drop it as
// JSON into a results directory, which CI uploads as a workflow artifact.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace pelican::bench {

/// PELICAN_BENCH_RESULTS_DIR, default "build/bench_results" — the same
/// invoking-directory-relative convention as the model cache
/// (PELICAN_CACHE_DIR, "build/bench_cache").
inline std::filesystem::path bench_results_dir() {
  if (const char* env = std::getenv("PELICAN_BENCH_RESULTS_DIR")) {
    return env;
  }
  return "build/bench_results";
}

/// Writes `table` as <results-dir>/<name>.json and logs the path. Failures
/// (unwritable directory) only warn: losing a results file must never fail
/// a bench run.
inline void write_bench_json(const std::string& name, const Table& table) {
  namespace fs = std::filesystem;
  const fs::path dir = bench_results_dir();
  std::error_code ec;
  fs::create_directories(dir, ec);
  const fs::path path = dir / (name + ".json");
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: could not write bench results to " << path << "\n";
    return;
  }
  out << table.to_json();
  std::cout << "bench results: " << path.string() << "\n";
}

}  // namespace pelican::bench
