// Shared experiment pipeline for all bench binaries.
//
// Builds the synthetic campus world at a configurable scale, trains the
// general model and per-user personalized models, and caches every trained
// model in a filesystem-backed store::ModelStore (scoped by scale + spatial
// level + method) so the 13 experiment binaries re-train the pipeline once,
// not 13 times — and so the cached artifacts live in the same versioned
// store the rest of the system reads.
//
// Scale is selected with PELICAN_BENCH_SCALE:
//   tiny    — seconds; for smoke-testing the suite
//   default — minutes; reproduces every paper shape at reduced size
//   paper   — the paper's counts (200 contributors, 100 users, 150
//             buildings, ~3000 APs); hours on a laptop-class CPU
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "store/model_store.hpp"
#include "mobility/campus.hpp"
#include "mobility/dataset.hpp"
#include "models/window_dataset.hpp"
#include "mobility/persona.hpp"
#include "mobility/simulator.hpp"
#include "models/general.hpp"
#include "models/personalize.hpp"
#include "nn/model.hpp"

namespace pelican::bench {

struct ScaleConfig {
  std::string name = "default";
  std::size_t buildings = 40;
  std::size_t aps_per_building = 10;
  std::size_t contributors = 24;
  std::size_t users = 12;
  int weeks = 10;
  std::size_t hidden_dim = 64;
  std::size_t general_epochs = 8;
  std::size_t personal_epochs = 12;
  std::size_t attack_windows_per_user = 20;
  std::uint64_t seed = 2021;  // the paper's year; any constant works

  /// Reads PELICAN_BENCH_SCALE (tiny | default | paper).
  static ScaleConfig from_env();

  /// Stable cache key covering every field that affects trained artifacts.
  [[nodiscard]] std::string cache_key() const;
};

/// Everything the experiments need about one personalized user.
struct UserArtifacts {
  mobility::Persona persona;
  mobility::Trajectory trajectory;
  std::vector<mobility::Window> train_windows;
  std::vector<mobility::Window> test_windows;
  nn::SequenceClassifier model;  ///< TL FE personalized (the paper default).
};

class Pipeline {
 public:
  /// Builds (or loads from cache) the full pipeline at one spatial level.
  Pipeline(const ScaleConfig& scale, mobility::SpatialLevel level);

  [[nodiscard]] const ScaleConfig& scale() const noexcept { return scale_; }
  [[nodiscard]] mobility::SpatialLevel level() const noexcept {
    return level_;
  }
  [[nodiscard]] const mobility::Campus& campus() const noexcept {
    return campus_;
  }
  [[nodiscard]] const mobility::EncodingSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] const nn::SequenceClassifier& general() const noexcept {
    return general_;
  }
  [[nodiscard]] std::vector<UserArtifacts>& users() noexcept { return users_; }

  /// Pooled contributor windows (the general model's training set).
  [[nodiscard]] const models::WindowDataset& contributor_data() const {
    return *contributor_data_;
  }

  /// Cost of the cloud phase / mean per-user cost of the device phase.
  /// Measured on a cache miss; zero when loaded from cache (re-measured by
  /// the overhead bench, which forces retraining).
  [[nodiscard]] const PhaseCost& general_cost() const noexcept {
    return general_cost_;
  }
  [[nodiscard]] const PhaseCost& personalization_cost() const noexcept {
    return personalization_cost_;
  }
  [[nodiscard]] bool trained_fresh() const noexcept { return trained_fresh_; }

  /// Trains (or loads) a personalized model for `user_index` with an
  /// arbitrary method and training-week budget; cached in the model store.
  /// `weeks = 0` means the full training split.
  [[nodiscard]] models::PersonalizedModel personalized(
      std::size_t user_index, models::PersonalizationMethod method,
      int weeks = 0);

  /// The default personalization config used throughout the benches.
  [[nodiscard]] models::PersonalizationConfig personalization_config() const;

  /// Cache root (PELICAN_CACHE_DIR, default "build/bench_cache") — the
  /// filesystem root of the pipeline's model store.
  [[nodiscard]] static std::filesystem::path cache_root();

  /// The store holding every cached artifact of this pipeline (also usable
  /// by serving benches to publish model updates from the same source).
  [[nodiscard]] store::ModelStore& model_store() noexcept { return store_; }

 private:
  void build_world();
  void train_or_load();

  /// Store scope of this pipeline's artifacts with a method `tag`, e.g.
  /// "tiny-...-bldg/general" — namespaced by everything that affects
  /// trained weights.
  [[nodiscard]] std::string store_scope(const std::string& tag) const;

  ScaleConfig scale_;
  store::ModelStore store_;
  mobility::SpatialLevel level_;
  mobility::Campus campus_;
  mobility::EncodingSpec spec_;
  std::unique_ptr<models::WindowDataset> contributor_data_;
  nn::SequenceClassifier general_;
  std::vector<UserArtifacts> users_;
  PhaseCost general_cost_;
  PhaseCost personalization_cost_;
  bool trained_fresh_ = false;
};

/// Prints the standard bench header (scale, level, counts).
void print_scale_banner(const Pipeline& pipeline);

}  // namespace pelican::bench
