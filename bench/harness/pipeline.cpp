#include "harness/pipeline.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/rng.hpp"
#include "models/window_dataset.hpp"

namespace pelican::bench {

namespace {

// Version under which every cached artifact is stored (store::ModelKey
// version). Bump to invalidate all cached models at once.
constexpr std::uint32_t kCacheFormatVersion = 1;

std::string level_tag(mobility::SpatialLevel level) {
  return level == mobility::SpatialLevel::kBuilding ? "bldg" : "ap";
}

}  // namespace

ScaleConfig ScaleConfig::from_env() {
  ScaleConfig config;
  const char* env = std::getenv("PELICAN_BENCH_SCALE");
  const std::string scale = env == nullptr ? "default" : env;
  if (scale == "tiny") {
    config.name = "tiny";
    config.buildings = 12;
    config.aps_per_building = 4;
    config.contributors = 6;
    config.users = 4;
    config.weeks = 4;
    config.hidden_dim = 24;
    config.general_epochs = 4;
    config.personal_epochs = 6;
    config.attack_windows_per_user = 10;
  } else if (scale == "paper") {
    config.name = "paper";
    config.buildings = 150;
    config.aps_per_building = 20;
    config.contributors = 200;
    config.users = 100;
    config.weeks = 10;
    config.hidden_dim = 128;
    config.general_epochs = 10;
    config.personal_epochs = 15;
    config.attack_windows_per_user = 50;
  } else if (scale != "default" && !scale.empty()) {
    std::cerr << "warning: unknown PELICAN_BENCH_SCALE '" << scale
              << "', using default\n";
  }
  return config;
}

std::string ScaleConfig::cache_key() const {
  std::ostringstream key;
  key << name << "-b" << buildings << "-a" << aps_per_building << "-c"
      << contributors << "-u" << users << "-w" << weeks << "-h" << hidden_dim
      << "-ge" << general_epochs << "-pe" << personal_epochs << "-s" << seed;
  return key.str();
}

std::filesystem::path Pipeline::cache_root() {
  const char* env = std::getenv("PELICAN_CACHE_DIR");
  return env == nullptr ? std::filesystem::path("build/bench_cache")
                        : std::filesystem::path(env);
}

std::string Pipeline::store_scope(const std::string& tag) const {
  return scale_.cache_key() + "-" + level_tag(level_) + "/" + tag;
}

Pipeline::Pipeline(const ScaleConfig& scale, mobility::SpatialLevel level)
    : scale_(scale),
      store_(std::make_unique<store::FilesystemBackend>(cache_root())),
      level_(level) {
  build_world();
  train_or_load();
}

void Pipeline::build_world() {
  mobility::CampusConfig campus_config;
  campus_config.buildings = scale_.buildings;
  campus_config.mean_aps_per_building = scale_.aps_per_building;
  campus_ = mobility::Campus::generate(campus_config, scale_.seed);
  spec_ = mobility::EncodingSpec::for_campus(campus_, level_);

  Rng rng(scale_.seed);
  const mobility::PersonaConfig persona_config;
  const mobility::SimulationConfig sim_config{.weeks = scale_.weeks};

  // Contributors (set G) and users (set P) are disjoint by construction.
  std::vector<mobility::Window> pooled;
  for (std::size_t u = 0; u < scale_.contributors; ++u) {
    Rng persona_rng = rng.fork(u + 1);
    const auto persona = mobility::generate_persona(
        campus_, static_cast<std::uint32_t>(u), persona_config, persona_rng);
    const auto trajectory =
        mobility::simulate(campus_, persona, sim_config, rng.fork(100000 + u));
    const auto windows = mobility::make_windows(trajectory, level_);
    pooled.insert(pooled.end(), windows.begin(), windows.end());
  }
  contributor_data_ =
      std::make_unique<models::WindowDataset>(std::move(pooled), spec_);

  users_.clear();
  users_.reserve(scale_.users);
  for (std::size_t u = 0; u < scale_.users; ++u) {
    const std::size_t global_id = scale_.contributors + u;
    UserArtifacts user;
    Rng persona_rng = rng.fork(global_id + 1);
    user.persona = mobility::generate_persona(
        campus_, static_cast<std::uint32_t>(global_id), persona_config,
        persona_rng);
    user.trajectory = mobility::simulate(campus_, user.persona, sim_config,
                                         rng.fork(100000 + global_id));
    const auto windows = mobility::make_windows(user.trajectory, level_);
    auto split = mobility::split_windows(windows, 0.8);
    user.train_windows = std::move(split.train);
    user.test_windows = std::move(split.test);
    users_.push_back(std::move(user));
  }
}

models::PersonalizationConfig Pipeline::personalization_config() const {
  models::PersonalizationConfig config;
  config.method = models::PersonalizationMethod::kFeatureExtraction;
  config.train.epochs = scale_.personal_epochs;
  config.train.batch_size = 32;
  config.train.lr = 1e-3;
  config.train.weight_decay = 1e-6;
  config.fresh_hidden_dim = scale_.hidden_dim / 2;
  config.seed = scale_.seed + 17;
  return config;
}

void Pipeline::train_or_load() {
  const std::string general_scope = store_scope("general");
  const std::string fe_scope = store_scope("personal-fe");

  bool loaded = false;
  try {
    if (auto general = store_.find({general_scope, 0, kCacheFormatVersion})) {
      general_ = *std::move(general);
      loaded = true;
      for (std::size_t u = 0; u < users_.size(); ++u) {
        auto user_model = store_.find({fe_scope,
                                       static_cast<std::uint32_t>(u),
                                       kCacheFormatVersion});
        if (!user_model) {
          std::cerr << "cache incomplete (user " << u << "); retraining\n";
          loaded = false;
          break;
        }
        users_[u].model = *std::move(user_model);
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "cache unreadable (" << e.what() << "); retraining\n";
    loaded = false;
  }
  if (loaded) return;

  trained_fresh_ = true;
  std::cerr << "[pipeline] training general model (" << level_tag(level_)
            << ", " << contributor_data_->size() << " windows)...\n";
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = scale_.hidden_dim;
  general_config.dropout = 0.1;
  general_config.train.epochs = scale_.general_epochs;
  general_config.train.batch_size = 128;
  general_config.train.lr = 1e-3;
  general_config.train.weight_decay = 1e-6;
  general_config.seed = scale_.seed + 3;
  {
    PhaseTimer timer;
    general_ =
        models::train_general_model(*contributor_data_, general_config).model;
    general_cost_ = timer.stop();
  }
  store_.put({general_scope, 0, kCacheFormatVersion}, general_.clone());

  std::cerr << "[pipeline] personalizing " << users_.size() << " users...\n";
  PhaseTimer personal_timer;
  const auto config = personalization_config();
  for (std::size_t u = 0; u < users_.size(); ++u) {
    const models::WindowDataset data(users_[u].train_windows, spec_);
    users_[u].model = models::personalize(general_, data, config).model;
    store_.put({fe_scope, static_cast<std::uint32_t>(u), kCacheFormatVersion},
               users_[u].model.clone());
  }
  personalization_cost_ = personal_timer.stop();
  // Store a per-user average so the overhead bench reports the paper's
  // "seconds per personalization" framing.
  if (!users_.empty()) {
    personalization_cost_.wall_seconds /=
        static_cast<double>(users_.size());
    personalization_cost_.cpu_seconds /= static_cast<double>(users_.size());
    personalization_cost_.est_cycles /= users_.size();
  }
}

models::PersonalizedModel Pipeline::personalized(
    std::size_t user_index, models::PersonalizationMethod method,
    int weeks) {
  std::ostringstream tag;
  tag << "personal-m" << static_cast<int>(method) << "-w" << weeks;
  const store::ModelKey key{store_scope(tag.str()),
                            static_cast<std::uint32_t>(user_index),
                            kCacheFormatVersion};

  models::PersonalizedModel result;
  try {
    if (auto cached = store_.find(key)) {
      result.model = *std::move(cached);
      return result;
    }
  } catch (const std::exception&) {
    // undecodable cache entry: fall through to retrain
  }

  const auto& user = users_.at(user_index);
  std::vector<mobility::Window> windows =
      weeks == 0 ? user.train_windows
                 : mobility::windows_in_first_weeks(user.train_windows,
                                                    weeks);
  const models::WindowDataset data(std::move(windows), spec_);
  auto config = personalization_config();
  config.method = method;
  result = models::personalize(general_, data, config);
  store_.put(key, result.model.clone());
  return result;
}

void print_scale_banner(const Pipeline& pipeline) {
  const auto& s = pipeline.scale();
  std::cout << "scale=" << s.name << " level="
            << mobility::to_string(pipeline.level())
            << " buildings=" << pipeline.campus().num_buildings()
            << " aps=" << pipeline.campus().num_aps()
            << " contributors=" << s.contributors << " users=" << s.users
            << " weeks=" << s.weeks << " hidden=" << s.hidden_dim << "\n";
}

}  // namespace pelican::bench
