// Shared attack-evaluation helpers for the experiment binaries: run an
// inversion configuration against every personalized user in a pipeline
// (optionally behind a privacy layer) and aggregate accuracies the way the
// paper reports them (mean over users).
#pragma once

#include <iostream>
#include <vector>

#include "attack/gradient_attack.hpp"
#include "attack/inversion.hpp"
#include "core/pelican.hpp"
#include "harness/pipeline.hpp"

namespace pelican::bench {

struct AttackSweep {
  std::vector<std::size_t> ks;
  std::vector<attack::InversionResult> per_user;
  std::vector<double> mean_topk;  ///< Aggregate accuracy (%) per k.
  double total_seconds = 0.0;
  std::size_t total_queries = 0;

  [[nodiscard]] double mean_at(std::size_t k) const {
    for (std::size_t i = 0; i < ks.size(); ++i) {
      if (ks[i] == k) return mean_topk[i];
    }
    throw std::invalid_argument("AttackSweep::mean_at: k not evaluated");
  }
};

/// Runs the enumeration-based attack against every user. `temperature` = 1
/// attacks the raw deployment; smaller values attack a privacy-protected
/// deployment. Prior and locations-of-interest are derived per user.
inline AttackSweep run_attack_over_users(Pipeline& pipeline,
                                         const attack::InversionConfig& config,
                                         attack::PriorKind prior_kind,
                                         double temperature = 1.0) {
  AttackSweep sweep;
  sweep.ks = config.ks;
  sweep.mean_topk.assign(config.ks.size(), 0.0);

  for (auto& user : pipeline.users()) {
    core::DeployedModel deployment(user.model.clone(), pipeline.spec(),
                                   core::PrivacyLayer(temperature),
                                   core::DeploymentSite::kOnDevice);
    const auto prior = attack::make_prior(prior_kind, user.train_windows,
                                          deployment, user.test_windows);
    attack::InversionConfig user_config = config;
    user_config.max_windows = pipeline.scale().attack_windows_per_user;
    const auto result =
        attack::run_inversion(deployment, user.train_windows,
                              user.test_windows, prior, user_config);
    sweep.total_seconds += result.attack_seconds;
    sweep.total_queries += result.model_queries;
    for (std::size_t i = 0; i < sweep.ks.size(); ++i) {
      sweep.mean_topk[i] += result.topk_accuracy[i];
    }
    sweep.per_user.push_back(result);
  }

  const double n = static_cast<double>(pipeline.users().size());
  for (double& acc : sweep.mean_topk) acc = 100.0 * acc / n;
  return sweep;
}

/// Same aggregation for the gradient-descent attack (white-box).
inline AttackSweep run_gradient_over_users(
    Pipeline& pipeline, const attack::InversionConfig& config,
    attack::PriorKind prior_kind,
    const attack::GradientAttackConfig& gradient_config) {
  AttackSweep sweep;
  sweep.ks = config.ks;
  sweep.mean_topk.assign(config.ks.size(), 0.0);

  for (auto& user : pipeline.users()) {
    core::DeployedModel deployment(user.model.clone(), pipeline.spec(),
                                   core::PrivacyLayer(1.0),
                                   core::DeploymentSite::kOnDevice);
    const auto prior = attack::make_prior(prior_kind, user.train_windows,
                                          deployment, user.test_windows);
    attack::InversionConfig user_config = config;
    user_config.max_windows = pipeline.scale().attack_windows_per_user;
    const auto result = attack::run_gradient_inversion(
        user.model, pipeline.spec(), user.train_windows, prior, user_config,
        gradient_config);
    sweep.total_seconds += result.attack_seconds;
    sweep.total_queries += result.model_queries;
    for (std::size_t i = 0; i < sweep.ks.size(); ++i) {
      sweep.mean_topk[i] += result.topk_accuracy[i];
    }
    sweep.per_user.push_back(result);
  }

  const double n = static_cast<double>(pipeline.users().size());
  for (double& acc : sweep.mean_topk) acc = 100.0 * acc / n;
  return sweep;
}

}  // namespace pelican::bench
