// Figure 2b — impact of adversarial knowledge: A1 (knows x_{t-2}),
// A2 (knows x_{t-1}) and A3 (knows neither) all mount the time-based
// attack.
//
// Paper shape: all three adversaries perform effectively and equivalently —
// even A3, with no historical features at all, does not degrade.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/table.hpp"
#include "harness/attack_runner.hpp"

int main() {
  using namespace pelican;
  using namespace pelican::bench;

  Pipeline pipeline(ScaleConfig::from_env(), mobility::SpatialLevel::kBuilding);
  print_banner(std::cout,
               "Figure 2b: adversarial knowledge (time-based, true prior)");
  print_scale_banner(pipeline);

  attack::InversionConfig config;
  config.method = attack::AttackMethod::kTimeBased;
  config.ks = {1, 3, 5, 7};

  config.adversary = attack::Adversary::kA1;
  const auto a1 = run_attack_over_users(pipeline, config,
                                        attack::PriorKind::kTrue);
  config.adversary = attack::Adversary::kA2;
  const auto a2 = run_attack_over_users(pipeline, config,
                                        attack::PriorKind::kTrue);
  config.adversary = attack::Adversary::kA3;
  const auto a3 = run_attack_over_users(pipeline, config,
                                        attack::PriorKind::kTrue);

  Table table({"top-k", "A1 %", "A2 %", "A3 %", "paper"});
  for (std::size_t i = 0; i < config.ks.size(); ++i) {
    table.add_row({std::to_string(config.ks[i]),
                   Table::num(a1.mean_topk[i]), Table::num(a2.mean_topk[i]),
                   Table::num(a3.mean_topk[i]),
                   "A1 ~= A2 ~= A3 (~78 @k=3)"});
  }
  std::cout << table;

  const double spread =
      std::max({a1.mean_at(3), a2.mean_at(3), a3.mean_at(3)}) -
      std::min({a1.mean_at(3), a2.mean_at(3), a3.mean_at(3)});
  std::cout << "top-3 spread across adversaries: " << Table::num(spread, 1)
            << " points; shape (equivalent adversaries): "
            << (spread < 25.0 ? "HOLDS" : "DIFFERS") << "\n";
  return 0;
}
