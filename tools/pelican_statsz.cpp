// pelican_statsz — scrape a live fleet's observability surface.
//
// Connects to each engine address, issues the kMetrics verb, and prints the
// result as Prometheus-style text (default) or JSON (--json):
//
//   pelican_statsz --engine unix:/tmp/pelican/e0.sock
//                  --engine unix:/tmp/pelican/e1.sock [--json] [--out PATH]
//                  [--router-file PATH] [--watch SECS] [--serve ADDR]
//
// The router is not an engine (it has no listen socket to scrape), but its
// self-report — Router::self_report() serialized with encode_metrics_reply,
// carrying the hedge/retry/quarantine counters and router-side stage
// histograms — can be dropped into a file and merged here via
// --router-file, appearing as the pseudo-engine "router".
//
// The fleet view is the EXACT bucket-wise merge of the per-engine stage
// histograms (all histograms share fixed boundaries — see obs/metrics.hpp),
// with p50/p99 computed from the merged buckets. Trace journal records from
// every engine are pooled and sorted by trace id, so one routed request's
// engine-side and router-side spans (which share an id) print adjacently.
// Engine event journals are pooled the same way (wall-clock order).
//
// --watch SECS re-scrapes every SECS seconds and prints counter RATES and
// per-interval histogram quantiles, computed with the same exact delta
// logic the in-process flight recorder uses (obs::delta_state): counters
// clamp at zero across engine restarts, histogram quantiles come from
// bucket-wise interval subtraction. The first tick is the baseline.
//
// --serve ADDR mounts a full flight-recorder HTTP endpoint over the
// scraped fleet: a FlightRecorder whose source is "scrape every engine and
// merge", serving /metrics, /metrics.json, /timeseries, /events, /slo,
// /flight, /healthz until SIGINT/SIGTERM. ADDR is a socket address
// ("tcp:127.0.0.1:9090", "unix:/tmp/statsz.sock") or a bare port (TCP on
// 127.0.0.1). Scrape cadence is --interval MS (default 1000).
//
// Exit status: 0 when every engine answered, 1 when any scrape failed
// (partial results are still printed for the engines that answered).
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "router/flight_recorder.hpp"
#include "router/socket.hpp"
#include "router/wire.hpp"

using namespace pelican;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --engine ADDR [--engine ADDR ...] [--json] [--out PATH]\n"
         "       [--router-file PATH] [--watch SECS] [--serve ADDR]\n"
         "       [--interval MS]\n"
         "ADDR is unix:<path>, tcp:<host>:<port>, or (for --serve) a bare\n"
         "port. --router-file merges an encode_metrics_reply dump of the\n"
         "router's own self_report() as the pseudo-engine \"router\".\n"
         "--watch re-scrapes every SECS seconds and prints counter rates;\n"
         "--serve mounts the flight-recorder HTTP endpoint over the scraped\n"
         "fleet until SIGINT.\n";
  return 2;
}

router::EngineMetricsReport scrape(const std::string& address) {
  router::Socket socket =
      router::Socket::connect_to(router::parse_address(address));
  socket.send_frame(router::encode_metrics());
  return router::decode_metrics_reply(socket.recv_frame());
}

router::EngineMetricsReport read_router_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot read " + path);
  const std::vector<std::uint8_t> frame(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  return router::decode_metrics_reply(frame);
}

std::string stats_json(const serve::ServerStats::State& stats) {
  std::string out = "{";
  out += "\"requests\":" + std::to_string(stats.requests);
  out += ",\"rejected\":" + std::to_string(stats.rejected);
  out += ",\"shed\":" + std::to_string(stats.shed);
  out += ",\"peak_queue_depth\":" + std::to_string(stats.peak_queue_depth);
  out += ",\"batches\":" + std::to_string(stats.batches);
  out += '}';
  return out;
}

struct ScrapeOptions {
  std::vector<std::string> engines;
  std::string router_file;
};

struct FleetScrape {
  std::vector<std::pair<std::string, router::EngineMetricsReport>> reports;
  obs::RegistryState fleet;
  std::vector<obs::Event> events;
  bool all_ok = true;
};

/// One pass over every engine (+ the optional router file): per-engine
/// reports, the exact fleet merge, and the pooled event journal. Scrape
/// failures are reported on stderr (once per pass) and skipped.
FleetScrape scrape_fleet(const ScrapeOptions& options, bool quiet = false) {
  FleetScrape out;
  for (const std::string& address : options.engines) {
    try {
      router::EngineMetricsReport report = scrape(address);
      for (obs::TraceRecord& rec : report.traces) rec.source = address;
      out.reports.emplace_back(address, std::move(report));
    } catch (const std::exception& error) {
      if (!quiet) {
        std::cerr << "pelican_statsz: scrape of " << address
                  << " failed: " << error.what() << "\n";
      }
      out.all_ok = false;
    }
  }
  if (!options.router_file.empty()) {
    try {
      router::EngineMetricsReport report =
          read_router_file(options.router_file);
      for (obs::TraceRecord& rec : report.traces) rec.source = "router";
      out.reports.emplace_back("router", std::move(report));
    } catch (const std::exception& error) {
      if (!quiet) {
        std::cerr << "pelican_statsz: reading " << options.router_file
                  << " failed: " << error.what() << "\n";
      }
      out.all_ok = false;
    }
  }
  for (const auto& [address, report] : out.reports) {
    obs::merge_state(out.fleet, report.registry);
    obs::merge_events(out.events, report.events, address);
  }
  obs::sort_events(out.events);
  return out;
}

/// --watch: re-scrape on an interval and print exact interval rates — the
/// same delta logic FleetSampler uses, driven by a terminal loop.
int run_watch(const ScrapeOptions& options, double period_s,
              std::uint64_t max_ticks) {
  obs::RegistryState prev;
  bool has_prev = false;
  std::uint64_t prev_ms = 0;
  bool all_ok = true;
  for (std::uint64_t tick = 0; max_ticks == 0 || tick < max_ticks; ++tick) {
    if (g_stop.load()) break;
    const FleetScrape pass = scrape_fleet(options);
    all_ok = all_ok && pass.all_ok;
    const std::uint64_t now_ms = obs::unix_now_ms();
    if (!has_prev) {
      std::cout << "# baseline scrape of " << pass.reports.size()
                << " engines; rates start next tick\n"
                << std::flush;
    } else {
      const obs::RegistryState delta = obs::delta_state(pass.fleet, prev);
      const double dt_s =
          std::max(1e-6, static_cast<double>(now_ms - prev_ms) / 1000.0);
      std::cout << "# t+" << (tick * period_s) << "s interval=" << dt_s
                << "s engines=" << pass.reports.size() << "\n";
      for (const auto& [name, value] : delta.counters) {
        std::cout << "rate " << name << " "
                  << (static_cast<double>(value) / dt_s) << "/s\n";
      }
      for (const auto& [name, state] : delta.histograms) {
        if (state.count == 0) continue;
        std::cout << "hist " << name << " rate="
                  << (static_cast<double>(state.count) / dt_s)
                  << "/s p50=" << obs::Histogram::percentile_of(state, 50.0)
                  << "ms p99=" << obs::Histogram::percentile_of(state, 99.0)
                  << "ms\n";
      }
      std::cout << std::flush;
    }
    prev = pass.fleet;
    prev_ms = now_ms;
    has_prev = true;
    if (max_ticks != 0 && tick + 1 >= max_ticks) break;
    // Sleep in short slices so Ctrl-C is honored promptly.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(period_s);
    while (!g_stop.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  return all_ok ? 0 : 1;
}

/// --serve: mount a FlightRecorder over the scrape loop and park until a
/// signal (or --serve-seconds, for tests) ends it.
int run_serve(const ScrapeOptions& options, const std::string& listen,
              double interval_ms, double serve_seconds) {
  router::FlightRecorderConfig config;
  config.sample_interval_ms = interval_ms;
  config.http_listen = listen;
  router::FlightRecorder recorder(
      [options]() -> router::FlightRecorder::FlightSample {
        FleetScrape pass = scrape_fleet(options, /*quiet=*/true);
        return {std::move(pass.fleet), std::move(pass.events)};
      },
      std::move(config));
  recorder.start();
  std::cerr << "pelican_statsz: serving flight recorder on "
            << recorder.http_address().to_string() << " (scrape every "
            << interval_ms << "ms); Ctrl-C to stop\n";
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(serve_seconds);
  while (!g_stop.load()) {
    if (serve_seconds > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  recorder.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ScrapeOptions options;
  bool json = false;
  std::string out_path;
  double watch_s = 0.0;
  std::uint64_t watch_count = 0;  ///< 0 = until signal (hidden, for tests)
  std::string serve_listen;
  double interval_ms = 1000.0;
  double serve_seconds = 0.0;  ///< 0 = until signal (hidden, for tests)
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      json = true;
    } else if (flag == "--engine" && i + 1 < argc) {
      options.engines.emplace_back(argv[++i]);
    } else if (flag == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (flag == "--router-file" && i + 1 < argc) {
      options.router_file = argv[++i];
    } else if (flag == "--watch" && i + 1 < argc) {
      watch_s = std::stod(argv[++i]);
    } else if (flag == "--watch-count" && i + 1 < argc) {
      watch_count = std::stoull(argv[++i]);
    } else if (flag == "--serve" && i + 1 < argc) {
      serve_listen = argv[++i];
    } else if (flag == "--interval" && i + 1 < argc) {
      interval_ms = std::stod(argv[++i]);
    } else if (flag == "--serve-seconds" && i + 1 < argc) {
      serve_seconds = std::stod(argv[++i]);
    } else {
      return usage(argv[0]);
    }
  }
  if (options.engines.empty() && options.router_file.empty()) {
    return usage(argv[0]);
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!serve_listen.empty()) {
    // A bare port means TCP on loopback.
    if (std::all_of(serve_listen.begin(), serve_listen.end(),
                    [](unsigned char c) { return std::isdigit(c) != 0; })) {
      serve_listen = "tcp:127.0.0.1:" + serve_listen;
    }
    try {
      return run_serve(options, serve_listen, interval_ms, serve_seconds);
    } catch (const std::exception& error) {
      std::cerr << "pelican_statsz: serve failed: " << error.what() << "\n";
      return 1;
    }
  }
  if (watch_s > 0.0 || watch_count > 0) {
    return run_watch(options, std::max(watch_s, 0.05), watch_count);
  }

  const FleetScrape pass = scrape_fleet(options);
  const bool all_ok = pass.all_ok;
  const auto& reports = pass.reports;
  const obs::RegistryState& fleet = pass.fleet;

  // Pooled trace journal, grouped by trace id.
  std::vector<obs::TraceRecord> traces;
  for (const auto& [address, report] : reports) {
    traces.insert(traces.end(), report.traces.begin(), report.traces.end());
  }
  std::sort(traces.begin(), traces.end(),
            [](const obs::TraceRecord& a, const obs::TraceRecord& b) {
              return a.trace_id != b.trace_id ? a.trace_id < b.trace_id
                                              : a.source < b.source;
            });

  std::string rendered;
  if (json) {
    rendered = "{\"statsz\":{\"fleet\":" + obs::registry_json(fleet);
    rendered += ",\"engines\":{";
    bool first = true;
    for (const auto& [address, report] : reports) {
      if (!first) rendered += ',';
      first = false;
      rendered += '"' + obs::json_escape(address) + "\":{";
      rendered += "\"stats\":" + stats_json(report.stats);
      rendered += ",\"registry\":" + obs::registry_json(report.registry);
      rendered += '}';
    }
    rendered += "},\"traces\":" + obs::traces_json(traces);
    rendered += ",\"events\":" + obs::events_json(pass.events) + "}}";
    rendered += '\n';
  } else {
    rendered += "# fleet (exact bucket-wise merge of " +
                std::to_string(reports.size()) + " engines)\n";
    rendered += obs::prometheus_text(fleet, "");
    for (const auto& [address, report] : reports) {
      rendered += "# engine " + address + "\n";
      rendered += obs::prometheus_text(
          report.registry,
          "engine=\"" + obs::prometheus_escape_label_value(address) + "\"");
    }
    rendered += "# slow-request journal (" + std::to_string(traces.size()) +
                " records, grouped by trace id)\n";
    for (const obs::TraceRecord& rec : traces) {
      rendered += "trace " + std::to_string(rec.trace_id) + " source=" +
                  rec.source + " total_ms=" + std::to_string(rec.total_ms);
      for (const obs::Span& span : rec.spans) {
        rendered += ' ';
        rendered += obs::to_string(span.stage);
        rendered += '=' + std::to_string(span.duration_ms()) + "ms";
      }
      rendered += '\n';
    }
    rendered += "# event journal (" + std::to_string(pass.events.size()) +
                " records, wall-clock order)\n";
    for (const obs::Event& event : pass.events) {
      rendered += "event " + std::to_string(event.unix_ms) + " " +
                  std::string(obs::to_string(event.type)) + " source=" +
                  event.source + " subject=" + event.subject;
      if (event.trace_id != 0) {
        rendered += " trace=" + std::to_string(event.trace_id);
      }
      if (!event.detail.empty()) rendered += " :: " + event.detail;
      rendered += '\n';
    }
  }

  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::trunc);
    if (!file) {
      std::cerr << "pelican_statsz: cannot write " << out_path << "\n";
      return 1;
    }
    file << rendered;
  } else {
    std::cout << rendered;
  }
  return all_ok ? 0 : 1;
}
