// pelican_statsz — scrape a live fleet's observability surface.
//
// Connects to each engine address, issues the kMetrics verb, and prints the
// result as Prometheus-style text (default) or JSON (--json):
//
//   pelican_statsz --engine unix:/tmp/pelican/e0.sock
//                  --engine unix:/tmp/pelican/e1.sock [--json] [--out PATH]
//                  [--router-file PATH]
//
// The router is not an engine (it has no listen socket to scrape), but its
// self-report — Router::self_report() serialized with encode_metrics_reply,
// carrying the hedge/retry/quarantine counters and router-side stage
// histograms — can be dropped into a file and merged here via
// --router-file, appearing as the pseudo-engine "router".
//
// The fleet view is the EXACT bucket-wise merge of the per-engine stage
// histograms (all histograms share fixed boundaries — see obs/metrics.hpp),
// with p50/p99 computed from the merged buckets. Trace journal records from
// every engine are pooled and sorted by trace id, so one routed request's
// engine-side and router-side spans (which share an id) print adjacently.
//
// Exit status: 0 when every engine answered, 1 when any scrape failed
// (partial results are still printed for the engines that answered).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "router/socket.hpp"
#include "router/wire.hpp"

using namespace pelican;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --engine ADDR [--engine ADDR ...] [--json] [--out PATH]"
               " [--router-file PATH]\n"
               "ADDR is unix:<path> or tcp:<host>:<port>. --router-file\n"
               "merges an encode_metrics_reply dump of the router's own\n"
               "self_report() as the pseudo-engine \"router\".\n";
  return 2;
}

router::EngineMetricsReport scrape(const std::string& address) {
  router::Socket socket =
      router::Socket::connect_to(router::parse_address(address));
  socket.send_frame(router::encode_metrics());
  return router::decode_metrics_reply(socket.recv_frame());
}

router::EngineMetricsReport read_router_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("cannot read " + path);
  const std::vector<std::uint8_t> frame(
      (std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  return router::decode_metrics_reply(frame);
}

std::string stats_json(const serve::ServerStats::State& stats) {
  std::string out = "{";
  out += "\"requests\":" + std::to_string(stats.requests);
  out += ",\"rejected\":" + std::to_string(stats.rejected);
  out += ",\"shed\":" + std::to_string(stats.shed);
  out += ",\"peak_queue_depth\":" + std::to_string(stats.peak_queue_depth);
  out += ",\"batches\":" + std::to_string(stats.batches);
  out += '}';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> engines;
  bool json = false;
  std::string out_path;
  std::string router_file;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      json = true;
    } else if (flag == "--engine" && i + 1 < argc) {
      engines.emplace_back(argv[++i]);
    } else if (flag == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (flag == "--router-file" && i + 1 < argc) {
      router_file = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (engines.empty() && router_file.empty()) return usage(argv[0]);

  bool all_ok = true;
  std::vector<std::pair<std::string, router::EngineMetricsReport>> reports;
  for (const std::string& address : engines) {
    try {
      router::EngineMetricsReport report = scrape(address);
      for (obs::TraceRecord& rec : report.traces) rec.source = address;
      reports.emplace_back(address, std::move(report));
    } catch (const std::exception& error) {
      std::cerr << "pelican_statsz: scrape of " << address
                << " failed: " << error.what() << "\n";
      all_ok = false;
    }
  }
  if (!router_file.empty()) {
    try {
      router::EngineMetricsReport report = read_router_file(router_file);
      for (obs::TraceRecord& rec : report.traces) rec.source = "router";
      reports.emplace_back("router", std::move(report));
    } catch (const std::exception& error) {
      std::cerr << "pelican_statsz: reading " << router_file
                << " failed: " << error.what() << "\n";
      all_ok = false;
    }
  }

  // Exact fleet merge + pooled trace journal, grouped by trace id.
  obs::RegistryState fleet;
  std::vector<obs::TraceRecord> traces;
  for (const auto& [address, report] : reports) {
    obs::merge_state(fleet, report.registry);
    traces.insert(traces.end(), report.traces.begin(), report.traces.end());
  }
  std::sort(traces.begin(), traces.end(),
            [](const obs::TraceRecord& a, const obs::TraceRecord& b) {
              return a.trace_id != b.trace_id ? a.trace_id < b.trace_id
                                              : a.source < b.source;
            });

  std::string rendered;
  if (json) {
    rendered = "{\"statsz\":{\"fleet\":" + obs::registry_json(fleet);
    rendered += ",\"engines\":{";
    bool first = true;
    for (const auto& [address, report] : reports) {
      if (!first) rendered += ',';
      first = false;
      rendered += '"' + obs::json_escape(address) + "\":{";
      rendered += "\"stats\":" + stats_json(report.stats);
      rendered += ",\"registry\":" + obs::registry_json(report.registry);
      rendered += '}';
    }
    rendered += "},\"traces\":" + obs::traces_json(traces) + "}}";
    rendered += '\n';
  } else {
    rendered += "# fleet (exact bucket-wise merge of " +
                std::to_string(reports.size()) + " engines)\n";
    rendered += obs::prometheus_text(fleet, "");
    for (const auto& [address, report] : reports) {
      rendered += "# engine " + address + "\n";
      rendered += obs::prometheus_text(
          report.registry, "engine=\"" + address + "\"");
    }
    rendered += "# slow-request journal (" + std::to_string(traces.size()) +
                " records, grouped by trace id)\n";
    for (const obs::TraceRecord& rec : traces) {
      rendered += "trace " + std::to_string(rec.trace_id) + " source=" +
                  rec.source + " total_ms=" + std::to_string(rec.total_ms);
      for (const obs::Span& span : rec.spans) {
        rendered += ' ';
        rendered += obs::to_string(span.stage);
        rendered += '=' + std::to_string(span.duration_ms()) + "ms";
      }
      rendered += '\n';
    }
  }

  if (!out_path.empty()) {
    std::ofstream file(out_path, std::ios::trunc);
    if (!file) {
      std::cerr << "pelican_statsz: cannot write " << out_path << "\n";
      return 1;
    }
    file << rendered;
  } else {
    std::cout << rendered;
  }
  return all_ok ? 0 : 1;
}
