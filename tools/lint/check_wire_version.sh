#!/usr/bin/env bash
# Wire-format lint: the frame layouts in src/router/wire.hpp may change, but
# only DELIBERATELY — any change to the wire surface (the Verb enum or a
# frame struct) must be accompanied by a bump of a k*FrameVersion constant,
# so a stale peer fails with a clear SerializeError instead of misparsing
# bytes (see the versioning note in wire.hpp).
#
# Mechanism: this script normalizes the wire surface (enum + struct blocks,
# comments stripped, whitespace collapsed), hashes it, and compares both the
# hash and the k*FrameVersion values against tools/lint/wire_format.lock:
#
#   surface unchanged                      -> OK
#   surface changed AND a version bumped   -> FAIL, with instructions: review
#                                             the bump, then rerun --update
#                                             to re-baseline the lock
#   surface changed, NO version bumped     -> FAIL: bump the version first
#
# (A surface change always fails until the lock is regenerated — the lock
# update is the reviewable artifact proving the change was deliberate.)
#
#   --update    regenerate the lock from the current tree
#   --root DIR  lint a tree other than the repo root (self-tests point this
#               at fixture trees under tests/lint/)
set -u

root="."
update=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --root) root="$2"; shift 2 ;;
    --update) update=1; shift ;;
    *) echo "usage: $0 [--root DIR] [--update]" >&2; exit 2 ;;
  esac
done
cd "$root" || exit 2

header="src/router/wire.hpp"
lock="tools/lint/wire_format.lock"
if [[ ! -f "$header" ]]; then
  echo "wire lint: no $header under $(pwd)" >&2
  exit 2
fi

# The wire surface: the Verb enum and every frame struct, comments stripped,
# whitespace collapsed. Function signatures are deliberately excluded — they
# are compile-time API, not wire layout.
surface=$(awk '/^(enum class|struct) /{capture=1} capture{print} /^};/{capture=0}' \
            "$header" \
          | sed 's://.*::' | tr -s ' \t' ' ' | sed 's/ $//' | grep -v '^ *$')
surface_hash=$(printf '%s\n' "$surface" | sha256sum | cut -d' ' -f1)
versions=$(grep -o 'k[A-Za-z]*FrameVersion = [0-9]*' "$header" \
           | sed 's/ = / /' | sort)

if [[ $update -eq 1 ]]; then
  {
    echo "# Wire-surface baseline for tools/lint/check_wire_version.sh."
    echo "# Regenerate with: tools/lint/check_wire_version.sh --update"
    echo "# (only after bumping the relevant k*FrameVersion in wire.hpp)"
    while IFS= read -r v; do echo "version $v"; done <<<"$versions"
    echo "surface $surface_hash"
  } > "$lock"
  echo "wire lint: lock regenerated at $lock"
  exit 0
fi

if [[ ! -f "$lock" ]]; then
  echo "wire lint: missing $lock — run tools/lint/check_wire_version.sh --update"
  exit 1
fi

locked_hash=$(awk '$1 == "surface" {print $2}' "$lock")
locked_versions=$(awk '$1 == "version" {print $2, $3}' "$lock" | sort)

if [[ "$surface_hash" == "$locked_hash" ]]; then
  echo "wire format OK: surface matches lock ($(echo "$versions" | tr '\n' ' '))"
  exit 0
fi

echo "wire lint: the wire surface of $header changed (lock: $lock)"
if [[ "$versions" == "$locked_versions" ]]; then
  echo "wire lint: ...and NO k*FrameVersion constant was bumped."
  echo "wire lint: bump the version of every changed frame in $header, then"
  echo "wire lint: rerun tools/lint/check_wire_version.sh --update."
  exit 1
fi
echo "wire lint: a k*FrameVersion was bumped (locked: $(echo "$locked_versions" | tr '\n' ' ') now: $(echo "$versions" | tr '\n' ' '))."
echo "wire lint: if the layout change is complete, re-baseline the lock:"
echo "wire lint:   tools/lint/check_wire_version.sh --update"
exit 1
