#!/usr/bin/env bash
# Determinism-contract lint for the nn kernels.
#
# The serving stack promises bit-identical results regardless of batch size,
# thread count, and quantization path (README "Performance architecture").
# That promise rests on ONE accumulation discipline: every output element is
# accumulated in ascending-k order, single-threaded within an element, with
# no reassociation. This lint greps src/nn for the constructs that break it:
#
#   * #pragma omp            — OpenMP parallel reductions reassociate;
#                              parallelism belongs in common/thread_pool,
#                              which splits ELEMENTS, never one element's sum
#   * std::reduce /
#     std::transform_reduce  — unordered accumulation by contract
#   * std::execution         — execution policies make std::accumulate and
#                              friends reorderable too
#   * descending-k loops     — `for (k = n; k-- > 0;)` style accumulation
#                              reverses the chain and changes the bits;
#                              backward TIME iteration (BPTT's `ti`) is fine,
#                              so only induction variables named `k` trip this
#
# --root DIR  lint a tree other than the repo root (self-tests point this at
#             fixture trees under tests/lint/).
set -u

root="."
while [[ $# -gt 0 ]]; do
  case "$1" in
    --root) root="$2"; shift 2 ;;
    *) echo "usage: $0 [--root DIR]" >&2; exit 2 ;;
  esac
done
cd "$root" || exit 2

if [[ ! -d src/nn ]]; then
  echo "determinism lint: no src/nn under $(pwd)" >&2
  exit 2
fi

status=0
report() {  # report <label> <grep-output>
  if [[ -n "$2" ]]; then
    echo "determinism violation ($1):"
    echo "$2"
    status=1
  fi
}

files=$(find src/nn -name '*.hpp' -o -name '*.cpp')

report "OpenMP pragma reassociates accumulation" \
  "$(grep -Hn '#pragma[[:space:]]\+omp' $files)"
report "std::reduce / std::transform_reduce accumulate unordered" \
  "$(grep -Hn 'std::\(transform_\)\?reduce[[:space:]]*(' $files)"
report "std::execution policies make accumulation reorderable" \
  "$(grep -Hn 'std::execution::' $files)"
# Loops whose induction variable is k and which step downward:
# `for (... k-- ...)`, `for (...; --k)`, `for (...; k -= ...)`. The time
# axis may iterate backward (BPTT's `ti--`) — only `k`, the accumulation
# axis by convention (matrix.hpp), trips this.
report "descending-k loop reverses the accumulation chain" \
  "$(grep -Hn 'for[[:space:]]*(.*\(k--\|--k\|k[[:space:]]*-=\)' $files)"

if [[ $status -eq 0 ]]; then
  echo "determinism OK: nn kernels accumulate in ascending-k order, serially per element"
fi
exit $status
