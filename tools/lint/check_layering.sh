#!/usr/bin/env bash
# Layering lint (v2): enforces the layer lattice of src/ (see the root
# CMakeLists.txt):
#
#   common -> {obs, nn, mobility} -> models -> {store, attack} -> core
#          -> serve -> router
#
# A layer may include itself and anything strictly below it. obs, nn, and
# mobility are siblings: none may include another. store and attack are
# siblings above models: core is the lowest layer that may see both. obs is
# consumed only by serve and router — the model stack (nn..core) stays free
# of instrumentation.
#
# v2 over the original tools/check_layering.sh:
#   * --root DIR   lint a tree other than the repo root (the lint self-tests
#                  point this at fixture trees under tests/lint/).
#   * completeness check — a directory under src/ that is not in the lattice
#                  fails the lint, so adding a layer forces registering it
#                  here (and in the CMake link structure) deliberately.
#
# Exits nonzero and prints every offending include on violation.
set -u

root="."
while [[ $# -gt 0 ]]; do
  case "$1" in
    --root) root="$2"; shift 2 ;;
    *) echo "usage: $0 [--root DIR]" >&2; exit 2 ;;
  esac
done
cd "$root" || exit 2

declare -A allowed=(
  [common]="common"
  [obs]="common obs"
  [nn]="common nn"
  [mobility]="common mobility"
  [models]="common nn mobility models"
  [store]="common nn mobility models store"
  [attack]="common nn mobility models attack"
  [core]="common nn mobility models store attack core"
  [serve]="common obs nn mobility models store attack core serve"
  [router]="common obs nn mobility models store attack core serve router"
)

status=0

# Completeness: every directory under src/ must be a registered layer.
for dir in src/*/; do
  layer=$(basename "$dir")
  if [[ -z "${allowed[$layer]:-}" ]]; then
    echo "layering violation: src/$layer is not a registered layer" \
         "(add it to the lattice in tools/lint/check_layering.sh and the" \
         "root CMakeLists.txt, or remove it)"
    status=1
  fi
done

for layer in "${!allowed[@]}"; do
  [[ -d "src/$layer" ]] || continue
  allow="${allowed[$layer]}"
  # Project includes look like: #include "dir/header.hpp"
  while IFS= read -r line; do
    dir=$(sed -E 's/.*#include "([a-z_]+)\/.*/\1/' <<<"$line")
    ok=0
    for a in $allow; do
      [[ "$dir" == "$a" ]] && ok=1
    done
    if [[ $ok -eq 0 ]]; then
      echo "layering violation in src/$layer: $line (may include only: $allow)"
      status=1
    fi
  done < <(grep -rHn '#include "' "src/$layer" | grep -v '#include "[^/]*"$')
done

if [[ $status -eq 0 ]]; then
  echo "layering OK: common -> {obs, nn, mobility} -> models -> {store, attack} -> core -> serve -> router"
fi
exit $status
