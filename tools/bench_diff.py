#!/usr/bin/env python3
"""Compare bench_results artifacts: pairwise deltas or a multi-commit trend.

Usage:
    tools/bench_diff.py OLD NEW [--threshold PCT] [--lane NAME]
    tools/bench_diff.py --trend HISTORY [CURRENT] [--threshold PCT] [--lane NAME]
    tools/bench_diff.py --timeline FLIGHT_DUMP

Pairwise mode: OLD and NEW are either single Table-JSON files (the format
Table::to_json emits: {"headers": [...], "rows": [[...], ...]}) or
directories of them (e.g. the per-commit bench_results_<sha> CI
artifacts). Rows are keyed by their first cell; numeric cells in matching
rows are compared and the relative delta printed. Cells that are not JSON
numbers (labels, "2.4x" ratio strings) are ignored.

pelican_statsz --json snapshots (the statsz_snapshot.json the router bench
drops next to its table) are detected by their top-level "statsz" key and
synthesized into a Table-JSON of per-stage count/p50/p99 from the fleet
histograms, so stage latencies diff and trend like any other bench table.

Trend mode: HISTORY is a directory of per-commit result directories whose
names sort chronologically (CI keeps bench_history/<ordinal>_<sha>/); the
optional CURRENT directory is appended as the newest point. Each numeric
cell prints its whole value sequence plus the net change from the oldest
to the newest point — a regression that creeps in over several commits is
visible here even when every single-commit delta sits under the noise
floor.

This tool is the comparison half of the ROADMAP's CI-tracked bench
trajectory. It is WARN-ONLY by design: the exit code is 0 even when
regressions exceed the threshold (timings on shared CI runners are too
noisy to gate on); regressions are flagged in the output for a human eye.
Exit code 2 means the inputs could not be read at all.

--lane names the CI lane the comparison runs in. Sanitizer lanes (any name
containing "asan", "ubsan", or "tsan") skip the comparison entirely:
sanitizer instrumentation multiplies runtimes 2-20x, so their timings would
only pollute the bench history and trip the drift markers with noise.

Timeline mode: FLIGHT_DUMP is the /flight JSON a FlightRecorder writes
(the chaos lane's flight_dump.json artifact, via the acceptance test's
PELICAN_FLIGHT_DUMP). Renders the incident as a human-readable story:
sparklines for the hedge/quarantine-relevant rate series, the event
journal on one relative clock, and the final SLO verdicts — so a red
chaos lane can be triaged from the job log without downloading anything.
"""

import argparse
import json
import os
import sys


def statsz_to_table(snapshot):
    """A pelican_statsz snapshot as Table-JSON: one row per fleet histogram."""
    histograms = snapshot.get("statsz", {}).get("fleet", {}).get(
        "histograms", {}
    )
    rows = [
        [
            name,
            hist.get("count", 0),
            hist.get("p50", 0.0),
            hist.get("p99", 0.0),
        ]
        for name, hist in sorted(histograms.items())
    ]
    return {"headers": ["stage", "count", "p50 ms", "p99 ms"], "rows": rows}


def load_table(path):
    """One file as Table-JSON, converting statsz snapshots on the fly."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict) and "statsz" in data:
        return statsz_to_table(data)
    return data


def load_tables(path):
    """Returns {table_name: {"headers": [...], "rows": [[...], ...]}}."""
    tables = {}
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            if name.endswith(".json"):
                tables[name[: -len(".json")]] = load_table(
                    os.path.join(path, name)
                )
    else:
        tables[os.path.splitext(os.path.basename(path))[0]] = load_table(path)
    return tables


def row_map(table):
    """Keys each row by its first cell; duplicate keys get a suffix."""
    rows = {}
    for row in table.get("rows", []):
        if not row:
            continue
        key = str(row[0])
        suffix = 0
        while key in rows:
            suffix += 1
            key = f"{row[0]} #{suffix}"
        rows[key] = row
    return rows


def diff_tables(name, old, new, threshold_pct):
    headers = new.get("headers", [])
    old_rows = row_map(old)
    new_rows = row_map(new)
    lines = []
    flagged = 0

    for key, new_row in new_rows.items():
        old_row = old_rows.get(key)
        if old_row is None:
            lines.append(f"  {key}: new row (no baseline)")
            continue
        for col in range(1, min(len(old_row), len(new_row))):
            old_cell, new_cell = old_row[col], new_row[col]
            if not isinstance(old_cell, (int, float)) or isinstance(
                old_cell, bool
            ):
                continue
            if not isinstance(new_cell, (int, float)) or isinstance(
                new_cell, bool
            ):
                continue
            if old_cell == 0:
                continue
            delta_pct = 100.0 * (new_cell - old_cell) / abs(old_cell)
            column = headers[col] if col < len(headers) else f"col{col}"
            marker = ""
            if abs(delta_pct) >= threshold_pct:
                marker = "  <-- CHANGED"
                flagged += 1
            lines.append(
                f"  {key} / {column}: {old_cell:g} -> {new_cell:g} "
                f"({delta_pct:+.1f}%){marker}"
            )
    for key in old_rows:
        if key not in new_rows:
            lines.append(f"  {key}: row disappeared")

    if lines:
        print(f"== {name} ==")
        for line in lines:
            print(line)
    return flagged


def numeric(cell):
    """The cell as a float, or None for labels/ratio strings/bools."""
    if isinstance(cell, bool) or not isinstance(cell, (int, float)):
        return None
    return float(cell)


def trend_points(history_dir, current):
    """[(label, {table: tables})] oldest -> newest from a history layout."""
    points = []
    for name in sorted(os.listdir(history_dir)):
        path = os.path.join(history_dir, name)
        if os.path.isdir(path):
            points.append((name, load_tables(path)))
    if current is not None:
        points.append(("current", load_tables(current)))
    return points


def print_trend(points, threshold_pct):
    """Per-cell value sequences across commits, flagging net drift."""
    if len(points) < 2:
        print(
            "bench_diff: need at least two history points for a trend "
            f"(have {len(points)})"
        )
        return 0

    labels = [label for label, _ in points]
    print("bench trend over: " + " -> ".join(labels))
    newest = points[-1][1]
    flagged = 0
    for table_name in sorted(newest):
        headers = newest[table_name].get("headers", [])
        lines = []
        for key, new_row in row_map(newest[table_name]).items():
            for col in range(1, len(new_row)):
                if numeric(new_row[col]) is None:
                    continue
                # The cell's value at every history point that has it.
                series = []
                for _, tables in points:
                    row = row_map(tables.get(table_name, {})).get(key)
                    value = numeric(row[col]) if row and col < len(row) else None
                    series.append(value)
                known = [v for v in series if v is not None]
                if len(known) < 2:
                    continue
                net_pct = (
                    100.0 * (known[-1] - known[0]) / abs(known[0])
                    if known[0] != 0
                    else 0.0
                )
                marker = ""
                if abs(net_pct) >= threshold_pct:
                    marker = "  <-- DRIFT"
                    flagged += 1
                column = headers[col] if col < len(headers) else f"col{col}"
                values = " -> ".join(
                    "?" if v is None else f"{v:g}" for v in series
                )
                lines.append(
                    f"  {key} / {column}: {values} (net {net_pct:+.1f}%)"
                    f"{marker}"
                )
        if lines:
            print(f"== {table_name} ==")
            for line in lines:
                print(line)
    if flagged:
        print(
            f"\nbench_diff: {flagged} cell(s) drifted by more than "
            f"{threshold_pct:g}% across the window (warn-only, not gating)"
        )
    else:
        print("\nbench_diff: no drift beyond threshold across the window")
    return 0


SPARK_LEVELS = " .:-=+*#%@"

# Series worth charting in an incident timeline: the hedge/quarantine
# machinery plus the SLO breach/recovery counters the tracker derives.
TIMELINE_SERIES_HINTS = ("hedge", "quarantine", "failover", "slo")


def sparkline(values, width=60):
    """`values` resampled to `width` columns of ASCII intensity."""
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return SPARK_LEVELS[0] * min(width, len(values))
    columns = min(width, len(values))
    chars = []
    for col in range(columns):
        lo = col * len(values) // columns
        hi = max(lo + 1, (col + 1) * len(values) // columns)
        bucket_peak = max(values[lo:hi])
        level = 0
        if bucket_peak > 0:
            level = 1 + int(bucket_peak / peak * (len(SPARK_LEVELS) - 2))
            level = min(level, len(SPARK_LEVELS) - 1)
        chars.append(SPARK_LEVELS[level])
    return "".join(chars)


def print_timeline(path):
    """The flight dump as a story: sparklines, events, SLO verdicts."""
    with open(path) as fh:
        data = json.load(fh)
    flight = data.get("flight", data)
    series = flight.get("timeseries", {})
    events = flight.get("events", [])
    slos = flight.get("slos", [])

    # One relative clock for everything: t=0 is the earliest timestamp
    # seen in either the series or the journal.
    stamps = [p["t"] for points in series.values() for p in points]
    stamps += [e["unix_ms"] for e in events if e.get("unix_ms")]
    if not stamps:
        print(f"flight timeline: {path} holds no samples and no events")
        return 0
    origin = min(stamps)

    print(f"flight timeline: {path}")
    span_s = (max(stamps) - origin) / 1000.0
    print(f"  window: {span_s:.1f}s, origin unix_ms={origin}")

    charted = {
        name: points
        for name, points in sorted(series.items())
        if points and any(hint in name for hint in TIMELINE_SERIES_HINTS)
    }
    if charted:
        print("\n== series (peak-scaled sparklines) ==")
        label_width = max(len(name) for name in charted)
        for name, points in charted.items():
            values = [p["v"] for p in points]
            peak = max(values)
            print(
                f"  {name:<{label_width}} |{sparkline(values)}| "
                f"peak {peak:g}"
            )

    if events:
        print(f"\n== event journal ({len(events)} records) ==")
        ordered = sorted(
            events, key=lambda e: (e.get("unix_ms", 0), e.get("seq", 0))
        )
        for event in ordered:
            offset_s = (event.get("unix_ms", origin) - origin) / 1000.0
            line = f"  t+{offset_s:7.2f}s  {event.get('type', '?'):<14}"
            if event.get("subject"):
                line += f" {event['subject']}"
            if event.get("trace_id"):
                line += f" trace={event['trace_id']:x}"
            if event.get("detail"):
                line += f" :: {event['detail']}"
            print(line)
    else:
        print("\n== event journal == (empty)")

    if slos:
        print("\n== SLO verdicts at capture ==")
        for slo in slos:
            state = "BREACHED" if slo.get("breached") else "ok"
            print(
                f"  {slo.get('name', '?')}: {state} "
                f"(worst burn {slo.get('worst_burn', 0):g}x)"
            )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "old",
        help="baseline file or directory (trend mode: the history "
        "directory of per-commit result directories)",
    )
    parser.add_argument(
        "new",
        nargs="?",
        default=None,
        help="candidate file or directory (trend mode: optional current "
        "results appended as the newest point)",
    )
    parser.add_argument(
        "--trend",
        action="store_true",
        help="print per-cell value sequences across a history directory "
        "instead of a pairwise diff",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="render a flight-recorder dump (the /flight JSON in OLD) as "
        "an incident timeline: rate sparklines, the event journal, and "
        "SLO verdicts",
    )
    parser.add_argument(
        "--lane",
        default="",
        help="CI lane name; sanitizer lanes (asan/ubsan/tsan in the name) "
        "skip the bench comparison — their timings are instrumentation "
        "noise, not performance data",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="flag deltas whose magnitude exceeds this percentage "
        "(default: 10)",
    )
    args = parser.parse_args()

    if any(tag in args.lane.lower() for tag in ("asan", "ubsan", "tsan")):
        print(
            f"bench_diff: lane '{args.lane}' runs under a sanitizer — "
            "skipping bench comparison (timings are instrumentation noise)"
        )
        return 0

    if args.timeline:
        try:
            return print_timeline(args.old)
        except (OSError, json.JSONDecodeError) as error:
            print(
                f"bench_diff: cannot read flight dump: {error}",
                file=sys.stderr,
            )
            return 2

    if args.trend:
        try:
            points = trend_points(args.old, args.new)
        except (OSError, json.JSONDecodeError) as error:
            print(f"bench_diff: cannot read history: {error}", file=sys.stderr)
            return 2
        return print_trend(points, args.threshold)

    if args.new is None:
        parser.error("pairwise mode needs both OLD and NEW")

    try:
        old_tables = load_tables(args.old)
        new_tables = load_tables(args.new)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_diff: cannot read inputs: {error}", file=sys.stderr)
        return 2

    if os.path.isfile(args.old) and os.path.isfile(args.new):
        # Two explicit files compare head-to-head even if named differently.
        common = "bench"
        old_tables = {common: next(iter(old_tables.values()))}
        new_tables = {common: next(iter(new_tables.values()))}

    flagged = 0
    for name in sorted(new_tables):
        if name in old_tables:
            flagged += diff_tables(
                name, old_tables[name], new_tables[name], args.threshold
            )
        else:
            print(f"== {name} == (new table, no baseline)")
    for name in sorted(set(old_tables) - set(new_tables)):
        print(f"== {name} == (table disappeared)")

    if flagged:
        print(
            f"\nbench_diff: {flagged} cell(s) changed by more than "
            f"{args.threshold:g}% (warn-only, not gating)"
        )
    else:
        print("\nbench_diff: no deltas beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
