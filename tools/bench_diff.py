#!/usr/bin/env python3
"""Compare two bench_results artifacts and print per-bench deltas.

Usage:
    tools/bench_diff.py OLD NEW [--threshold PCT]

OLD and NEW are either single Table-JSON files (the format Table::to_json
emits: {"headers": [...], "rows": [[...], ...]}) or directories of them
(e.g. the per-commit bench_results_<sha> CI artifacts). Rows are keyed by
their first cell; numeric cells in matching rows are compared and the
relative delta printed. Cells that are not JSON numbers (labels, "2.4x"
ratio strings) are ignored.

This tool is the comparison half of the ROADMAP's CI-tracked bench
trajectory. It is WARN-ONLY by design: the exit code is 0 even when
regressions exceed the threshold (timings on shared CI runners are too
noisy to gate on); regressions are flagged in the output for a human eye.
Exit code 2 means the inputs could not be read at all.
"""

import argparse
import json
import os
import sys


def load_tables(path):
    """Returns {table_name: {"headers": [...], "rows": [[...], ...]}}."""
    tables = {}
    if os.path.isdir(path):
        for name in sorted(os.listdir(path)):
            if name.endswith(".json"):
                with open(os.path.join(path, name)) as fh:
                    tables[name[: -len(".json")]] = json.load(fh)
    else:
        with open(path) as fh:
            tables[os.path.splitext(os.path.basename(path))[0]] = json.load(fh)
    return tables


def row_map(table):
    """Keys each row by its first cell; duplicate keys get a suffix."""
    rows = {}
    for row in table.get("rows", []):
        if not row:
            continue
        key = str(row[0])
        suffix = 0
        while key in rows:
            suffix += 1
            key = f"{row[0]} #{suffix}"
        rows[key] = row
    return rows


def diff_tables(name, old, new, threshold_pct):
    headers = new.get("headers", [])
    old_rows = row_map(old)
    new_rows = row_map(new)
    lines = []
    flagged = 0

    for key, new_row in new_rows.items():
        old_row = old_rows.get(key)
        if old_row is None:
            lines.append(f"  {key}: new row (no baseline)")
            continue
        for col in range(1, min(len(old_row), len(new_row))):
            old_cell, new_cell = old_row[col], new_row[col]
            if not isinstance(old_cell, (int, float)) or isinstance(
                old_cell, bool
            ):
                continue
            if not isinstance(new_cell, (int, float)) or isinstance(
                new_cell, bool
            ):
                continue
            if old_cell == 0:
                continue
            delta_pct = 100.0 * (new_cell - old_cell) / abs(old_cell)
            column = headers[col] if col < len(headers) else f"col{col}"
            marker = ""
            if abs(delta_pct) >= threshold_pct:
                marker = "  <-- CHANGED"
                flagged += 1
            lines.append(
                f"  {key} / {column}: {old_cell:g} -> {new_cell:g} "
                f"({delta_pct:+.1f}%){marker}"
            )
    for key in old_rows:
        if key not in new_rows:
            lines.append(f"  {key}: row disappeared")

    if lines:
        print(f"== {name} ==")
        for line in lines:
            print(line)
    return flagged


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline file or directory")
    parser.add_argument("new", help="candidate file or directory")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="flag deltas whose magnitude exceeds this percentage "
        "(default: 10)",
    )
    args = parser.parse_args()

    try:
        old_tables = load_tables(args.old)
        new_tables = load_tables(args.new)
    except (OSError, json.JSONDecodeError) as error:
        print(f"bench_diff: cannot read inputs: {error}", file=sys.stderr)
        return 2

    if os.path.isfile(args.old) and os.path.isfile(args.new):
        # Two explicit files compare head-to-head even if named differently.
        common = "bench"
        old_tables = {common: next(iter(old_tables.values()))}
        new_tables = {common: next(iter(new_tables.values()))}

    flagged = 0
    for name in sorted(new_tables):
        if name in old_tables:
            flagged += diff_tables(
                name, old_tables[name], new_tables[name], args.threshold
            )
        else:
            print(f"== {name} == (new table, no baseline)")
    for name in sorted(set(old_tables) - set(new_tables)):
        print(f"== {name} == (table disappeared)")

    if flagged:
        print(
            f"\nbench_diff: {flagged} cell(s) changed by more than "
            f"{args.threshold:g}% (warn-only, not gating)"
        )
    else:
        print("\nbench_diff: no deltas beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
