#!/usr/bin/env bash
# Enforces the layer lattice of src/ (see the root CMakeLists.txt):
#
#   common -> {obs, nn, mobility} -> models -> {store, attack} -> core -> serve -> router
#
# A layer may include itself and anything strictly below it. obs, nn, and
# mobility are siblings: none may include another. store and attack are
# siblings above models: core is the lowest layer that may see both. obs is
# consumed only by serve and router — the model stack (nn..core) stays free
# of instrumentation. Run from the repo root; exits nonzero and prints every
# offending include on violation.
set -u

declare -A allowed=(
  [common]="common"
  [obs]="common obs"
  [nn]="common nn"
  [mobility]="common mobility"
  [models]="common nn mobility models"
  [store]="common nn mobility models store"
  [attack]="common nn mobility models attack"
  [core]="common nn mobility models store attack core"
  [serve]="common obs nn mobility models store attack core serve"
  [router]="common obs nn mobility models store attack core serve router"
)

status=0
for layer in common obs nn mobility models store attack core serve router; do
  allow="${allowed[$layer]}"
  # Project includes look like: #include "dir/header.hpp"
  while IFS= read -r line; do
    dir=$(sed -E 's/.*#include "([a-z_]+)\/.*/\1/' <<<"$line")
    ok=0
    for a in $allow; do
      [[ "$dir" == "$a" ]] && ok=1
    done
    if [[ $ok -eq 0 ]]; then
      echo "layering violation in src/$layer: $line (may include only: $allow)"
      status=1
    fi
  done < <(grep -rHn '#include "' "src/$layer" | grep -v '#include "[^/]*"$')
done

if [[ $status -eq 0 ]]; then
  echo "layering OK: common -> {obs, nn, mobility} -> models -> {store, attack} -> core -> serve -> router"
fi
exit $status
