// pelican_engined — one serving-engine process of a routed fleet.
//
// Wraps router::EngineWorker (DeploymentRegistry + BatchScheduler behind
// the wire protocol) around a listen socket and blocks until drained: the
// Router's kDrain verb is the graceful shutdown path, SIGKILL is the crash
// the Router's failover-repartition covers.
//
//   pelican_engined --listen unix:/tmp/pelican/e0.sock
//                   --store build/fleet_store [--scope personal]
//                   [--shards N] [--max-batch N] [--max-delay-us N]
//                   [--max-queue N] [--policy block|reject|shed_oldest]
//
// Every process of a fleet points --store at the SAME directory (the
// fleet-shared store::FilesystemBackend); deploy/publish commands carry
// only (user, version) keys and the process pulls checkpoints from there.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "router/engine_worker.hpp"

using namespace pelican;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " --listen ADDR --store DIR [--scope S] [--shards N]\n"
         "       [--max-batch N] [--max-delay-us N] [--max-queue N]\n"
         "       [--policy block|reject|shed_oldest]\n"
         "ADDR is unix:<path> or tcp:<host>:<port>.\n";
  return 2;
}

bool parse_size(const std::string& text, std::size_t& out) {
  try {
    out = static_cast<std::size_t>(std::stoull(text));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

int main(int argc, char** argv) {
  router::EngineConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return usage(argv[0]);
    const std::string value = argv[++i];
    std::size_t n = 0;
    if (flag == "--listen") {
      config.listen = value;
    } else if (flag == "--store") {
      config.store_root = value;
    } else if (flag == "--scope") {
      config.scope = value;
    } else if (flag == "--shards" && parse_size(value, n)) {
      config.registry_shards = n;
    } else if (flag == "--max-batch" && parse_size(value, n)) {
      config.scheduler.max_batch = n;
    } else if (flag == "--max-delay-us" && parse_size(value, n)) {
      config.scheduler.max_delay = std::chrono::microseconds(n);
    } else if (flag == "--max-queue" && parse_size(value, n)) {
      config.scheduler.max_queue = n;
    } else if (flag == "--policy") {
      if (value == "block") {
        config.scheduler.policy = serve::QueuePolicy::kBlock;
      } else if (value == "reject") {
        config.scheduler.policy = serve::QueuePolicy::kReject;
      } else if (value == "shed_oldest") {
        config.scheduler.policy = serve::QueuePolicy::kShedOldest;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (config.listen.empty() || config.store_root.empty()) {
    return usage(argv[0]);
  }

  try {
    router::EngineWorker worker(std::move(config));
    worker.start();
    std::cout << "pelican_engined listening on "
              << worker.address().to_string() << " (store "
              << worker.config().store_root.string() << ", scope "
              << worker.config().scope << ")\n";
    worker.wait();
    std::cout << "pelican_engined drained, exiting\n";
  } catch (const std::exception& error) {
    std::cerr << "pelican_engined: " << error.what() << "\n";
    return 1;
  }
  return 0;
}
