#include "core/pelican.hpp"

#include <gtest/gtest.h>

#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {
namespace {

attack::InversionResult result_with(std::vector<std::size_t> ks,
                                    std::vector<double> accs) {
  attack::InversionResult r;
  r.ks = std::move(ks);
  r.topk_accuracy = std::move(accs);
  return r;
}

TEST(LeakageReduction, ComputesPercentDrop) {
  const auto base = result_with({1, 3}, {0.8, 0.6});
  const auto defended = result_with({1, 3}, {0.4, 0.6});
  const auto reduction = leakage_reduction_percent(base, defended);
  ASSERT_EQ(reduction.size(), 2u);
  EXPECT_DOUBLE_EQ(reduction[0], 50.0);
  EXPECT_DOUBLE_EQ(reduction[1], 0.0);
}

TEST(LeakageReduction, ClampsNegativeToZero) {
  // Defense "helping" the attack must report 0, not a negative reduction.
  const auto base = result_with({1}, {0.5});
  const auto defended = result_with({1}, {0.7});
  EXPECT_DOUBLE_EQ(leakage_reduction_percent(base, defended)[0], 0.0);
}

TEST(LeakageReduction, ZeroBaselineGivesZero) {
  const auto base = result_with({1}, {0.0});
  const auto defended = result_with({1}, {0.0});
  EXPECT_DOUBLE_EQ(leakage_reduction_percent(base, defended)[0], 0.0);
}

TEST(LeakageReduction, MismatchedGridsThrow) {
  const auto base = result_with({1, 3}, {0.5, 0.6});
  const auto defended = result_with({1, 5}, {0.5, 0.6});
  EXPECT_THROW((void)leakage_reduction_percent(base, defended),
               std::invalid_argument);
}

TEST(AuditDevice, RunsBothAttacksAndReportsReduction) {
  const auto& world = pelican::testing::trained_world();
  core::CloudServer cloud;
  // Build a device around the already-personalized user-0 model by
  // re-running the standard flow at minimal cost.
  models::GeneralModelConfig general_config;
  general_config.hidden_dim = 16;
  general_config.train.epochs = 2;
  general_config.train.lr = 3e-3;
  std::vector<mobility::Window> pooled(world.general_train->windows().begin(),
                                       world.general_train->windows().end());
  (void)cloud.train_general(models::WindowDataset(pooled, world.spec),
                            general_config);

  core::Device device(1, world.user0_train, world.spec);
  models::PersonalizationConfig config;
  config.method = models::PersonalizationMethod::kFeatureExtraction;
  config.train.epochs = 3;
  config.train.lr = 3e-3;
  device.personalize(cloud, config);
  device.set_privacy_temperature(1e-3);

  attack::InversionConfig attack_config;
  attack_config.adversary = attack::Adversary::kA1;
  attack_config.method = attack::AttackMethod::kTimeBased;
  attack_config.ks = {1, 3};
  attack_config.max_windows = 15;

  const PrivacyAudit audit = audit_device(
      device, world.user0_test, attack::PriorKind::kTrue, attack_config);
  EXPECT_EQ(audit.baseline.windows_attacked, 15u);
  EXPECT_EQ(audit.defended.windows_attacked, 15u);
  ASSERT_EQ(audit.reduction_percent.size(), 2u);
  for (const double r : audit.reduction_percent) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 100.0);
  }
  EXPECT_LE(audit.defended.at_k(3), audit.baseline.at_k(3) + 1e-9);
}

}  // namespace
}  // namespace pelican::core
