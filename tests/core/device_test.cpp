#include "core/device.hpp"

#include <gtest/gtest.h>

#include "nn/metrics.hpp"
#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = pelican::testing::make_untrained_world(3, 2, 1);
    const auto data = contributor_data();
    models::GeneralModelConfig config;
    config.hidden_dim = 12;
    config.train.epochs = 3;
    config.train.lr = 3e-3;
    (void)cloud_.train_general(data, config);

    user_windows_ = mobility::make_windows(world_.user_trajectories[0],
                                           mobility::SpatialLevel::kBuilding);
  }

  models::WindowDataset contributor_data() {
    std::vector<mobility::Window> pooled;
    for (const auto& trajectory : world_.contributor_trajectories) {
      const auto windows = mobility::make_windows(
          trajectory, mobility::SpatialLevel::kBuilding);
      pooled.insert(pooled.end(), windows.begin(), windows.end());
    }
    return {std::move(pooled), world_.spec};
  }

  models::PersonalizationConfig personalization_config() {
    models::PersonalizationConfig config;
    config.method = models::PersonalizationMethod::kFeatureExtraction;
    config.train.epochs = 3;
    config.train.lr = 3e-3;
    return config;
  }

  pelican::testing::World world_;
  CloudServer cloud_;
  std::vector<mobility::Window> user_windows_;
};

TEST_F(DeviceTest, PersonalizeDownloadsAndTrainsLocally) {
  Device device(42, user_windows_, world_.spec);
  EXPECT_FALSE(device.is_personalized());
  EXPECT_THROW((void)device.personalized_model(), std::logic_error);

  const PhaseCost cost = device.personalize(cloud_, personalization_config());
  EXPECT_TRUE(device.is_personalized());
  EXPECT_GT(cost.wall_seconds, 0.0);
  EXPECT_EQ(device.personalization_report().epochs_run, 3u);
}

TEST_F(DeviceTest, PrivacyTemperatureValidationAndWiring) {
  Device device(42, user_windows_, world_.spec);
  EXPECT_DOUBLE_EQ(device.privacy_temperature(), 1.0);
  EXPECT_THROW(device.set_privacy_temperature(0.0), std::invalid_argument);
  device.set_privacy_temperature(1e-3);
  EXPECT_DOUBLE_EQ(device.privacy_temperature(), 1e-3);

  device.personalize(cloud_, personalization_config());
  const DeployedModel deployment = device.deploy_local();
  EXPECT_DOUBLE_EQ(deployment.temperature(), 1e-3);
  EXPECT_EQ(deployment.site(), DeploymentSite::kOnDevice);
}

TEST_F(DeviceTest, DeployToCloudHostsModel) {
  Device device(42, user_windows_, world_.spec);
  device.personalize(cloud_, personalization_config());
  device.set_privacy_temperature(1e-2);
  device.deploy_to_cloud(cloud_);
  ASSERT_TRUE(cloud_.hosts_user(42));
  EXPECT_EQ(cloud_.hosted_model(42).site(), DeploymentSite::kInCloud);
  EXPECT_DOUBLE_EQ(cloud_.hosted_model(42).temperature(), 1e-2);
}

TEST_F(DeviceTest, UpdateExtendsPrivateData) {
  const auto split = mobility::split_windows(user_windows_, 0.5);
  Device device(42, split.train, world_.spec);
  device.personalize(cloud_, personalization_config());
  const std::size_t before = device.private_data().size();

  auto config = personalization_config();
  config.train.epochs = 2;
  const PhaseCost cost = device.update(split.test, config);
  EXPECT_GT(cost.wall_seconds, 0.0);
  EXPECT_EQ(device.private_data().size(), before + split.test.size());
  EXPECT_EQ(device.personalization_report().epochs_run, 2u);
}

TEST_F(DeviceTest, UpdateBeforePersonalizeThrows) {
  Device device(42, user_windows_, world_.spec);
  EXPECT_THROW((void)device.update({}, personalization_config()),
               std::logic_error);
}

TEST_F(DeviceTest, DeployBeforePersonalizeThrows) {
  Device device(42, user_windows_, world_.spec);
  EXPECT_THROW((void)device.deploy_local(), std::logic_error);
  EXPECT_THROW(device.deploy_to_cloud(cloud_), std::logic_error);
}

TEST_F(DeviceTest, UpdateKeepsModelUseful) {
  const auto split = mobility::split_windows(user_windows_, 0.6);
  Device device(42, split.train, world_.spec);
  device.personalize(cloud_, personalization_config());

  const models::WindowDataset holdout(split.test, world_.spec);
  auto& before_model =
      const_cast<nn::SequenceClassifier&>(device.personalized_model());
  const double before = nn::topk_accuracy(before_model, holdout, 3);

  auto config = personalization_config();
  config.train.epochs = 2;
  (void)device.update(split.test, config);
  auto& after_model =
      const_cast<nn::SequenceClassifier&>(device.personalized_model());
  const double after = nn::topk_accuracy(after_model, holdout, 3);
  // Training on the holdout itself must not degrade accuracy there.
  EXPECT_GE(after + 0.05, before);
}

}  // namespace
}  // namespace pelican::core
