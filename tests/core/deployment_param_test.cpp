// Property sweep of the deployment + privacy layer on the real trained
// world: for every temperature in the paper's Fig. 5b grid, the service's
// top-k predictions must be identical to the undefended deployment, and the
// confidence mass must saturate monotonically as T shrinks.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/service.hpp"
#include "support/world.hpp"
#include "models/window_dataset.hpp"

namespace pelican::core {
namespace {

class DeploymentTemperatureSweep : public ::testing::TestWithParam<double> {};

TEST_P(DeploymentTemperatureSweep, TopPredictionIdenticalNoInversions) {
  // At any temperature the argmax is identical to the undefended service,
  // and resolvable (> 0) confidences never invert their relative order.
  // Below the precision floor entries tie at zero — the saturation the
  // defense relies on (see PrivacyLayer::apply precision note).
  const auto& world = pelican::testing::trained_world();
  DeployedModel plain(world.personal_model.clone(), world.spec,
                      PrivacyLayer(1.0), DeploymentSite::kOnDevice);
  DeployedModel defended(world.personal_model.clone(), world.spec,
                         PrivacyLayer(GetParam()),
                         DeploymentSite::kOnDevice);
  for (const auto& window : world.user0_test) {
    ASSERT_EQ(plain.predict_top_k(window, 1),
              defended.predict_top_k(window, 1))
        << "T=" << GetParam();

    nn::Sequence x(mobility::kWindowSteps,
                   nn::Matrix(1, world.spec.input_dim(), 0.0f));
    models::encode_window(window, world.spec, x, 0);
    const nn::Matrix warm = plain.query(x);
    const nn::Matrix frozen = defended.query(x);
    for (std::size_t a = 0; a < warm.cols(); ++a) {
      for (std::size_t b = 0; b < warm.cols(); ++b) {
        if (frozen(0, a) > 0.0f && frozen(0, b) > 0.0f &&
            warm(0, a) > warm(0, b)) {
          ASSERT_GE(frozen(0, a), frozen(0, b)) << "T=" << GetParam();
        }
      }
    }
  }
}

TEST_P(DeploymentTemperatureSweep, TopConfidenceAtLeastUndefended) {
  const auto& world = pelican::testing::trained_world();
  DeployedModel plain(world.personal_model.clone(), world.spec,
                      PrivacyLayer(1.0), DeploymentSite::kOnDevice);
  DeployedModel defended(world.personal_model.clone(), world.spec,
                         PrivacyLayer(GetParam()),
                         DeploymentSite::kOnDevice);

  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(world.user0_test.size(), world.spec.input_dim(),
                            0.0f));
  for (std::size_t i = 0; i < world.user0_test.size(); ++i) {
    models::encode_window(world.user0_test[i], world.spec, x, i);
  }
  const nn::Matrix warm = plain.query(x);
  const nn::Matrix cold = defended.query(x);
  for (std::size_t r = 0; r < warm.rows(); ++r) {
    const float warm_top =
        *std::max_element(warm.row(r).begin(), warm.row(r).end());
    const float cold_top =
        *std::max_element(cold.row(r).begin(), cold.row(r).end());
    ASSERT_GE(cold_top + 1e-6f, warm_top) << "T=" << GetParam();
  }
}

TEST_P(DeploymentTemperatureSweep, RowsStillSumToApproximatelyOne) {
  const auto& world = pelican::testing::trained_world();
  DeployedModel defended(world.personal_model.clone(), world.spec,
                         PrivacyLayer(GetParam()),
                         DeploymentSite::kOnDevice);
  nn::Sequence x(mobility::kWindowSteps,
                 nn::Matrix(1, world.spec.input_dim(), 0.0f));
  models::encode_window(world.user0_test[0], world.spec, x, 0);
  const nn::Matrix probs = defended.query(x);
  double total = 0.0;
  for (const float p : probs.row(0)) {
    ASSERT_GE(p, 0.0f);
    total += p;
  }
  ASSERT_NEAR(total, 1.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Fig5bGrid, DeploymentTemperatureSweep,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4, 1e-5));

}  // namespace
}  // namespace pelican::core
